"""Benchmark X4 — the future-work extension: replacing consensus live.

Paper, Section 7: "we have actually already designed an algorithm to
replace consensus protocols".  Measures ABcast latency before/after a
live CT→CT consensus swap under load: the swap must not disturb the
service it sits beneath.
"""

import pytest

from conftest import QUICK, q, report
from repro.abcast import CtAbcastModule
from repro.consensus import CtConsensusModule
from repro.dpu import ReplConsensusModule
from repro.dpu.probes import DeliveryLog
from repro.fd import HeartbeatFd
from repro.kernel import Module, System, WellKnown
from repro.metrics import windowed_mean_latency
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RBCAST_SERVICE, RbcastModule
from repro.viz import render_table
from repro.workload import FixedPayload, LoadGeneratorModule


DURATION = q(10.0, 4.0)


def build_and_run(n=5, seed=14, duration=DURATION, load=100.0, swap_at=DURATION / 2):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(sys_.sim, sys_.machines, SwitchedLan())
    group = list(range(n))
    sys_.registry.register(
        "consensus-ct",
        lambda st, **kw: CtConsensusModule(st, group, **kw),
        provides=(WellKnown.CONSENSUS,),
        requires=(WellKnown.RP2P, WellKnown.FD, RBCAST_SERVICE),
        default_for=(WellKnown.CONSENSUS,),
    )
    log = DeliveryLog()

    class Probe(Module):
        REQUIRES = (WellKnown.ABCAST,)
        PROTOCOL = "probe"

        def __init__(self, stack):
            super().__init__(stack)
            self.subscribe(
                WellKnown.ABCAST,
                "adeliver",
                lambda o, p, s: log.note_delivery(p[0], self.stack_id, self.now),
            )

    repls = []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(HeartbeatFd(st, group))
        st.add_module(RbcastModule(st, group))
        st.add_module(CtConsensusModule(st, group))
        repl = ReplConsensusModule(st, sys_.registry, "consensus-ct")
        st.add_module(repl)
        repls.append(repl)
        st.add_module(
            CtAbcastModule(st, group, consensus_service=WellKnown.R_CONSENSUS)
        )
        st.add_module(Probe(st))
        st.add_module(
            LoadGeneratorModule(
                st,
                log,
                rate_per_sec=load / n,
                stop_at=duration,
                service=WellKnown.ABCAST,
                payload=FixedPayload(1024),
            )
        )
    sys_.sim.schedule_at(
        swap_at, repls[0].call, WellKnown.R_CONSENSUS, "change_protocol", "consensus-ct"
    )
    sys_.run(until=duration + 3.0)
    return sys_, repls, log


@pytest.mark.benchmark(group="consensus-swap")
def test_consensus_replacement_under_load(benchmark):
    sys_, repls, log = benchmark.pedantic(
        build_and_run, rounds=1, iterations=1
    )
    before = windowed_mean_latency(log, 1.0, DURATION / 2)
    after = windowed_mean_latency(log, DURATION / 2 + 1.0, DURATION)
    rows = [
        ("latency before swap [ms]", before * 1e3),
        ("latency after swap [ms]", after * 1e3),
        ("stacks switched", sum(r.counters.get("switches") for r in repls)),
    ]
    report(
        "consensus_swap_x4",
        render_table(["metric", "value"], rows, title="X4 — live consensus swap"),
    )
    assert all(r.counters.get("switches") == 1 for r in repls)
    # The layer above (ABcast) keeps its latency profile across the swap.
    if not QUICK:
        assert after == pytest.approx(before, rel=0.5)
