"""Microbenchmarks — substrate hot paths (pytest-benchmark timed loops).

These are classic repeated-measurement benchmarks (unlike the figure
regenerations, which are single deterministic simulations): event-loop
throughput, CPU-queue submission, kernel call dispatch, and the RP2P
message path.  They guard the simulator's performance, which bounds how
large the figure benchmarks can afford to be.
"""

import pytest

from conftest import q
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency, Machine, Simulator

N_EVENTS = q(10_000, 1_000)
N_TASKS = q(5_000, 500)
N_CALLS = q(2_000, 200)
N_MSGS = q(500, 100)


@pytest.mark.benchmark(group="kernel-micro")
def test_event_loop_throughput(benchmark):
    def run():
        sim = Simulator(seed=0)
        for i in range(N_EVENTS):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == N_EVENTS


@pytest.mark.benchmark(group="kernel-micro")
def test_machine_execute_throughput(benchmark):
    def run():
        sim = Simulator(seed=0)
        machine = Machine(sim, 0)
        for _ in range(N_TASKS):
            machine.execute(1e-6, lambda: None)
        sim.run()
        return machine.tasks_executed

    assert benchmark(run) == N_TASKS


@pytest.mark.benchmark(group="kernel-micro")
def test_call_dispatch_throughput(benchmark):
    class Ping(Module):
        PROVIDES = ("p",)
        PROTOCOL = "ping"

        def __init__(self, stack):
            super().__init__(stack)
            self.count = 0
            self.export_call("p", "go", self._go)

        def _go(self):
            self.count += 1

    def run():
        sys_ = System(n=1, seed=0, trace_enabled=False)
        st = sys_.stack(0)
        ping = st.add_module(Ping(st))
        for _ in range(N_CALLS):
            st.issue_call(None, "p", "go", (), cost=0.0)
        sys_.run()
        return ping.count

    assert benchmark(run) == N_CALLS


@pytest.mark.benchmark(group="kernel-micro")
def test_rp2p_message_path(benchmark):
    class Sink(Module):
        REQUIRES = (WellKnown.RP2P,)
        PROTOCOL = "sink"

        def __init__(self, stack):
            super().__init__(stack)
            self.count = 0
            self.subscribe(
                WellKnown.RP2P, "deliver", lambda s, p, z: setattr(self, "count", self.count + 1)
            )

    def run():
        sys_ = System(n=2, seed=0, trace_enabled=False)
        net = SimNetwork(
            sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(1e-4))
        )
        sinks = []
        for st in sys_.stacks:
            st.add_module(UdpModule(st, net))
            st.add_module(Rp2pModule(st))
            snk = Sink(st)
            st.add_module(snk)
            sinks.append(snk)
        for i in range(N_MSGS):
            sinks[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=30.0)
        return sinks[1].count

    assert benchmark(run) == N_MSGS
