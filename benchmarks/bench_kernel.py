"""Microbenchmarks — substrate hot paths (pytest-benchmark timed loops).

These are classic repeated-measurement benchmarks (unlike the figure
regenerations, which are single deterministic simulations): event-loop
throughput, CPU-queue submission, kernel call dispatch, and the RP2P
message path.  They guard the simulator's performance, which bounds how
large the figure benchmarks can afford to be.
"""

import pytest

from conftest import q
from repro.experiments import GroupCommConfig, build_group_comm_system
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency, Machine, Simulator

N_EVENTS = q(10_000, 1_000)
N_TASKS = q(5_000, 500)
N_CALLS = q(2_000, 200)
N_QUERIES = q(20_000, 2_000)
N_MSGS = q(500, 100)
FULLSTACK_SIM_SECONDS = q(2.0, 0.5)


@pytest.mark.benchmark(group="kernel-micro")
def test_event_loop_throughput(benchmark):
    def run():
        sim = Simulator(seed=0)
        for i in range(N_EVENTS):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == N_EVENTS


@pytest.mark.benchmark(group="kernel-micro")
def test_machine_execute_throughput(benchmark):
    def run():
        sim = Simulator(seed=0)
        machine = Machine(sim, 0)
        for _ in range(N_TASKS):
            machine.execute(1e-6, lambda: None)
        sim.run()
        return machine.tasks_executed

    assert benchmark(run) == N_TASKS


@pytest.mark.benchmark(group="kernel-micro")
def test_call_dispatch_throughput(benchmark):
    class Ping(Module):
        PROVIDES = ("p",)
        PROTOCOL = "ping"

        def __init__(self, stack):
            super().__init__(stack)
            self.count = 0
            self.export_call("p", "go", self._go)

        def _go(self):
            self.count += 1

    def run():
        sys_ = System(n=1, seed=0, trace_enabled=False)
        st = sys_.stack(0)
        ping = st.add_module(Ping(st))
        for _ in range(N_CALLS):
            st.issue_call(None, "p", "go", (), cost=0.0)
        sys_.run()
        return ping.count

    assert benchmark(run) == N_CALLS


def run_query_loop(n_queries=None):
    """N synchronous queries against a bound provider; returns the count.

    The shape consensus rounds hammer (``is_suspected`` asking the FD for
    its suspect list on every round): a zero-cost read through the
    binding table, now served from the stack's ``(service, query)``
    cache.  ``bench_core.py`` records this as the ``query_path`` metric.
    """
    if n_queries is None:
        n_queries = N_QUERIES

    class Oracle(Module):
        PROVIDES = ("o",)
        PROTOCOL = "oracle"

        def __init__(self, stack):
            super().__init__(stack)
            self.export_query("o", "read", lambda: 42)

    sys_ = System(n=1, seed=0, trace_enabled=False)
    st = sys_.stack(0)
    st.add_module(Oracle(st))
    count = 0
    for _ in range(n_queries):
        if st.query("o", "read") == 42:
            count += 1
    return count


@pytest.mark.benchmark(group="kernel-micro")
def test_query_throughput(benchmark):
    assert benchmark(run_query_loop) == N_QUERIES


@pytest.mark.benchmark(group="kernel-micro")
def test_rp2p_message_path(benchmark):
    class Sink(Module):
        REQUIRES = (WellKnown.RP2P,)
        PROTOCOL = "sink"

        def __init__(self, stack):
            super().__init__(stack)
            self.count = 0
            self.subscribe(
                WellKnown.RP2P, "deliver", lambda s, p, z: setattr(self, "count", self.count + 1)
            )

    def run():
        sys_ = System(n=2, seed=0, trace_enabled=False)
        net = SimNetwork(
            sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(1e-4))
        )
        sinks = []
        for st in sys_.stacks:
            st.add_module(UdpModule(st, net))
            st.add_module(Rp2pModule(st))
            snk = Sink(st)
            st.add_module(snk)
            sinks.append(snk)
        for i in range(N_MSGS):
            sinks[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=30.0)
        return sinks[1].count

    assert benchmark(run) == N_MSGS


def run_full_stack_calls(sim_seconds=None, trace="off"):
    """One full Figure-4 stack run; returns total kernel dispatches.

    Builds the complete group-communication stack (UDP → RP2P → FD →
    consensus → CT-ABcast → Repl) on three machines, drives the paper's
    workload through it, and counts every kernel call and response
    issued — the "full-stack calls/sec" number ``bench_core.py`` records
    into the perf trajectory.  This is the paper-shaped workload the
    dispatch fast path is tuned for, as opposed to the synthetic
    single-module loop of ``test_call_dispatch_throughput``.
    """
    if sim_seconds is None:
        sim_seconds = FULLSTACK_SIM_SECONDS
    gcs = build_group_comm_system(GroupCommConfig(
        n=3, seed=7, load_msgs_per_sec=120.0, load_stop=sim_seconds,
        trace=trace,
    ))
    gcs.run(until=sim_seconds)
    return sum(st.calls_issued + st.responses_issued for st in gcs.system.stacks)


@pytest.mark.benchmark(group="kernel-fullstack")
def test_full_stack_call_throughput(benchmark):
    assert benchmark(run_full_stack_calls) > 0
