"""Benchmark F6 — regenerates the paper's Figure 6.

Mean ABcast latency versus load for group sizes 3 and 7, in the paper's
three configurations: normal without the replacement layer, normal with
it, and during a replacement.

Paper reading (checked as assertions): latency grows with load; n = 7
lies above n = 3; the replacement layer costs ≈ 5 %; the
during-replacement curve lies above both steady-state curves.
"""

import pytest

from conftest import QUICK, q, report
from repro.experiments import Figure6Result, run_figure6

# Loads per group size: each curve stops at its saturation knee, exactly
# as the paper's figure does — beyond it the system is unstable and the
# measured value is dominated by run-length truncation.
LOADS = q(
    {3: (50.0, 150.0, 250.0, 350.0), 7: (50.0, 150.0, 250.0, 300.0)},
    {3: (50.0, 150.0), 7: (50.0, 150.0)},
)


@pytest.mark.benchmark(group="figure6")
def test_figure6_full_grid(benchmark):
    def run() -> Figure6Result:
        merged = Figure6Result()
        for n, loads in LOADS.items():
            partial = run_figure6(
                group_sizes=(n,), loads=loads, duration=q(6.0, 2.0), seed=6
            )
            merged.points.extend(partial.points)
        return merged

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("figure6", result.render())

    if QUICK:  # the shrunken grid only smoke-tests the harness
        assert result.points
        return
    # Shape assertions (the paper's qualitative reading):
    for n, loads in LOADS.items():
        without = dict(result.curve(n, "normal_without_layer"))
        with_layer = dict(result.curve(n, "normal_with_layer"))
        during = dict(result.curve(n, "during_replacement"))
        # 1. latency grows with load (first vs last point, either curve)
        assert without[loads[-1]] > without[loads[0]]
        # 2. the layered configuration costs more than the bare one
        #    at every stable load (the ≈5% overhead, C1 quantifies it)
        for load in loads:
            if load in without and load in with_layer:
                assert with_layer[load] >= without[load] * 0.97
        # 3. during-replacement at least matches the steady layered curve
        common = set(during) & set(with_layer)
        assert common, "during-replacement curve must have points"
        assert any(during[l] > with_layer[l] for l in common)

    # 4. n=7 strictly above n=3 at equal configuration and load
    for cfg_name in ("normal_without_layer", "normal_with_layer"):
        c3 = dict(result.curve(3, cfg_name))
        c7 = dict(result.curve(7, cfg_name))
        for load in set(c3) & set(c7):
            assert c7[load] > c3[load]
