"""Core hot-path benchmarks and the unified perf driver.

Measures the three throughput numbers every experiment bottoms out in —
**events/sec** through the discrete-event loop, **datagrams/sec** through
the simulated network path, and **campaign wall-clock** (serial vs
process-parallel) — and appends one machine-readable record per
invocation to a trajectory file (default ``benchmarks/BENCH_core.json``),
so the perf curve across commits stays visible.

Run standalone (the driver)::

    PYTHONPATH=src python benchmarks/bench_core.py                # full mode
    PYTHONPATH=src python benchmarks/bench_core.py --quick        # CI mode
    PYTHONPATH=src python benchmarks/bench_core.py --quick \\
        --check benchmarks/baselines/bench_core_baseline.json     # perf gate

The gate compares the **normalised** event-loop score — events/sec divided
by a small pure-Python calibration loop measured in the same process — so
a slower CI machine does not trip it; only a real regression of the
simulator relative to the interpreter does.  ``--check`` exits non-zero
when the score drops more than ``--tolerance`` (default 30%) below the
stored baseline.

The ``test_*`` wrappers run the same bodies under pytest-benchmark like
the rest of the suite (quick-mode sizes under ``REPRO_BENCH_QUICK=1``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import pathlib
import sys
import time
from typing import Any, Dict, Optional

import pytest

from conftest import q
from repro.scenarios import Campaign, ScenarioSpec, get_campaign, run_campaign
from repro.sim import Machine, Simulator, lan_latency
from repro.net import NetMessage, SimNetwork, SwitchedLan

#: Event count for the event-loop microbench.
N_EVENTS = q(200_000, 20_000)
#: Best-of-N repeats for the microbenches (scheduler-noise hygiene).
REPEATS = q(3, 2)
#: Datagram count for the network-path microbench.
N_DATAGRAMS = q(50_000, 5_000)
#: Simulated seconds of the full-stack kernel-dispatch benchmark.
FULLSTACK_SIM_SECONDS = q(2.0, 0.5)
#: Query count for the kernel query-path microbench.
N_QUERIES = q(200_000, 20_000)
#: Seeds for the campaign wall-clock measurement.
CAMPAIGN_SEEDS = q((0, 1), (0,))
#: Scenarios (from the smoke campaign) used for the campaign measurement.
CAMPAIGN_NAME = "smoke"
#: Wide-matrix campaign: specs × seeds cells (>= 64 in full mode), the
#: shape the warm-pool executor is built for.
WIDE_SPECS = q(16, 4)
WIDE_SEEDS = q(4, 2)
#: Messages per send_many batch in the burst-delivery microbench (the
#: fan-out degree of an ABcast-style broadcast on a mid-size group).
BURST_SIZE = 16
#: Default trajectory file.  Unlike the regenerable artefacts under
#: ``benchmarks/out/`` (gitignored), the trajectory is **committed**: one
#: record per invocation, so the perf curve across PRs stays visible.
DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_core.json"
#: Default checked-in baseline for the CI regression gate.
DEFAULT_BASELINE = pathlib.Path(__file__).parent / "baselines" / "bench_core_baseline.json"


# --------------------------------------------------------------------------- #
# Benchmark bodies
# --------------------------------------------------------------------------- #
def calibrate_pyops(n: int = 2_000_000) -> float:
    """Pure-Python ops/sec of this interpreter on this machine.

    A trivial arithmetic loop; dividing the simulator's events/sec by this
    yields a hardware- and interpreter-normalised score that is comparable
    across machines (used by the regression gate).
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(n):
        acc += i & 7
    dt = time.perf_counter() - t0
    return n / dt


def bench_event_loop(n_events: Optional[int] = None) -> Dict[str, float]:
    """Schedule *n* events and drain them: schedule cost + dispatch cost.

    The same shape as ``bench_kernel.test_event_loop_throughput`` — one
    timed pass over the full schedule→fire life of every event, which is
    where the handle-allocation and double-heap-inspection savings show.
    Uses the fire-and-forget path when the core has one (the ~90% case:
    network deliveries, CPU completions); falls back to ``schedule`` on
    pre-overhaul cores so records stay comparable across commits.
    """
    if n_events is None:
        n_events = N_EVENTS
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        sim = Simulator(seed=1)
        sched = getattr(sim, "schedule_fast", sim.schedule)
        nop = _nop
        t0 = time.perf_counter()
        for i in range(n_events):
            sched(i * 1e-6, nop)
        sim.run()
        seconds = time.perf_counter() - t0
        rate = sim.events_processed / seconds
        if best is None or rate > best["events_per_sec"]:
            best = {
                "events": sim.events_processed,
                "seconds": seconds,
                "events_per_sec": rate,
            }
    assert best is not None
    return best


def _nop() -> None:
    pass


def bench_event_loop_steady(
    n_events: Optional[int] = None, chains: int = 64, fast: bool = True
) -> Dict[str, float]:
    """Self-rescheduling timer chains: the engine's steady-state loop.

    A small constant heap (64 chains) with every event rescheduling
    itself — dominated by per-event loop/dispatch cost rather than
    allocation.  ``fast=False`` measures the cancellable-handle path.
    """
    if n_events is None:
        n_events = N_EVENTS
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        sim = Simulator(seed=1)
        sched = getattr(sim, "schedule_fast", sim.schedule) if fast else sim.schedule
        remaining = [n_events]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                sched(1e-6, tick)

        for _ in range(chains):
            sim.schedule(0.0, tick)
        t0 = time.perf_counter()
        sim.run()
        seconds = time.perf_counter() - t0
        rate = sim.events_processed / seconds
        if best is None or rate > best["events_per_sec"]:
            best = {
                "events": sim.events_processed,
                "seconds": seconds,
                "events_per_sec": rate,
            }
    assert best is not None
    return best


def bench_datagram_path(n_datagrams: Optional[int] = None) -> Dict[str, float]:
    """Datagrams/sec through SimNetwork with the paper's LAN latency model
    (NIC serialisation + lognormal propagation draw + delivery)."""
    if n_datagrams is None:
        n_datagrams = N_DATAGRAMS
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        sim = Simulator(seed=2)
        machines = [Machine(sim, i) for i in range(4)]
        net = SimNetwork(sim, machines, SwitchedLan(latency=lan_latency()))
        delivered = [0]
        for m in machines:
            net.attach(
                m.machine_id,
                lambda msg, t: delivered.__setitem__(0, delivered[0] + 1),
            )
        sched = getattr(sim, "schedule_fast", sim.schedule)
        sent = [0]

        def pump() -> None:
            if sent[0] < n_datagrams:
                sent[0] += 1
                net.send(NetMessage(sent[0] % 4, (sent[0] + 1) % 4, "x", 256))
                sched(1e-6, pump)

        sim.schedule(0.0, pump)
        t0 = time.perf_counter()
        sim.run()
        seconds = time.perf_counter() - t0
        rate = delivered[0] / seconds
        if best is None or rate > best["datagrams_per_sec"]:
            best = {
                "datagrams": delivered[0],
                "seconds": seconds,
                "datagrams_per_sec": rate,
            }
    assert best is not None
    return best


def bench_kernel_dispatch(sim_seconds: Optional[float] = None) -> Dict[str, float]:
    """Full-stack kernel calls/sec: the Figure-4 stack under load.

    Runs the complete group-communication stack (UDP → RP2P → FD →
    consensus → CT-ABcast → Repl) on three machines with the kernel
    trace off and divides the kernel dispatch count (calls + responses
    issued across all stacks) by the wall-clock of the run.  This is the
    per-message cost the ROADMAP calls the dominant full-stack hot path;
    the dispatch fast path (cached bindings, opt-out trace, slotted
    records, batched drains) is gated on it.
    """
    from bench_kernel import run_full_stack_calls

    if sim_seconds is None:
        sim_seconds = FULLSTACK_SIM_SECONDS
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        dispatches = run_full_stack_calls(sim_seconds=sim_seconds, trace="off")
        seconds = time.perf_counter() - t0
        rate = dispatches / seconds
        if best is None or rate > best["calls_per_sec"]:
            best = {
                "dispatches": dispatches,
                "sim_seconds": sim_seconds,
                "seconds": seconds,
                "calls_per_sec": rate,
            }
    assert best is not None
    return best


def bench_query_path(n_queries: Optional[int] = None) -> Dict[str, float]:
    """Kernel queries/sec: the ``(service, query)`` resolution hot path.

    Consensus rounds ask the FD for suspects on every round, so the
    synchronous query path is a measurable share of a full-stack run;
    PR 5 gave it the same cached resolution calls got in PR 4 (bare
    resolution loop on the 1-CPU container: 3.18M → 4.57M queries/sec,
    1.43×).
    """
    from bench_kernel import run_query_loop

    if n_queries is None:
        n_queries = N_QUERIES
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        count = run_query_loop(n_queries=n_queries)
        seconds = time.perf_counter() - t0
        rate = count / seconds
        if best is None or rate > best["queries_per_sec"]:
            best = {
                "queries": count,
                "seconds": seconds,
                "queries_per_sec": rate,
            }
    assert best is not None
    return best


def bench_campaign(jobs: int = 4) -> Dict[str, Any]:
    """Wall-clock of the smoke campaign, serial vs process-parallel.

    Scaling is only meaningful with ``cpu_count >= jobs``; the record
    always includes ``cpu_count`` so trajectory readers can tell a 1-core
    CI box from a real regression.
    """
    campaign = get_campaign(CAMPAIGN_NAME)
    record: Dict[str, Any] = {
        "campaign": CAMPAIGN_NAME,
        "seeds": list(CAMPAIGN_SEEDS),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
    }
    t0 = time.perf_counter()
    serial = run_campaign(campaign, seeds=CAMPAIGN_SEEDS)
    record["jobs1_seconds"] = time.perf_counter() - t0
    if "jobs" in inspect.signature(run_campaign).parameters:
        t0 = time.perf_counter()
        parallel = run_campaign(campaign, seeds=CAMPAIGN_SEEDS, jobs=jobs)
        record["jobsN_seconds"] = time.perf_counter() - t0
        record["speedup"] = record["jobs1_seconds"] / record["jobsN_seconds"]
        record["byte_identical"] = serial.to_json() == parallel.to_json()
    else:
        # Pre-overhaul core: run_campaign has no jobs parameter.  Record
        # the serial number only so trajectories stay comparable.
        record["jobsN_seconds"] = None
        record["speedup"] = None
        record["byte_identical"] = None
    return record


def _wide_campaign(n_specs: int) -> Campaign:
    """A synthetic campaign of *n_specs* short scenarios.

    Each cell is deliberately small (seconds of simulated time, tens of
    messages) so the matrix is wide rather than deep: the measurement
    isolates the executor's scheduling/IPC overhead and scaling, not
    per-cell simulation cost.
    """
    specs = tuple(
        ScenarioSpec(
            name=f"wide-{i:02d}",
            n=3,
            duration=0.4,
            load_msgs_per_sec=40.0,
            quiescence_extra=2.0,
        )
        for i in range(n_specs)
    )
    return Campaign(name="bench-wide", scenarios=specs,
                    description="synthetic wide matrix for executor benchmarks")


def bench_campaign_wide(
    jobs: int = 4, chunk_size: Optional[int] = None
) -> Dict[str, Any]:
    """Wide-matrix campaign wall-clock: 64+ cells, serial vs warm pool.

    The scenario under measurement is the executor itself: many small
    ``(spec, seed)`` cells, where pool warm-up, chunked scheduling and
    the merge dominate unless they are cheap.  Warm-up (spawning and
    ping-ponging the workers) is timed **separately** from the campaign
    so the trajectory distinguishes pool amortisation from per-cell
    scaling.  ``byte_identical`` re-checks the determinism contract on
    every benchmark run.
    """
    from repro.parallel import get_pool

    campaign = _wide_campaign(WIDE_SPECS)
    seeds = tuple(range(WIDE_SEEDS))
    record: Dict[str, Any] = {
        "campaign": campaign.name,
        "cells": len(campaign.scenarios) * len(seeds),
        "seeds": list(seeds),
        "jobs": jobs,
        "chunk_size": chunk_size,
        "cpu_count": os.cpu_count(),
    }
    t0 = time.perf_counter()
    pool = get_pool(jobs)
    pool.warm()
    record["warmup_seconds"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial = run_campaign(campaign, seeds=seeds)
    record["jobs1_seconds"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(campaign, seeds=seeds, jobs=jobs,
                            chunk_size=chunk_size)
    record["jobsN_seconds"] = time.perf_counter() - t0
    record["speedup"] = record["jobs1_seconds"] / record["jobsN_seconds"]
    record["byte_identical"] = serial.to_json() == parallel.to_json()
    return record


def bench_datagram_burst(n_datagrams: Optional[int] = None) -> Dict[str, float]:
    """Datagrams/sec through the vectorised ``send_many`` fan-out path.

    Same substrate as :func:`bench_datagram_path`, but each pump tick
    sends one :data:`BURST_SIZE`-message batch — one latency block and
    one heap burst instead of per-message draws and pushes.  The ratio
    to the scalar bench is the fan-out batching win."""
    if n_datagrams is None:
        n_datagrams = N_DATAGRAMS
    best: Optional[Dict[str, float]] = None
    for _ in range(REPEATS):
        sim = Simulator(seed=2)
        machines = [Machine(sim, i) for i in range(4)]
        net = SimNetwork(sim, machines, SwitchedLan(latency=lan_latency()))
        delivered = [0]
        for m in machines:
            net.attach(
                m.machine_id,
                lambda msg, t: delivered.__setitem__(0, delivered[0] + 1),
            )
        sched = sim.schedule_fast
        sent = [0]

        def pump() -> None:
            if sent[0] < n_datagrams:
                base = sent[0]
                batch = [
                    NetMessage((base + j) % 4, (base + j + 1) % 4, "x", 256)
                    for j in range(min(BURST_SIZE, n_datagrams - base))
                ]
                sent[0] = base + len(batch)
                net.send_many(batch)
                sched(1e-6, pump)

        sim.schedule(0.0, pump)
        t0 = time.perf_counter()
        sim.run()
        seconds = time.perf_counter() - t0
        rate = delivered[0] / seconds
        if best is None or rate > best["datagrams_per_sec"]:
            best = {
                "datagrams": delivered[0],
                "seconds": seconds,
                "datagrams_per_sec": rate,
            }
    assert best is not None
    return best


def run_all(quick: bool, campaign_jobs: int = 4) -> Dict[str, Any]:
    """One full measurement record (the shape appended to the trajectory)."""
    pyops = calibrate_pyops()
    event_loop = bench_event_loop()
    kernel_dispatch = bench_kernel_dispatch()
    campaign_wide = bench_campaign_wide(jobs=campaign_jobs)
    record: Dict[str, Any] = {
        "schema": 2,
        # Which runtime backend produced the numbers.  Everything here
        # measures the discrete-event twin; a future wall-clock bench
        # would stamp "realtime" so trajectory tooling never mixes them.
        "backend": "sim",
        "quick": quick,
        "pyops_per_sec": pyops,
        "event_loop": event_loop,
        "event_loop_steady": bench_event_loop_steady(),
        "event_loop_cancellable": bench_event_loop_steady(fast=False),
        "datagram_path": bench_datagram_path(),
        "datagram_burst": bench_datagram_burst(),
        "kernel_dispatch": kernel_dispatch,
        "query_path": bench_query_path(),
        "campaign": bench_campaign(jobs=campaign_jobs),
        "campaign_wide": campaign_wide,
        # The gated metrics: hardware-normalised event-loop and
        # full-stack kernel-dispatch throughput.
        "events_score": event_loop["events_per_sec"] / pyops,
        "calls_score": kernel_dispatch["calls_per_sec"] / pyops,
        # Multi-core executor scaling: the wide-matrix speedup, or None
        # on a single-CPU box where speedup > 1 is unattainable and the
        # gate skips (the raw numbers are still in campaign_wide).
        "parallel_score": (
            campaign_wide["speedup"]
            if (campaign_wide["cpu_count"] or 1) > 1
            else None
        ),
    }
    return record


# --------------------------------------------------------------------------- #
# Trajectory + regression gate
# --------------------------------------------------------------------------- #
def append_trajectory(record: Dict[str, Any], path: pathlib.Path, label: Optional[str]) -> None:
    """Append *record* to the trajectory file at *path* (a JSON object
    with a ``trajectory`` list, newest last)."""
    if label:
        record = dict(record, label=label)
    doc: Dict[str, Any] = {"trajectory": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}  # corrupt trajectory: restart it rather than crash the bench
        if not isinstance(doc, dict) or not isinstance(doc.get("trajectory"), list):
            doc = {"trajectory": []}
    doc["trajectory"].append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def check_baseline(record: Dict[str, Any], baseline_path: pathlib.Path, tolerance: float) -> int:
    """Gate: fail (return 1) when a normalised score drops more than
    *tolerance* below the stored baseline.

    Gates ``events_score`` (event loop) and — when the baseline carries
    it — ``calls_score`` (full-stack kernel dispatch), so regressions in
    either the simulation core or the kernel call path fail CI.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench_core: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    events_base = baseline.get("events_score")
    if not isinstance(events_base, (int, float)) or events_base <= 0:
        print(f"bench_core: baseline {baseline_path} has no usable events_score", file=sys.stderr)
        return 2
    if baseline.get("quick") != record.get("quick"):
        # Quick and full sizes score differently (heap depth changes the
        # per-event cost), so a cross-mode comparison is not a real gate.
        print(
            "bench_core: WARNING baseline and current record use different "
            "modes (quick vs full); regenerate the baseline in the gated mode",
            file=sys.stderr,
        )
    status = 0
    for name in ("events_score", "calls_score"):
        base_score = baseline.get(name)
        if base_score is None and name != "events_score":
            continue  # pre-metric baseline: this score did not exist yet
        if not isinstance(base_score, (int, float)) or base_score <= 0:
            print(f"bench_core: baseline {baseline_path} has no usable {name}", file=sys.stderr)
            return 2
        score = record[name]
        floor = base_score * (1.0 - tolerance)
        verdict = "ok" if score >= floor else "REGRESSION"
        print(
            f"bench_core gate: {name}={score:.4f} baseline={base_score:.4f} "
            f"floor={floor:.4f} ({tolerance:.0%} tolerance) -> {verdict}"
        )
        if score < floor:
            print(
                f"bench_core: {name} regressed >{tolerance:.0%} vs baseline "
                f"(normalised score {score:.4f} < floor {floor:.4f})",
                file=sys.stderr,
            )
            status = 1
    # Executor scaling gate: absolute, not baseline-relative — on a
    # multi-core box the warm-pool executor must actually be faster than
    # serial (speedup >= 1.0); on a 1-CPU runner speedup > 1 is
    # physically unattainable, so the check skips (visibly).
    parallel_score = record.get("parallel_score")
    cpus = record.get("campaign_wide", {}).get("cpu_count") or 1
    if cpus <= 1 or parallel_score is None:
        print(
            f"bench_core gate: parallel_score skipped (cpu_count={cpus}; "
            "multi-core speedup is unattainable on this runner)"
        )
    else:
        verdict = "ok" if parallel_score >= 1.0 else "REGRESSION"
        print(
            f"bench_core gate: parallel_score={parallel_score:.3f} "
            f"floor=1.000 (absolute, cpu_count={cpus}) -> {verdict}"
        )
        if parallel_score < 1.0:
            print(
                f"bench_core: wide-matrix campaign is slower with --jobs than "
                f"serial on a {cpus}-CPU box (speedup {parallel_score:.3f} < 1.0)",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_core.py",
        description="Simulation-core throughput benchmarks + perf trajectory driver.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI sizes (also via REPRO_BENCH_QUICK=1)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, metavar="PATH",
                        help=f"trajectory file to append to (default: {DEFAULT_OUT})")
    parser.add_argument("--no-out", action="store_true",
                        help="measure and print only; do not touch the trajectory file")
    parser.add_argument("--label", default=None,
                        help="tag this record in the trajectory (e.g. a commit id)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker count for the campaign scaling measurement")
    parser.add_argument("--check", type=pathlib.Path, default=None, metavar="BASELINE",
                        help="compare against this baseline JSON and exit non-zero "
                             "on regression")
    parser.add_argument("--tolerance", type=float, default=0.30, metavar="FRAC",
                        help="allowed fractional events_score drop vs baseline "
                             "(default: 0.30)")
    parser.add_argument("--write-baseline", type=pathlib.Path, default=None, metavar="PATH",
                        help="store this record as the new gate baseline")
    args = parser.parse_args(argv)

    global N_EVENTS, N_DATAGRAMS, N_QUERIES, CAMPAIGN_SEEDS, REPEATS
    global FULLSTACK_SIM_SECONDS, WIDE_SPECS, WIDE_SEEDS
    if args.quick:
        N_EVENTS, N_DATAGRAMS, CAMPAIGN_SEEDS, REPEATS = 20_000, 5_000, (0,), 2
        FULLSTACK_SIM_SECONDS = 0.5
        N_QUERIES = 20_000
        WIDE_SPECS, WIDE_SEEDS = 4, 2

    record = run_all(quick=args.quick, campaign_jobs=args.jobs)
    print(json.dumps(record, indent=2, sort_keys=True))
    ev = record["event_loop"]["events_per_sec"]
    dg = record["datagram_path"]["datagrams_per_sec"]
    kc = record["kernel_dispatch"]["calls_per_sec"]
    camp = record["campaign"]
    jobs_n = camp["jobsN_seconds"]
    print(
        f"\nevents/sec: {ev:,.0f}   datagrams/sec: {dg:,.0f}   "
        f"full-stack calls/sec: {kc:,.0f}   "
        f"campaign jobs=1: {camp['jobs1_seconds']:.2f}s  "
        f"jobs={camp['jobs']}: "
        + (f"{jobs_n:.2f}s" if jobs_n is not None else "n/a")
        + f"  (cpus={camp['cpu_count']}, byte_identical={camp['byte_identical']})"
    )
    wide = record["campaign_wide"]
    print(
        f"wide matrix ({wide['cells']} cells): warmup {wide['warmup_seconds']:.2f}s  "
        f"jobs=1: {wide['jobs1_seconds']:.2f}s  jobs={wide['jobs']}: "
        f"{wide['jobsN_seconds']:.2f}s  speedup {wide['speedup']:.2f}x  "
        f"burst datagrams/sec: {record['datagram_burst']['datagrams_per_sec']:,.0f}"
    )

    if not args.no_out:
        append_trajectory(record, args.out, args.label)
        print(f"trajectory appended to {args.out}")
    if args.write_baseline:
        args.write_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.write_baseline.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {args.write_baseline}")
    if args.check is not None:
        return check_baseline(record, args.check, args.tolerance)
    return 0


# --------------------------------------------------------------------------- #
# pytest-benchmark wrappers (same bodies, suite-style)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="core")
def test_core_event_loop(benchmark):
    result = benchmark(bench_event_loop)
    assert result["events"] == N_EVENTS


@pytest.mark.benchmark(group="core")
def test_core_datagram_path(benchmark):
    result = benchmark(bench_datagram_path)
    assert result["datagrams"] > 0


@pytest.mark.benchmark(group="core")
def test_core_kernel_dispatch(benchmark):
    result = benchmark(bench_kernel_dispatch)
    assert result["dispatches"] > 0


@pytest.mark.benchmark(group="core")
def test_core_query_path(benchmark):
    result = benchmark(bench_query_path)
    assert result["queries"] == N_QUERIES


def test_core_campaign_parallel_identity():
    """jobs=1 and jobs=2 must agree byte-for-byte (quick sizes)."""
    campaign = get_campaign(CAMPAIGN_NAME)
    seeds = (0,)
    a = run_campaign(campaign, seeds=seeds, jobs=1)
    b = run_campaign(campaign, seeds=seeds, jobs=2)
    assert a.to_json() == b.to_json()


def test_core_campaign_wide_identity():
    """The wide matrix stays byte-identical through the warm pool."""
    record = bench_campaign_wide(jobs=2)
    assert record["byte_identical"] is True
    assert record["cells"] == WIDE_SPECS * WIDE_SEEDS


@pytest.mark.benchmark(group="core")
def test_core_datagram_burst(benchmark):
    result = benchmark(bench_datagram_burst)
    assert result["datagrams"] > 0


if __name__ == "__main__":
    sys.exit(main())
