"""Benchmark C2 — the cost of one replacement.

Paper: "the cost of switching between different protocols is negligible";
the latency increase "is lost during a short period (approximately one
second)"; the application is never blocked.

Measured: the replacement-window duration (paper definition), the kernel
blocked-call time below the indirection, the app-visible blocked calls
(must be zero), and the perturbation of the latency series.
"""

import pytest

from conftest import QUICK, q, report
from repro.experiments import GroupCommConfig, PROTOCOL_CT, build_group_comm_system
from repro.kernel import WellKnown
from repro.metrics import find_perturbation, latency_series
from repro.viz import render_table

DURATION = q(12.0, 4.0)


@pytest.mark.benchmark(group="switch-cost")
def test_switch_cost_n7(benchmark):
    def run():
        cfg = GroupCommConfig(
            n=7, seed=12, load_msgs_per_sec=200.0, load_stop=DURATION
        )
        gcs = build_group_comm_system(cfg)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=DURATION / 2)
        gcs.run(until=DURATION)
        gcs.run_to_quiescence()
        return gcs

    gcs = benchmark.pedantic(run, rounds=1, iterations=1)
    window = gcs.manager.window(1)
    blocked_below = sum(s.blocked_time_total for s in gcs.system.stacks)
    app_blocked = sum(
        s.blocked_call_count(WellKnown.R_ABCAST) for s in gcs.system.stacks
    )
    series = [(p.send_time, p.latency) for p in latency_series(gcs.log)]
    perturbation = find_perturbation(series, DURATION / 2)

    rows = [
        ("replacement window [ms]", window.duration * 1e3),
        ("kernel blocked time below indirection [ms]", blocked_below * 1e3),
        ("app-visible blocked calls", app_blocked),
        (
            "perturbation duration [s]",
            perturbation.duration if perturbation else 0.0,
        ),
        (
            "perturbation peak [x baseline]",
            perturbation.peak_factor if perturbation else 1.0,
        ),
    ]
    report(
        "switch_cost_c2",
        render_table(["metric", "value"], rows, title="C2 — cost of one replacement"),
    )

    assert app_blocked == 0                       # "never blocked"
    assert window.duration < 1.0                  # "negligible"
    if perturbation is not None and not QUICK:
        assert perturbation.duration < 2.0        # "short period (~1s)"
