"""Benchmark F5 — regenerates the paper's Figure 5.

Average ABcast latency versus send time with a CT→CT replacement
triggered in the middle of the run, n = 7 (the paper's exact scenario).

Paper reading: latency spikes around the replacement, "but quickly
stabilizes"; the perturbation lasts "a short period (approximately one
second)"; there is no interruption in the service availability.
"""

import pytest

from conftest import QUICK, q, report
from repro.experiments import GroupCommConfig, PROTOCOL_CT, run_figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5_n7_ct_to_ct(benchmark):
    cfg = GroupCommConfig(n=7, seed=5, load_msgs_per_sec=200.0)

    result = benchmark.pedantic(
        lambda: run_figure5(cfg, duration=q(12.0, 4.0), to_protocol=PROTOCOL_CT),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    report("figure5_n7", text)

    window = result.replacement_window
    assert window is not None and window.duration is not None
    # Paper claims, as assertions on the regenerated figure:
    # 1. the replacement completes (all 7 stacks switch);
    assert len(window.completed) == 7
    if QUICK:  # the short run has too little steady state for 2–4
        return
    # 2. latency during the replacement is elevated ...
    assert result.during_mean > result.pre_mean
    # 3. ... but stabilises back to the pre-switch level;
    assert result.post_mean == pytest.approx(result.pre_mean, rel=0.35)
    # 4. the perturbation is confined to a short period (paper: ~1 s).
    if result.perturbation is not None:
        assert result.perturbation.duration < 2.0


@pytest.mark.benchmark(group="figure5")
def test_figure5_n3_variant(benchmark):
    """The same experiment at n = 3 (the paper's smaller group size)."""
    cfg = GroupCommConfig(n=3, seed=5, load_msgs_per_sec=200.0)
    result = benchmark.pedantic(
        lambda: run_figure5(cfg, duration=q(12.0, 4.0), to_protocol=PROTOCOL_CT),
        rounds=1,
        iterations=1,
    )
    report("figure5_n3", result.render())
    if not QUICK:
        assert result.post_mean == pytest.approx(result.pre_mean, rel=0.35)
