"""Supplementary benchmark — the three ABcast protocols head to head.

Not a figure of the paper, but the reason its DPU mechanism exists:
different ABcast protocols win in different regimes, so switching between
them at run time is worth the machinery.  Reports steady-state latency of
each protocol at a light and a heavy load (n = 5).
"""

import pytest

from conftest import QUICK, q, report
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    build_group_comm_system,
)
from repro.metrics import windowed_mean_latency
from repro.viz import render_table

PROTOCOLS = (PROTOCOL_CT, PROTOCOL_SEQ, PROTOCOL_TOKEN)
STOP = q(6.0, 2.0)


def measure(protocol: str, load: float) -> float:
    cfg = GroupCommConfig(
        n=5,
        seed=17,
        load_msgs_per_sec=load,
        load_stop=STOP,
        initial_protocol=protocol,
        with_repl_layer=False,
        trace_enabled=False,
    )
    gcs = build_group_comm_system(cfg)
    gcs.run(until=STOP + 2.0)
    return windowed_mean_latency(gcs.log, 1.0, STOP)


@pytest.mark.benchmark(group="protocols")
def test_protocol_comparison(benchmark):
    def run():
        return {
            (proto, load): measure(proto, load)
            for proto in PROTOCOLS
            for load in (60.0, 240.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (proto, load, results[(proto, load)] * 1e3)
        for proto in PROTOCOLS
        for load in (60.0, 240.0)
    ]
    report(
        "protocols_supplementary",
        render_table(
            ["protocol", "load [msg/s]", "latency [ms]"],
            rows,
            title="Supplementary — ABcast protocols, steady state (n=5)",
        ),
    )
    # The motivating regime difference: the sequencer's short path beats
    # consensus at light load.
    if not QUICK:
        assert results[(PROTOCOL_SEQ, 60.0)] < results[(PROTOCOL_CT, 60.0)]
    # And every protocol actually measured something.
    assert all(v is not None and v > 0 for v in results.values())
