"""Benchmark C1 — the replacement layer's steady-state overhead.

Paper: "the overhead of adding a replacement layer (approximately 5%)".
Measured as the relative increase of mean steady-state latency when the
workload calls ``r-abcast`` (through the Repl module) instead of
``abcast`` directly, with no replacement triggered.
"""

import pytest

from conftest import QUICK, q, report
from repro.experiments import run_one_config
from repro.metrics import relative_overhead
from repro.viz import render_table


@pytest.mark.benchmark(group="overhead")
def test_replacement_layer_overhead(benchmark):
    def measure():
        rows = []
        for n in q((3, 7), (3,)):
            for load in q((100.0, 200.0), (100.0,)):
                base = run_one_config(
                    n, "normal_without_layer", load, duration=q(6.0, 2.0), seed=11
                )
                layered = run_one_config(
                    n, "normal_with_layer", load, duration=q(6.0, 2.0), seed=11
                )
                rows.append(
                    (
                        n,
                        load,
                        base.mean_latency * 1e3,
                        layered.mean_latency * 1e3,
                        100.0
                        * relative_overhead(base.mean_latency, layered.mean_latency),
                    )
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "overhead_c1",
        render_table(
            ["n", "load [msg/s]", "bare [ms]", "with layer [ms]", "overhead [%]"],
            rows,
            title="C1 — replacement-layer overhead (paper: ≈5%)",
        ),
    )
    overheads = [r[4] for r in rows]
    # The paper's ballpark: small single-digit percentage, never free,
    # never an order of magnitude.  (Quick mode's short window is too
    # noisy to bound.)
    if not QUICK:
        assert all(-2.0 < o < 25.0 for o in overheads)
        assert sum(overheads) / len(overheads) > 0.0
