"""Benchmark A1 — ablation: the change-message sn guard and re-issue policy.

DESIGN.md §4: the printed Algorithm 1 does not guard change messages by
sequence number.  This ablation runs near-concurrent replacement requests
under the three variants and reports correctness outcomes and switch
counts.  (The deterministic anomaly reproduction lives in
``tests/unit/test_repl_algorithm.py``; end-to-end runs may or may not hit
the race, which is exactly why the guard matters.)
"""

import pytest

from conftest import q, report
from repro.experiments import run_concurrent_change_ablation
from repro.viz import render_table


@pytest.mark.benchmark(group="ablation-reissue")
def test_concurrent_change_variants(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_concurrent_change_ablation(
            n=5, seed=15, duration=q(8.0, 4.0), gap=0.004
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            o.variant,
            o.switches_total,
            o.stale_changes_discarded,
            sum(o.property_violations.values()),
            "yes" if o.correct else "NO",
        )
        for o in outcomes
    ]
    report(
        "ablation_reissue_a1",
        render_table(
            ["variant", "switches", "stale discarded", "violations", "correct"],
            rows,
            title="A1 — concurrent replacement requests",
        ),
    )
    by_variant = {o.variant: o for o in outcomes}
    # The guarded variants must always be correct.
    assert by_variant["guarded+drop"].correct
    assert by_variant["guarded+reissue"].correct
    # 'drop' supersedes the second change; 'reissue' applies it too.
    assert (
        by_variant["guarded+reissue"].switches_total
        >= by_variant["guarded+drop"].switches_total
    )
