#!/usr/bin/env python3
"""Render the committed perf trajectory as sparklines + tables.

``benchmarks/BENCH_core.json`` accumulates one record per
``bench_core.py`` invocation across PRs (the committed perf curve).  This
tool renders it in a terminal / CI log::

    PYTHONPATH=src python benchmarks/plot_trajectory.py
    PYTHONPATH=src python benchmarks/plot_trajectory.py --metric events_per_sec
    PYTHONPATH=src python benchmarks/plot_trajectory.py --file other.json --width 48

For every tracked metric it prints a one-line sparkline over the records
(oldest → newest) and a table of ``label / value / Δ vs previous``.
Quick-mode and full-mode records measure different problem sizes, so the
tool renders them as separate rows rather than mixing scales.

Exit status 0 unless the trajectory file is missing/unreadable (2).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Metric name -> extractor over one trajectory record.
METRICS: Dict[str, Any] = {
    "events_per_sec": lambda r: _dig(r, "event_loop", "events_per_sec"),
    "events_steady_per_sec": lambda r: _dig(r, "event_loop_steady", "events_per_sec"),
    "datagrams_per_sec": lambda r: _dig(r, "datagram_path", "datagrams_per_sec"),
    "fullstack_calls_per_sec": lambda r: _dig(r, "kernel_dispatch", "calls_per_sec"),
    "queries_per_sec": lambda r: _dig(r, "query_path", "queries_per_sec"),
    "events_score": lambda r: r.get("events_score"),
    "calls_score": lambda r: r.get("calls_score"),
    "campaign_jobs1_seconds": lambda r: _dig(r, "campaign", "jobs1_seconds"),
    "campaign_speedup": lambda r: _dig(r, "campaign", "speedup"),
    "campaign_wide_jobs1_seconds": lambda r: _dig(r, "campaign_wide", "jobs1_seconds"),
    "campaign_wide_speedup": lambda r: _dig(r, "campaign_wide", "speedup"),
    "warm_pool_warmup_seconds": lambda r: _dig(r, "campaign_wide", "warmup_seconds"),
    "parallel_score": lambda r: r.get("parallel_score"),
    "datagrams_burst_per_sec": lambda r: _dig(r, "datagram_burst", "datagrams_per_sec"),
}

#: Eight-level bar glyphs (a "sparkline"): lowest value → thinnest bar.
_BARS = "▁▂▃▄▅▆▇█"
#: Pure-ASCII fallback (``--ascii``) for logs that eat unicode.
_BARS_ASCII = "_.-=oO#@"

DEFAULT_FILE = pathlib.Path(__file__).parent / "BENCH_core.json"


def _dig(record: Dict[str, Any], *keys: str) -> Optional[float]:
    """Nested dict lookup returning ``None`` on any missing hop."""
    node: Any = record
    for key in keys:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node if isinstance(node, (int, float)) else None


def sparkline(values: Sequence[Optional[float]], bars: str = _BARS) -> str:
    """One character per value, height-scaled to the present values.

    ``None`` (metric absent in that record — e.g. pre-metric commits)
    renders as a space, so the line stays aligned with the record axis.
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span == 0:
            out.append(bars[-1])
        else:
            out.append(bars[int((v - lo) / span * (len(bars) - 1))])
    return "".join(out)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def _delta(cur: Optional[float], prev: Optional[float]) -> str:
    if cur is None or prev is None or prev == 0:
        return ""
    ratio = cur / prev
    return f"{ratio:.2f}x"


def render_metric(
    name: str,
    records: List[Dict[str, Any]],
    bars: str,
    show_rows: bool = True,
) -> Optional[str]:
    """The sparkline + per-record rows for one metric, or ``None`` if the
    metric never appears in *records*."""
    values = [METRICS[name](r) for r in records]
    if all(v is None for v in values):
        return None
    lines = [f"{name}  [{sparkline(values, bars)}]"]
    if show_rows:
        prev: Optional[float] = None
        for record, value in zip(records, values):
            label = str(record.get("label") or "(unlabelled)")
            mode = "quick" if record.get("quick") else "full"
            lines.append(
                f"    {label[:42]:<42} {mode:<5} {_fmt(value):>14}  {_delta(value, prev):>6}"
            )
            if value is not None:
                prev = value
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/plot_trajectory.py",
        description="ASCII sparklines of the committed perf trajectory.",
    )
    parser.add_argument("--file", type=pathlib.Path, default=DEFAULT_FILE,
                        help=f"trajectory JSON (default: {DEFAULT_FILE})")
    parser.add_argument("--metric", choices=sorted(METRICS), default=None,
                        help="render only this metric")
    parser.add_argument("--no-rows", action="store_true",
                        help="sparklines only, no per-record tables")
    parser.add_argument("--ascii", action="store_true",
                        help="pure-ASCII bars (for logs that eat unicode)")
    args = parser.parse_args(argv)

    try:
        doc = json.loads(args.file.read_text())
    except (OSError, ValueError) as exc:
        print(f"plot_trajectory: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    records = doc.get("trajectory") if isinstance(doc, dict) else None
    if not isinstance(records, list) or not records:
        print(f"plot_trajectory: {args.file} has no trajectory records", file=sys.stderr)
        return 2

    bars = _BARS_ASCII if args.ascii else _BARS
    # Quick and full records measure different sizes: split the axes.
    groups: List[Tuple[str, List[Dict[str, Any]]]] = []
    for mode_name, quick in (("full mode", False), ("quick mode", True)):
        subset = [r for r in records if bool(r.get("quick")) is quick]
        if subset:
            groups.append((mode_name, subset))

    wanted = [args.metric] if args.metric else sorted(METRICS)
    print(f"perf trajectory: {args.file} ({len(records)} records)")
    for mode_name, subset in groups:
        print(f"\n== {mode_name} ({len(subset)} records, oldest -> newest) ==")
        for name in wanted:
            block = render_metric(name, subset, bars, show_rows=not args.no_rows)
            if block is not None:
                print(block)
    return 0


if __name__ == "__main__":
    sys.exit(main())
