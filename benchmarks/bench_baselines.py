"""Benchmark X1 — Algorithm 1 versus Maestro-style and Graceful-style DPU.

Quantifies the paper's Section 4.2/5.3 comparison under an identical load
and an identical CT→CT replacement.
"""

import pytest

from conftest import q, report
from repro.experiments import run_comparison


@pytest.mark.benchmark(group="baselines")
def test_dpu_solutions_compared(benchmark):
    result = benchmark.pedantic(
        lambda: run_comparison(n=5, load=100.0, duration=q(10.0, 4.0), seed=13),
        rounds=1,
        iterations=1,
    )
    report("baselines_x1", result.render())

    ours = result.row("algorithm1")
    maestro = result.row("maestro")
    graceful = result.row("graceful")

    # The paper's comparison, as assertions:
    # 1. our solution never blocks the application; both baselines do.
    assert ours.app_blocked_total == 0.0
    assert maestro.app_blocked_total > 0.0
    assert graceful.app_blocked_total > 0.0
    # 2. Maestro (whole-stack, announce-to-go blocking) blocks longer
    #    than Graceful (deactivate-to-activate blocking).
    assert maestro.app_blocked_total > graceful.app_blocked_total
    # 3. every solution completes its switch.
    for row in result.rows:
        assert row.switch_duration is not None and row.switch_duration > 0
