"""Benchmark A2 — ablation: module-creation cost versus switch perturbation.

The knob behind Figure 5's spike: the longer the new module takes to
create, the longer the abcast service stays unbound and the taller/wider
the latency perturbation.  The paper's ≈1 s perturbation corresponds to
its Java prototype's end-to-end replacement cost.
"""

import pytest

from conftest import q, report
from repro.experiments import run_creation_cost_ablation
from repro.sim import ms
from repro.viz import render_table


@pytest.mark.benchmark(group="ablation-creation")
def test_creation_cost_sweep(benchmark):
    costs = q((0.0, ms(5.0), ms(25.0), ms(100.0)), (0.0, ms(25.0)))
    points = benchmark.pedantic(
        lambda: run_creation_cost_ablation(
            costs=costs, n=5, load=150.0, duration=q(10.0, 4.0), seed=16
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.creation_cost * 1e3,
            p.peak_factor if p.peak_factor is not None else float("nan"),
            p.perturbation_duration if p.perturbation_duration is not None else 0.0,
            p.blocked_time_total * 1e3,
        )
        for p in points
    ]
    report(
        "ablation_creation_a2",
        render_table(
            ["creation [ms]", "peak x baseline", "perturbation [s]", "blocked [ms]"],
            rows,
            title="A2 — creation cost vs switch perturbation",
        ),
    )
    # Blocked time grows monotonically with the creation cost.
    blocked = [p.blocked_time_total for p in points]
    assert all(b1 <= b2 + 1e-9 for b1, b2 in zip(blocked, blocked[1:]))
    # With zero cost the switch is atomic: no blocking at all.
    assert blocked[0] == 0.0
