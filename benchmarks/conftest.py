"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artefacts (see
DESIGN.md §5) and writes its rendered rows/series to
``benchmarks/out/<name>.txt`` so the reproduction record in
EXPERIMENTS.md can be refreshed from the files.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(name: str, text: str) -> None:
    """Print *text* and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
