"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artefacts (see
DESIGN.md §5) and writes its rendered rows/series to
``benchmarks/out/<name>.txt`` so the reproduction record in
EXPERIMENTS.md can be refreshed from the files.
"""

from __future__ import annotations

import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Quick mode (``REPRO_BENCH_QUICK=1``): every benchmark shrinks its grid
#: and run length so the whole suite finishes in seconds.  CI uses this
#: (with ``--benchmark-disable``) as a smoke gate that every benchmark
#: still *runs*; the measured numbers and the shape assertions that need
#: long runs are only meaningful in full mode.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def q(full, quick):
    """Pick the *full* or *quick* variant of a benchmark parameter."""
    return quick if QUICK else full


def report(name: str, text: str) -> None:
    """Print *text* and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
