#!/usr/bin/env python3
"""Regenerate the paper's Figure 5 interactively (full scale).

Average ABcast latency as a function of send time, n = 7, with the
Chandra–Toueg ABcast replaced by itself in the middle of the run —
"while performing all steps of the replacement algorithm (e.g., unbinding
the old module, creating a new module, etc.)".

Takes a minute or two of wall time (it is a full deterministic simulation
of 7 machines under load).

Run:  python examples/figure5_replay.py [--fast]
"""

import sys

from repro.experiments import GroupCommConfig, PROTOCOL_CT, run_figure5


def main() -> None:
    fast = "--fast" in sys.argv
    cfg = GroupCommConfig(n=7, seed=5, load_msgs_per_sec=200.0)
    duration = 8.0 if fast else 16.0
    result = run_figure5(cfg, duration=duration, to_protocol=PROTOCOL_CT)
    print(result.render(width=76, height=20))


if __name__ == "__main__":
    main()
