#!/usr/bin/env python3
"""Fault-injection campaigns: the adversarial schedule space, end to end.

Runs the ``smoke`` campaign over two seeds (fanned over a process pool
with ``jobs=2`` — reports are byte-identical for any jobs value), prints
the per-run summary including the crash-recovery ``rejoined`` field, and
then composes a *custom* scenario on the fly — a partition, a crash, and
a fault-triggered protocol switch in one schedule — to show that
scenarios are plain declarative values.

Campaigns default to the ``structural`` kernel-trace depth: everything
the property checkers consume, without the per-call record firehose
(``trace="full"`` restores it; reports are byte-identical either way).

Run:  python examples/scenario_campaign.py
"""

from repro.experiments import PROTOCOL_SEQ
from repro.scenarios import (
    Crash,
    Heal,
    Partition,
    ScenarioSpec,
    SwitchOnFault,
    get_campaign,
    run_campaign,
    run_scenario,
)
from repro.viz import render_table


def main() -> None:
    # 1. The registered CI gate, over two seeds, process-parallel.
    result = run_campaign(get_campaign("smoke"), seeds=(0, 1), jobs=2)
    print(render_table(
        ["scenario", "seed", "verdict", "sent", "ordered", "violations"],
        result.summary_rows(),
        title="smoke campaign",
    ))
    assert result.ok, "smoke campaign must be violation-free"

    # The smoke campaign includes a crash-recovery restart mid-switch:
    # the recovered stack re-joins through the GM state transfer, and
    # its re-join instant narrows the liveness exemptions back.
    for run in result.results:
        if run.rejoined:
            rejoins = {s: f"t={t:.3f}s" for s, t in sorted(run.rejoined.items())}
            print(f"  {run.name} seed={run.seed}: re-joined stacks {rejoins}")
    assert any(run.rejoined for run in result.results), \
        "recover-during-switch must produce a GM re-join"

    # 2. A custom composed scenario: partition 3|2, crash inside the
    #    minority, and switch to the sequencer 100 ms after the crash.
    spec = ScenarioSpec(
        name="custom-partition-crash-switch",
        description="composed on the fly by examples/scenario_campaign.py",
        n=5,
        duration=6.0,
        load_msgs_per_sec=80.0,
        faults=(
            Partition(at=2.0, groups=((0, 1, 2), (3, 4))),
            Crash(at=2.5, machine=4),
            Heal(at=4.0),
        ),
        switches=(SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=1, delay=0.1),),
        quiescence_extra=14.0,
    )
    run = run_scenario(spec, seed=3)
    print(f"custom scenario: {'ok' if run.ok else 'VIOLATIONS'}; "
          f"faults={[(f['kind'], f['time']) for f in run.faults]}")
    print(f"  switch fired: {run.switches_fired}")
    print(f"  final protocols on correct stacks: "
          f"{ {s: run.final_protocols[s] for s in run.correct_stacks} }")
    assert run.ok
    print("all property checkers green across the campaign ✔")


if __name__ == "__main__":
    main()
