#!/usr/bin/env python3
"""Fault injection: a machine crashes in the middle of a replacement.

Five machines, constant load, a CT→CT replacement at t=4s — and machine 3
crashes 2 ms into the replacement window.  The survivors must finish the
switch consistently, keep delivering in identical total order, and group
membership must expel the dead machine.

Run:  python examples/crash_during_switch.py
"""

from repro.dpu import assert_abcast_properties
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    build_group_comm_system,
)


def main() -> None:
    crash_stack, crash_at = 3, 4.002
    cfg = GroupCommConfig(
        n=5, seed=11, load_msgs_per_sec=80.0, load_stop=9.0, with_gm=True
    )
    gcs = build_group_comm_system(cfg)
    gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=4.0)
    gcs.system.crash_at(crash_stack, crash_at)
    gcs.run(until=9.0)
    gcs.run_to_quiescence(extra=8.0)

    alive = [s for s in range(5) if s != crash_stack]
    print(f"crashed: machine {crash_stack} at t={crash_at}s (mid-replacement)")

    print("== switch outcome on survivors ==")
    for s in alive:
        repl = gcs.manager.module(s)
        print(f"  stack {s}: version {repl.seq_number}, protocol {repl.current_protocol}")

    print("== membership reacted ==")
    gm = next(m for m in gcs.system.stack(0).modules.values() if m.protocol == "gm")
    print(f"  final view: {sorted(gm.members)}")

    # Messages the crashed machine sent right at the end may be cut off
    # mid-protocol; they are exempt from the liveness-flavoured checks.
    in_flight = {
        k for k, (sender, _t) in gcs.log.sends.items() if sender == crash_stack
    }
    assert_abcast_properties(
        gcs.log, {crash_stack: crash_at}, list(range(5)), in_flight_ok=in_flight
    )
    seqs = {tuple(gcs.log.delivery_sequence(s)) for s in alive}
    assert len(seqs) == 1, "survivors must agree on the delivery sequence"
    print("survivors consistent; all ABcast properties hold ✔")


if __name__ == "__main__":
    main()
