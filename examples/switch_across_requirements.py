#!/usr/bin/env python3
"""Structural flexibility (experiment X2): switching across requirements.

The stack starts on the *sequencer* ABcast — no consensus module, no
failure-detector consumer anywhere.  Switching to the consensus-based
ABcast requires the ``consensus`` service, which nothing in the stack
provides; Algorithm 1's ``create_module`` recursion (lines 22-28)
instantiates the Chandra–Toueg module on every machine, mid-flight.

The Graceful-Adaptation baseline — which restricts alternative
implementations to "the services required by m" — must refuse the same
change.  Both behaviours are shown.

Run:  python examples/switch_across_requirements.py
"""

from repro.baselines import GracefulAdaptorModule
from repro.dpu import assert_abcast_properties
from repro.errors import RequirementError
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    build_group_comm_system,
)
from repro.kernel import WellKnown


def show_bindings(gcs, label):
    stack = gcs.system.stack(0)
    print(f"  {label}:")
    for service in (WellKnown.ABCAST, WellKnown.CONSENSUS):
        module = stack.bound_module(service)
        print(f"    {service:10s} -> {module.protocol if module else '(unbound)'}")


def main() -> None:
    print("== our solution: the recursion creates what the new protocol needs ==")
    cfg = GroupCommConfig(
        n=4, seed=3, load_msgs_per_sec=60.0, load_stop=6.0,
        initial_protocol=PROTOCOL_SEQ,
    )
    gcs = build_group_comm_system(cfg)
    show_bindings(gcs, "before (sequencer ABcast, no consensus)")
    gcs.manager.request_change(PROTOCOL_CT, from_stack=1, at=3.0)
    gcs.run(until=6.0)
    gcs.run_to_quiescence()
    show_bindings(gcs, "after  (consensus created by create_module)")
    assert_abcast_properties(gcs.log, {}, [0, 1, 2, 3])
    print("  no message lost or reordered across the switch ✔")

    print("== Graceful-Adaptation baseline: the same change is refused ==")
    cfg2 = GroupCommConfig(
        n=4, seed=3, load_msgs_per_sec=60.0, load_stop=6.0,
        initial_protocol=PROTOCOL_SEQ, baseline="graceful",
    )
    gcs2 = build_group_comm_system(cfg2)
    adaptor = next(
        m for m in gcs2.system.stack(0).modules.values()
        if isinstance(m, GracefulAdaptorModule)
    )
    try:
        adaptor.request_change(PROTOCOL_CT)
    except RequirementError as exc:
        print(f"  refused, as the paper predicts: {exc}")


if __name__ == "__main__":
    main()
