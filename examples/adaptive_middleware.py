#!/usr/bin/env python3
"""Adaptive group-communication middleware (the paper's headline scenario).

A 5-machine group runs the full Figure 4 stack *including group
membership*, under continuous load.  The operator then adapts the
ordering protocol twice at run time:

* at t=4s the consensus-based ABcast is swapped for the token ring
  (say, to spread ordering load across the machines);
* at t=8s the stack returns to the consensus-based protocol.

Group membership — a protocol *that depends on the replaced one* — keeps
installing views throughout, which is the paper's core demonstration:
"all middleware protocols, including those that depend on the updated
protocols, provide service correctly and with negligible delay while the
global update takes place."

Run:  python examples/adaptive_middleware.py
"""

from repro.dpu import assert_abcast_properties
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_TOKEN,
    build_group_comm_system,
)
from repro.kernel import WellKnown
from repro.metrics import windowed_mean_latency
from repro.sim import to_ms


def gm_of(gcs, stack_id):
    return next(
        m for m in gcs.system.stack(stack_id).modules.values() if m.protocol == "gm"
    )


def main() -> None:
    config = GroupCommConfig(
        n=5, seed=7, load_msgs_per_sec=100.0, load_stop=12.0, with_gm=True
    )
    gcs = build_group_comm_system(config)

    # Two adaptations while the system serves traffic.
    gcs.manager.request_change(PROTOCOL_TOKEN, from_stack=2, at=4.0)
    gcs.manager.request_change(PROTOCOL_CT, from_stack=4, at=8.0)

    # Membership activity right around the first switch: expel machine 4
    # at t=4.05 (mid-replacement!), re-admit it at t=6.
    gm0 = gm_of(gcs, 0)
    gcs.system.sim.schedule_at(4.05, gm0.call, WellKnown.GM, "propose_expel", 4)
    gcs.system.sim.schedule_at(6.0, gm0.call, WellKnown.GM, "propose_join", 4)

    gcs.run(until=12.0)
    gcs.run_to_quiescence()

    print("== adaptation timeline ==")
    for version, window in sorted(gcs.manager.windows.items()):
        print(
            f"  v{version}: -> {window.protocol:13s} "
            f"window {window.duration * 1e3:6.1f} ms "
            f"(triggered t={window.start:.2f}s)"
        )

    print("== group membership (identical on every stack) ==")
    for view_id, members in gm_of(gcs, 0).view_history:
        print(f"  view {view_id}: {sorted(members)}")
    assert all(
        gm_of(gcs, s).view_history == gm_of(gcs, 0).view_history for s in range(1, 4)
    )

    print("== latency per phase ==")
    for label, a, b in (
        ("CT (before)    ", 1.0, 4.0),
        ("token (middle) ", 4.5, 8.0),
        ("CT (after)     ", 8.5, 12.0),
    ):
        lat = windowed_mean_latency(gcs.log, a, b)
        print(f"  {label}: {to_ms(lat):7.2f} ms")

    assert_abcast_properties(gcs.log, gcs.system.trace.crashes(), list(range(5)))
    print("ABcast properties hold across both adaptations ✔")


if __name__ == "__main__":
    main()
