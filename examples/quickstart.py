#!/usr/bin/env python3
"""Quickstart: dynamic protocol update in ~40 lines of API.

Builds the paper's group-communication stack (Figure 4) on three
simulated machines, puts atomic-broadcast load on it, replaces the
Chandra–Toueg ABcast protocol by the fixed-sequencer one *while messages
are flowing*, crashes and recovers a machine (the restart protocol
re-arms its timer wheels in the new incarnation epoch), and verifies the
four ABcast properties across the switch.

Run:  python examples/quickstart.py
(See docs/architecture.md for the layer map, docs/kernel.md for the API.)
"""

from repro.dpu import assert_abcast_properties
from repro.experiments import GroupCommConfig, PROTOCOL_SEQ, build_group_comm_system
from repro.metrics import mean_latency
from repro.sim import to_ms


def main() -> None:
    # 1. Build: 3 machines, the full stack on each, 60 ABcast msgs/s.
    #    (trace="structural" would skip the per-call trace records the
    #    way campaign runs do; the default keeps the full trace.)
    config = GroupCommConfig(n=3, seed=42, load_msgs_per_sec=60.0, load_stop=6.0)
    gcs = build_group_comm_system(config)

    # 2. Schedule a live replacement: CT-ABcast -> sequencer-ABcast at t=3s.
    gcs.manager.request_change(PROTOCOL_SEQ, from_stack=0, at=3.0)

    # 3. Crash-recovery: machine 2 goes down mid-load and comes back as a
    #    new incarnation — Stack.restart() gives every module its
    #    on_restart() hook, re-arming the timer wheels the crash killed.
    gcs.system.machine(2).crash_at(4.5)
    gcs.system.machine(2).recover_at(5.0)

    # 4. Run the distributed execution and drain in-flight messages.
    gcs.run(until=6.0)
    gcs.run_to_quiescence()

    # 5. Inspect.
    window = gcs.manager.window(1)
    m2 = gcs.system.machine(2)
    print(f"sent messages       : {len(gcs.log.sends)}")
    print(f"replacement window  : {window.duration * 1e3:.1f} ms "
          f"(request at t={window.start:.3f}s)")
    print(f"protocols now       : {gcs.manager.current_protocols()}")
    print(f"machine 2           : recovered at t={m2.last_recovered_at:.3f}s, "
          f"incarnation epoch {m2.epoch}")
    print(f"mean latency        : {to_ms(mean_latency(gcs.log)):.2f} ms")

    # 6. Prove the switch was transparent: validity, uniform agreement,
    #    uniform integrity, uniform total order — across the replacement,
    #    with the usual exemptions for the crashed incarnation.
    assert_abcast_properties(gcs.log, gcs.system.trace.crashes(), [0, 1, 2])
    print("all four ABcast properties hold across the replacement ✔")


if __name__ == "__main__":
    main()
