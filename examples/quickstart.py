#!/usr/bin/env python3
"""Quickstart: dynamic protocol update in ~40 lines of API.

Builds the paper's group-communication stack (Figure 4) on three
simulated machines, puts atomic-broadcast load on it, replaces the
Chandra–Toueg ABcast protocol by the fixed-sequencer one *while messages
are flowing*, and verifies the four ABcast properties across the switch.

Run:  python examples/quickstart.py
"""

from repro.dpu import assert_abcast_properties
from repro.experiments import GroupCommConfig, PROTOCOL_SEQ, build_group_comm_system
from repro.metrics import mean_latency
from repro.sim import to_ms


def main() -> None:
    # 1. Build: 3 machines, the full stack on each, 60 ABcast msgs/s.
    config = GroupCommConfig(n=3, seed=42, load_msgs_per_sec=60.0, load_stop=6.0)
    gcs = build_group_comm_system(config)

    # 2. Schedule a live replacement: CT-ABcast -> sequencer-ABcast at t=3s.
    gcs.manager.request_change(PROTOCOL_SEQ, from_stack=0, at=3.0)

    # 3. Run the distributed execution and drain in-flight messages.
    gcs.run(until=6.0)
    gcs.run_to_quiescence()

    # 4. Inspect.
    window = gcs.manager.window(1)
    print(f"sent messages       : {len(gcs.log.sends)}")
    print(f"replacement window  : {window.duration * 1e3:.1f} ms "
          f"(request at t={window.start:.3f}s)")
    print(f"protocols now       : {gcs.manager.current_protocols()}")
    print(f"mean latency        : {to_ms(mean_latency(gcs.log)):.2f} ms")

    # 5. Prove the switch was transparent: validity, uniform agreement,
    #    uniform integrity, uniform total order — across the replacement.
    assert_abcast_properties(gcs.log, gcs.system.trace.crashes(), [0, 1, 2])
    print("all four ABcast properties hold across the replacement ✔")


if __name__ == "__main__":
    main()
