#!/usr/bin/env python3
"""Regenerate the paper's Figure 6 interactively (full grid).

Mean ABcast latency versus load, n ∈ {3, 7}, three configurations each
(without layer / with layer / during replacement).  The full grid is a
substantial simulation batch — several minutes of wall time; ``--fast``
shrinks the grid.

Run:  python examples/figure6_sweep.py [--fast]
"""

import sys

from repro.experiments import run_figure6


def main() -> None:
    fast = "--fast" in sys.argv
    loads = (50.0, 150.0) if fast else (50.0, 100.0, 150.0, 250.0, 350.0, 450.0)
    sizes = (3,) if fast else (3, 7)
    duration = 4.0 if fast else 8.0
    result = run_figure6(group_sizes=sizes, loads=loads, duration=duration, seed=6)
    print(result.render(width=76, height=20))
    for n in sizes:
        for load in loads:
            overhead = result.overhead_at(n, load)
            if overhead is not None:
                print(f"layer overhead at n={n}, load={load:.0f}: {overhead * 100:.1f}%")


if __name__ == "__main__":
    main()
