"""Deterministic random-number streams.

A simulation run must be reproducible from a single integer seed, yet the
components drawing randomness (network jitter, load generators, failure
injection, ...) must not perturb each other's streams when one of them
draws more or fewer numbers.  The classic solution — used across the HPC
simulation literature — is one *named* independent substream per component.

:class:`RngRegistry` derives each substream from the root
:class:`numpy.random.SeedSequence` and the component's name, so

* the same ``(seed, name)`` always yields the same stream, and
* adding a new component never shifts the streams of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "stable_hash64"]


def stable_hash64(name: str) -> int:
    """A process-independent 64-bit hash of *name*.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    to derive reproducible seeds; BLAKE2 is stable everywhere.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so components may freely re-request their stream.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(stable_hash64(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per machine) from *name*."""
        return RngRegistry(seed=self._seed ^ stable_hash64(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
