"""Deterministic random-number streams.

A simulation run must be reproducible from a single integer seed, yet the
components drawing randomness (network jitter, load generators, failure
injection, ...) must not perturb each other's streams when one of them
draws more or fewer numbers.  The classic solution — used across the HPC
simulation literature — is one *named* independent substream per component.

:class:`RngRegistry` derives each substream from the root
:class:`numpy.random.SeedSequence` and the component's name, so

* the same ``(seed, name)`` always yields the same stream, and
* adding a new component never shifts the streams of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["BufferedDraws", "RngRegistry", "stable_hash64"]


def stable_hash64(name: str) -> int:
    """A process-independent 64-bit hash of *name*.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    to derive reproducible seeds; BLAKE2 is stable everywhere.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so components may freely re-request their stream.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(stable_hash64(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per machine) from *name*."""
        return RngRegistry(seed=self._seed ^ stable_hash64(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"


class BufferedDraws:
    """Block-buffered scalar draws from one named stream.

    Per-datagram and per-tick code draws *one* number at a time, but a
    ``numpy.random.Generator`` pays most of its cost in Python call
    overhead, not in bit generation.  :class:`BufferedDraws` vectorises:
    it fills a block of *block* values in one generator call and serves
    them back as plain Python floats.

    **Determinism contract.**  numpy's ``Generator`` fills an array with
    exactly the same values, in the same order, as the corresponding
    sequence of scalar calls (the distribution kernels consume the
    underlying bitstream sequentially either way).  So as long as a
    stream's draw sequence is *homogeneous* — same distribution, same
    parameters — the buffered sequence is **bit-identical** to the scalar
    one, and same-seed runs are unchanged.  Switching distribution or
    parameters mid-stream discards the rest of the buffer: still fully
    deterministic (the refill schedule is a pure function of the call
    sequence), but the prefetched bits shift the stream relative to pure
    scalar code.  The hot streams in this repo (network latency, network
    impairments, workload jitter) are all homogeneous.
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx", "_kind")

    def __init__(self, rng: np.random.Generator, block: int = 256) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = int(block)
        self._buf: list = []
        self._idx = 0
        self._kind: Optional[Tuple] = None

    @property
    def raw(self) -> np.random.Generator:
        """The underlying generator, after discarding any buffered values.

        For draw shapes :class:`BufferedDraws` does not cover (``choice``,
        ``shuffle``, ...).  Discarding keeps the interleaving of buffered
        and raw draws a deterministic function of the call sequence.
        """
        self._buf = []
        self._idx = 0
        self._kind = None
        return self._rng

    def _serve(self, kind: Tuple, fill) -> float:
        if self._kind != kind or self._idx >= len(self._buf):
            self._buf = fill(self._rng, self._block).tolist()
            self._idx = 0
            self._kind = kind
        value = self._buf[self._idx]
        self._idx += 1
        return value

    # The per-kind methods inline the buffer-hit case — no tuple or
    # closure allocation per draw — because they sit on the per-datagram
    # path; only a refill (or a parameter change) builds anything.
    def random(self) -> float:
        """One uniform draw on [0, 1) — block-buffered ``rng.random()``."""
        if self._kind is _KIND_RANDOM and self._idx < len(self._buf):
            value = self._buf[self._idx]
            self._idx += 1
            return value
        return self._serve(_KIND_RANDOM, lambda rng, n: rng.random(n))

    def _take_block(self, kind: Tuple, fill, count: int) -> list:
        """*count* draws of *kind*, bit-identical to *count* scalar calls.

        Serves whole buffer slices instead of one value per call, but
        refills in exactly the scalar path's ``_block``-sized steps — the
        refill schedule is what keeps the underlying bitstream aligned
        with scalar code, so mixing scalar and block draws on one stream
        stays deterministic.
        """
        out: list = []
        remaining = count
        while remaining > 0:
            if self._kind != kind or self._idx >= len(self._buf):
                self._buf = fill(self._rng, self._block).tolist()
                self._idx = 0
                self._kind = kind
            take = len(self._buf) - self._idx
            if take > remaining:
                take = remaining
            out.extend(self._buf[self._idx : self._idx + take])
            self._idx += take
            remaining -= take
        return out

    def random_block(self, count: int) -> np.ndarray:
        """*count* uniform draws on [0, 1), served from the same buffer."""
        return np.asarray(self._take_block(_KIND_RANDOM, lambda rng, n: rng.random(n), count))

    def uniform_block(self, low: float, high: float, count: int) -> list:
        """*count* ``uniform(low, high)`` draws, served from the same buffer."""
        return self._take_block(
            ("uniform", low, high), lambda rng, n: rng.uniform(low, high, n), count
        )

    def exponential_block(self, scale: float, count: int) -> list:
        """*count* ``exponential(scale)`` draws, served from the same buffer."""
        return self._take_block(
            ("exponential", scale), lambda rng, n: rng.exponential(scale, n), count
        )

    def lognormal_block(self, mu: float, sigma: float, count: int) -> list:
        """*count* ``lognormal(mu, sigma)`` draws, served from the same buffer."""
        return self._take_block(
            ("lognormal", mu, sigma), lambda rng, n: rng.lognormal(mu, sigma, n), count
        )

    def uniform(self, low: float, high: float) -> float:
        """Block-buffered ``rng.uniform(low, high)``."""
        kind = self._kind
        if (
            self._idx < len(self._buf)
            and kind is not None
            and kind[0] == "uniform"
            and kind[1] == low
            and kind[2] == high
        ):
            value = self._buf[self._idx]
            self._idx += 1
            return value
        return self._serve(
            ("uniform", low, high), lambda rng, n: rng.uniform(low, high, n)
        )

    def exponential(self, scale: float) -> float:
        """Block-buffered ``rng.exponential(scale)``."""
        kind = self._kind
        if (
            self._idx < len(self._buf)
            and kind is not None
            and kind[0] == "exponential"
            and kind[1] == scale
        ):
            value = self._buf[self._idx]
            self._idx += 1
            return value
        return self._serve(
            ("exponential", scale), lambda rng, n: rng.exponential(scale, n)
        )

    def lognormal(self, mu: float, sigma: float) -> float:
        """Block-buffered ``rng.lognormal(mu, sigma)``."""
        kind = self._kind
        if (
            self._idx < len(self._buf)
            and kind is not None
            and kind[0] == "lognormal"
            and kind[1] == mu
            and kind[2] == sigma
        ):
            value = self._buf[self._idx]
            self._idx += 1
            return value
        return self._serve(
            ("lognormal", mu, sigma), lambda rng, n: rng.lognormal(mu, sigma, n)
        )

    def integers(self, high: int) -> int:
        """Block-buffered ``rng.integers(high)`` (one draw on [0, high))."""
        kind = self._kind
        if (
            self._idx < len(self._buf)
            and kind is not None
            and kind[0] == "integers"
            and kind[1] == high
        ):
            value = self._buf[self._idx]
            self._idx += 1
            return value
        return self._serve(
            ("integers", high), lambda rng, n: rng.integers(high, size=n)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        left = len(self._buf) - self._idx
        return f"<BufferedDraws block={self._block} kind={self._kind} buffered={left}>"


_KIND_RANDOM = ("random",)
