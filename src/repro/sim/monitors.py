"""Simulation probes: periodic sampling and counters.

Probes observe a running simulation without perturbing it (they fire at
:data:`~repro.sim.events.PRIORITY_LATE`, i.e. after all protocol events at
the same instant).  Experiments use them to sample CPU backlog, queue
lengths, and in-flight message counts for the time-series plots.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .clock import Duration, Time
from .engine import Simulator
from .events import PRIORITY_LATE

__all__ = ["PeriodicProbe", "Counter", "EventLog"]


class PeriodicProbe:
    """Sample ``fn()`` every *interval* seconds, recording ``(time, value)``.

    The probe re-arms itself until :meth:`stop` is called or the
    simulation ends.  Samples are kept in :attr:`samples`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: Duration,
        fn: Callable[[], Any],
        start_at: Time = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.samples: List[Tuple[Time, Any]] = []
        self._stopped = False
        self._handle = sim.schedule_at(
            max(start_at, sim.now), self._tick, priority=PRIORITY_LATE
        )

    def _tick(self) -> None:
        if self._stopped:
            return
        self.samples.append((self.sim.now, self.fn()))
        self._handle = self.sim.schedule(
            self.interval, self._tick, priority=PRIORITY_LATE
        )

    def stop(self) -> None:
        """Stop sampling (keeps the samples collected so far)."""
        self._stopped = True
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def values(self) -> List[Any]:
        """Just the sampled values, without timestamps."""
        return [v for _, v in self.samples]


class Counter:
    """A named bag of monotonic counters (messages sent, retransmits, ...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        """Add *amount* to counter *key* (creating it at zero)."""
        self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str) -> int:
        """Current value of *key* (0 if never incremented)."""
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        """A snapshot copy of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class EventLog:
    """An append-only log of timestamped records, filterable by kind.

    A lightweight alternative to the kernel's full trace recorder for
    experiment-level annotations ("replacement started", "crash injected").
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.capacity = capacity
        self.records: List[Tuple[Time, str, Any]] = []
        # Per-kind index: campaign checkers call of_kind/first/last once
        # per property per run, which used to linear-scan the whole log.
        self._by_kind: Dict[str, List[Tuple[Time, Any]]] = {}

    def record(self, kind: str, payload: Any = None) -> None:
        """Append a ``(now, kind, payload)`` record."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            return
        now = self.sim.now
        self.records.append((now, kind, payload))
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = []
        bucket.append((now, payload))

    def of_kind(self, kind: str) -> List[Tuple[Time, Any]]:
        """All ``(time, payload)`` records of the given *kind*, in order."""
        return list(self._by_kind.get(kind, ()))

    def first(self, kind: str) -> Optional[Tuple[Time, Any]]:
        """The earliest record of *kind*, or ``None``."""
        bucket = self._by_kind.get(kind)
        return bucket[0] if bucket else None

    def last(self, kind: str) -> Optional[Tuple[Time, Any]]:
        """The latest record of *kind*, or ``None``."""
        bucket = self._by_kind.get(kind)
        return bucket[-1] if bucket else None
