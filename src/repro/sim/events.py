"""Event queue for the discrete-event engine.

The queue is a binary heap whose entries are plain tuples, keyed by
``(time, priority, seq)``:

* ``time`` — the simulated instant the event fires;
* ``priority`` — ties at the same instant are broken by priority
  (lower fires first), letting infrastructure events (e.g. crash
  processing) pre-empt ordinary protocol events deterministically;
* ``seq`` — a monotonically increasing sequence number, so events
  scheduled earlier fire earlier among equals.  This makes every run
  with the same seed **bit-for-bit deterministic**, which the property
  tests rely on to shrink counterexamples.

Two kinds of heap entry coexist:

* **cancellable** — ``(time, priority, seq, handle)`` where *handle* is a
  slotted :class:`EventHandle` the caller can :meth:`~EventQueue.cancel`;
* **fire-and-forget** — ``(time, priority, seq, callback, args)``, pushed
  by :meth:`EventQueue.push_fast` with no handle allocation at all.  The
  vast majority of events (network deliveries, CPU completions) are never
  cancelled, so this is the engine's hot path.

Because ``seq`` is unique, tuple comparison always terminates within the
first three elements and the two entry shapes mix freely in one heap.
Cancellation is *lazy*: :meth:`EventQueue.cancel` marks the handle and the
heap drops cancelled entries when they surface, which keeps both schedule
and cancel O(log n) amortised.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from .clock import Time

__all__ = ["EventHandle", "EventQueue", "PRIORITY_CONTROL", "PRIORITY_NORMAL", "PRIORITY_LATE"]

#: Fires before ordinary events at the same instant (crashes, engine control).
PRIORITY_CONTROL = 0
#: Default priority for protocol and timer events.
PRIORITY_NORMAL = 10
#: Fires after ordinary events at the same instant (probes, sampling).
PRIORITY_LATE = 20


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: Time,
        priority: int,
        seq: int,
        callback: Optional[Callable[..., Any]],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True
        self.callback = None  # break reference cycles early
        self.args = ()

    @property
    def active(self) -> bool:
        """``True`` while the event is still going to fire."""
        return not self.cancelled

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<EventHandle t={self.time:.6f} prio={self.priority} seq={self.seq} {state}>"


class EventQueue:
    """A deterministic priority queue of scheduled events.

    The active count is derived (``len(heap) - pending cancellations``)
    rather than maintained per push/pop, which keeps the hot paths free
    of bookkeeping: pushes are a bare ``heappush`` and only
    :meth:`cancel` — the rare operation — touches a counter.
    """

    __slots__ = ("_heap", "_counter", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._counter = itertools.count()
        self._cancelled = 0  # cancelled entries still sitting in the heap

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(
        self,
        time: Time,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback(*args)* at instant *time* and return its handle."""
        handle = EventHandle(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, (time, priority, handle.seq, handle))
        return handle

    def push_fast(
        self,
        time: Time,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule a fire-and-forget event: no handle, not cancellable."""
        heapq.heappush(
            self._heap, (time, priority, next(self._counter), callback, args)
        )

    def cancel(self, handle: EventHandle) -> None:
        """Cancel *handle*; a no-op if it already fired or was cancelled.

        A fired handle is recognised by its ``fired`` flag (set by
        :meth:`pop`) or its released callback (nulled by the engine's
        dispatch loops), so a late cancel never corrupts the active count.
        """
        if handle.cancelled or handle.fired or handle.callback is None:
            return
        handle.cancel()
        self._cancelled += 1

    def pop(self) -> EventHandle:
        """Remove and return the next active event.

        Fire-and-forget entries are materialised into a transient
        :class:`EventHandle` for the caller's convenience — :meth:`pop` is
        the compatibility path; :meth:`Simulator.run` dispatches entries
        without it.

        Raises :class:`IndexError` when the queue holds no active event.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 5:
                handle = EventHandle(entry[0], entry[1], entry[2], entry[3], entry[4])
                handle.fired = True  # already out of the heap: cancel is a no-op
                return handle
            handle = entry[3]
            if handle.cancelled:
                self._cancelled -= 1
                continue
            handle.fired = True
            return handle
        raise IndexError("pop from an empty EventQueue")

    def peek_time(self) -> Optional[Time]:
        """Return the instant of the next active event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 4 and entry[3].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            if len(entry) == 4:
                entry[3].cancel()
        self._heap.clear()
        self._cancelled = 0
