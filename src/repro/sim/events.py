"""Event queue for the discrete-event engine.

The queue is a binary heap keyed by ``(time, priority, seq)``:

* ``time`` — the simulated instant the event fires;
* ``priority`` — ties at the same instant are broken by priority
  (lower fires first), letting infrastructure events (e.g. crash
  processing) pre-empt ordinary protocol events deterministically;
* ``seq`` — a monotonically increasing sequence number, so events
  scheduled earlier fire earlier among equals.  This makes every run
  with the same seed **bit-for-bit deterministic**, which the property
  tests rely on to shrink counterexamples.

Cancellation is *lazy*: :meth:`EventQueue.cancel` marks the handle and the
heap drops cancelled entries when they surface, which keeps both schedule
and cancel O(log n) amortised.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .clock import Time

__all__ = ["EventHandle", "EventQueue", "PRIORITY_CONTROL", "PRIORITY_NORMAL", "PRIORITY_LATE"]

#: Fires before ordinary events at the same instant (crashes, engine control).
PRIORITY_CONTROL = 0
#: Default priority for protocol and timer events.
PRIORITY_NORMAL = 10
#: Fires after ordinary events at the same instant (probes, sampling).
PRIORITY_LATE = 20


@dataclass(eq=False)
class EventHandle:
    """A cancellable reference to a scheduled event."""

    time: Time
    priority: int
    seq: int
    callback: Optional[Callable[..., Any]]
    args: tuple = ()
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True
        self.callback = None  # break reference cycles early
        self.args = ()

    @property
    def active(self) -> bool:
        """``True`` while the event is still going to fire."""
        return not self.cancelled

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<EventHandle t={self.time:.6f} prio={self.priority} seq={self.seq} {state}>"


class EventQueue:
    """A deterministic priority queue of :class:`EventHandle`."""

    __slots__ = ("_heap", "_counter", "_len")

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, EventHandle]] = []
        self._counter = itertools.count()
        self._len = 0  # number of *active* events

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(
        self,
        time: Time,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule *callback(*args)* at instant *time* and return its handle."""
        handle = EventHandle(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, (handle.sort_key(), handle))
        self._len += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel *handle*; a no-op if it already fired or was cancelled."""
        if not handle.cancelled:
            handle.cancel()
            self._len -= 1

    def pop(self) -> EventHandle:
        """Remove and return the next active event.

        Raises :class:`IndexError` when the queue holds no active event.
        """
        while self._heap:
            _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._len -= 1
            return handle
        raise IndexError("pop from an empty EventQueue")

    def peek_time(self) -> Optional[Time]:
        """Return the instant of the next active event, or ``None`` if empty."""
        while self._heap:
            _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return handle.time
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for _, handle in self._heap:
            handle.cancel()
        self._heap.clear()
        self._len = 0
