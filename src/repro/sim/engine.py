"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event queue.  Everything
else in the library — network links, protocol modules, load generators,
probes — advances exclusively by scheduling callbacks on the simulator, so
a whole distributed execution is one deterministic, single-threaded event
loop.  This mirrors how the paper's testbed is *modelled* rather than
*timed*: instead of seven Pentium III machines we have seven
:class:`~repro.sim.process.Machine` objects whose CPU costs and network
delays are explicit, seeded random variables.

Design notes
------------
* Determinism: events at equal ``(time, priority)`` fire in scheduling
  order (see :mod:`repro.sim.events`), and all randomness flows through
  :class:`~repro.sim.random.RngRegistry`.  Two runs with the same seed are
  identical, which property-based tests exploit.
* Error transparency: exceptions raised inside callbacks abort the run and
  propagate to the caller; a simulation that swallows errors hides bugs.
* The engine knows nothing about machines, networks or protocols — those
  live in higher layers and only use :meth:`Simulator.schedule` /
  :meth:`Simulator.cancel`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import ScheduleInPastError, SimulationError
from .clock import Duration, Time
from .events import PRIORITY_NORMAL, EventHandle, EventQueue
from .random import RngRegistry

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for every random stream of the run.
    trace_hook:
        Optional callable invoked as ``trace_hook(time, handle)`` just
        before each event fires; used by debugging tools.

    Examples
    --------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(0.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (0.5, ['hello'])
    """

    def __init__(
        self,
        seed: int = 0,
        trace_hook: Optional[Callable[[Time, EventHandle], None]] = None,
    ) -> None:
        self._queue = EventQueue()
        self._now: Time = 0.0
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed=seed)
        self.trace_hook = trace_hook
        self._events_processed = 0
        #: Callbacks invoked (in registration order) when :meth:`run` returns.
        self.at_end: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> Time:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for budget checks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: Duration,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute instant *time*."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        return self._queue.push(time, callback, args, priority)

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, priority: int = PRIORITY_NORMAL
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-firing event and anything already queued for *now*)."""
        return self._queue.push(self._now, callback, args, priority)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._queue.cancel(handle)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        handle = self._queue.pop()
        if handle.time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"event queue returned past event: {handle.time} < {self._now}"
            )
        self._now = handle.time
        callback, args = handle.callback, handle.args
        # Release the handle's references before invoking, so callbacks that
        # reschedule themselves do not accumulate chains of dead handles.
        handle.callback, handle.args = None, ()
        self._events_processed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, handle)
        assert callback is not None
        callback(*args)
        return True

    def run(
        self,
        until: Optional[Time] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue empties, *until* is reached, or *max_events* fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire,
        and the clock is advanced to ``until`` even if the queue empties
        earlier (so probes see the full window).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        budget = max_events if max_events is not None else -1
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if budget == 0:
                    raise SimulationError(
                        f"max_events={max_events} exhausted at t={self._now}"
                    )
                self.step()
                if budget > 0:
                    budget -= 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        for hook in self.at_end:
            hook()

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={len(self._queue)} "
            f"fired={self._events_processed}>"
        )
