"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event queue.  Everything
else in the library — network links, protocol modules, load generators,
probes — advances exclusively by scheduling callbacks on the simulator, so
a whole distributed execution is one deterministic, single-threaded event
loop.  This mirrors how the paper's testbed is *modelled* rather than
*timed*: instead of seven Pentium III machines we have seven
:class:`~repro.sim.process.Machine` objects whose CPU costs and network
delays are explicit, seeded random variables.

Design notes
------------
* Determinism: events at equal ``(time, priority)`` fire in scheduling
  order (see :mod:`repro.sim.events`), and all randomness flows through
  :class:`~repro.sim.random.RngRegistry`.  Two runs with the same seed are
  identical, which property-based tests exploit.
* Error transparency: exceptions raised inside callbacks abort the run and
  propagate to the caller; a simulation that swallows errors hides bugs.
* The engine knows nothing about machines, networks or protocols — those
  live in higher layers and only use :meth:`Simulator.schedule` /
  :meth:`Simulator.cancel` (or the fire-and-forget
  :meth:`Simulator.schedule_fast` family when the event is never
  cancelled).
* Throughput: :meth:`run` dispatches heap entries inline — one heap
  inspection per event, no per-event method calls or handle round-trips —
  because campaign throughput is bounded by this loop.  The readable
  one-event-at-a-time path survives as :meth:`step`.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Sequence

from ..errors import ScheduleInPastError, SimulationError
from ..runtime.api import Scheduler
from .clock import Duration, Time
from .events import PRIORITY_NORMAL, EventHandle, EventQueue
from .random import RngRegistry

__all__ = ["Simulator"]


class Simulator(Scheduler):
    """A deterministic discrete-event simulator.

    ``Simulator`` is the native implementation of the
    :class:`~repro.runtime.api.Scheduler` contract (the runtime seam);
    :class:`~repro.runtime.realtime.RealtimeScheduler` is its
    wall-clock twin.  The base class is pure interface (``__slots__ =
    ()``), so nothing changes on the dispatch hot path.

    Parameters
    ----------
    seed:
        Root seed for every random stream of the run.
    trace_hook:
        Optional callable invoked as ``trace_hook(time, handle)`` just
        before each event fires; used by debugging tools.  Fire-and-forget
        events surface as transient handles.

    Examples
    --------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(0.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (0.5, ['hello'])
    """

    __slots__ = (
        "_queue",
        "_heap",
        "_seq",
        "_now",
        "_running",
        "_stopped",
        "rng",
        "trace_hook",
        "_events_processed",
        "at_end",
    )

    def __init__(
        self,
        seed: int = 0,
        trace_hook: Optional[Callable[[Time, EventHandle], None]] = None,
    ) -> None:
        self._queue = EventQueue()
        # Cached queue internals for the fire-and-forget push paths (the
        # queue never replaces its heap list or counter, so the aliases
        # stay valid for the simulator's lifetime).
        self._heap = self._queue._heap
        self._seq = self._queue._counter
        self._now: Time = 0.0
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed=seed)
        self.trace_hook = trace_hook
        self._events_processed = 0
        #: Callbacks invoked (in registration order) when :meth:`run` returns.
        self.at_end: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> Time:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for budget checks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    def peek_time(self) -> Optional[Time]:
        """Instant of the earliest scheduled event, or ``None`` when empty.

        One heap-top read; cancelled-but-unpopped entries still count
        (callers use this as a conservative "is anything pending at the
        current instant" probe — e.g. the kernel's batched blocked-call
        drain, which falls back to one-task-per-call whenever an
        equal-time event exists).
        """
        heap = self._heap
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: Duration,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute instant *time*."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        return self._queue.push(time, callback, args, priority)

    def schedule_fast(
        self,
        delay: Duration,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, not cancellable.

        The hot-path variant for the ~90% of events that are never
        cancelled (network deliveries, CPU completions, one-shot ticks);
        ordering semantics are identical to :meth:`schedule`.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        _heappush(
            self._heap, (self._now + delay, priority, next(self._seq), callback, args)
        )

    def schedule_at_fast(
        self,
        time: Time,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no handle, not cancellable."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        # NOTE: Machine.execute_packed pushes this same 5-tuple entry
        # shape directly (one fewer call per kernel dispatch) — keep the
        # two in sync if the heap entry layout ever changes.
        _heappush(self._heap, (time, priority, next(self._seq), callback, args))

    def schedule_burst_fast(
        self,
        times: Sequence[Time],
        callback: Callable[..., Any],
        items: Sequence[Any],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget burst: ``callback(items[i])`` at ``times[i]``.

        One validation pass plus direct heap pushes — the per-event
        method-call overhead of N :meth:`schedule_at_fast` calls
        collapses into one loop over cached locals.  Entry layout and
        sequence-counter semantics are identical to the scalar path, so
        a burst is indistinguishable (to the heap) from the equivalent
        sequence of scalar pushes.
        """
        now = self._now
        heap, seq = self._heap, self._seq
        for time, item in zip(times, items):
            if time < now:
                raise ScheduleInPastError(
                    f"cannot schedule at {time!r}; current time is {now!r}"
                )
            _heappush(heap, (time, priority, next(seq), callback, (item,)))

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, priority: int = PRIORITY_NORMAL
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-firing event and anything already queued for *now*)."""
        return self._queue.push(self._now, callback, args, priority)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._queue.cancel(handle)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        handle = self._queue.pop()
        if handle.time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"event queue returned past event: {handle.time} < {self._now}"
            )
        self._now = handle.time
        callback, args = handle.callback, handle.args
        # Release the handle's references before invoking, so callbacks that
        # reschedule themselves do not accumulate chains of dead handles.
        handle.callback, handle.args = None, ()
        self._events_processed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, handle)
        assert callback is not None
        callback(*args)
        return True

    def run(
        self,
        until: Optional[Time] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue empties, *until* is reached, or *max_events* fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire,
        and the clock is advanced to ``until`` even if the queue empties
        earlier (so probes see the full window).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        horizon = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        # The dispatch loop reaches into the queue's internals: one heap
        # inspection per event instead of peek_time() + pop(), no handle
        # allocation for fire-and-forget entries.  The queue and the
        # engine are one subsystem; everything outside sim/ uses the
        # public API.
        queue = self._queue
        heap = queue._heap
        heappop = _heappop
        trace = self.trace_hook  # a hook installed mid-run applies next run()
        try:
            if trace is None and budget < 0:
                # Common case (no tracing, no event budget): the tightest
                # loop — pop, classify, dispatch.  The event counter is
                # written through from a local (store-only, no load), so
                # callbacks and probes still read a live count mid-run;
                # the empty heap surfaces as IndexError rather than a
                # per-event truthiness check.
                fired = self._events_processed
                while not self._stopped:
                    try:
                        entry = heappop(heap)
                    except IndexError:
                        break
                    time = entry[0]
                    if time > horizon:
                        _heappush(heap, entry)
                        break
                    if len(entry) == 4:
                        handle = entry[3]
                        if handle.cancelled:
                            queue._cancelled -= 1
                            continue
                        callback, args = handle.callback, handle.args
                        handle.callback, handle.args = None, ()
                    else:
                        callback, args = entry[3], entry[4]
                    self._now = time
                    fired += 1
                    self._events_processed = fired
                    callback(*args)
            else:
                while heap and not self._stopped:
                    # Pop-first: one C heap operation per event.  On the
                    # rare horizon/budget overshoot the entry is pushed
                    # back (it is the heap minimum, so reinsertion is
                    # cheap and exact).
                    entry = heappop(heap)
                    if len(entry) == 4:
                        handle = entry[3]
                        if handle.cancelled:
                            queue._cancelled -= 1
                            continue
                        callback, args = handle.callback, handle.args
                    else:
                        handle = None
                        callback, args = entry[3], entry[4]
                    time = entry[0]
                    if time > horizon:
                        _heappush(heap, entry)
                        break
                    if budget == 0:
                        _heappush(heap, entry)
                        raise SimulationError(
                            f"max_events={max_events} exhausted at t={self._now}"
                        )
                    budget -= 1
                    self._now = time
                    self._events_processed += 1
                    if handle is not None:
                        handle.callback, handle.args = None, ()
                        if trace is not None:
                            trace(time, handle)
                    elif trace is not None:
                        trace(
                            time,
                            EventHandle(time, entry[1], entry[2], entry[3], entry[4]),
                        )
                    callback(*args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        for hook in self.at_end:
            hook()

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={len(self._queue)} "
            f"fired={self._events_processed}>"
        )
