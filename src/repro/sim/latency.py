"""Latency models: random variables for network and CPU delays.

A :class:`LatencyModel` is a distribution over non-negative durations.
Models are cheap value objects; sampling takes the generator explicitly so
that each component draws from its own named stream (see
:mod:`repro.sim.random`).

The default model used by the experiments, :func:`lan_latency`, imitates a
switched 100Base-TX Ethernet as in the paper's testbed: a fixed
propagation/switching floor plus a small lognormal jitter tail.  The
*transmission* component (bytes / bandwidth) is handled separately by the
network layer because it depends on the message size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .clock import Duration, us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .random import BufferedDraws

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "ShiftedLatency",
    "lan_latency",
]


class LatencyModel:
    """Base class: a distribution over non-negative durations (seconds)."""

    def sample(self, rng: np.random.Generator) -> Duration:
        """Draw one duration."""
        raise NotImplementedError

    def mean(self) -> Duration:
        """The distribution's mean, used for calibration and documentation."""
        raise NotImplementedError

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        """Draw one duration through a :class:`~repro.sim.random.BufferedDraws`.

        Equivalent to :meth:`sample` on the wrapped stream but served from
        vectorised blocks; hot paths (the network's per-datagram delay)
        call this.  Models that do not override it fall back to a scalar
        draw on the raw generator (discarding any buffered values, which
        keeps the stream deterministic).
        """
        return self.sample(draws.raw)

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        """*count* draws through *draws*, bit-identical to *count*
        :meth:`sample_buffered` calls (the network's batch fan-out path).

        The base implementation loops the scalar path; the distributions
        with a buffered kernel override it with one sliced block per
        call (see :meth:`~repro.sim.random.BufferedDraws._take_block` for
        why the stream stays aligned).
        """
        return [self.sample_buffered(draws) for _ in range(count)]


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Always exactly *value* seconds (useful for deterministic tests)."""

    value: Duration

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"latency must be non-negative, got {self.value}")

    def sample(self, rng: np.random.Generator) -> Duration:
        return self.value

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return self.value

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        return [self.value] * count

    def mean(self) -> Duration:
        return self.value


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform on ``[low, high]`` seconds."""

    low: Duration
    high: Duration

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> Duration:
        return float(rng.uniform(self.low, self.high))

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return draws.uniform(self.low, self.high)

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        return draws.uniform_block(self.low, self.high, count)

    def mean(self) -> Duration:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """``floor`` plus an exponential tail with the given *mean_tail*."""

    mean_tail: Duration
    floor: Duration = 0.0

    def __post_init__(self) -> None:
        if self.mean_tail < 0 or self.floor < 0:
            raise ValueError("mean_tail and floor must be non-negative")

    def sample(self, rng: np.random.Generator) -> Duration:
        return self.floor + float(rng.exponential(self.mean_tail))

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return self.floor + draws.exponential(self.mean_tail)

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        floor = self.floor
        return [floor + v for v in draws.exponential_block(self.mean_tail, count)]

    def mean(self) -> Duration:
        return self.floor + self.mean_tail


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """``floor`` plus a lognormal tail parameterised by its own mean/sigma.

    ``tail_mean`` is the desired *mean of the tail* (not of the underlying
    normal); ``sigma`` is the shape parameter of the underlying normal.
    Lognormal jitter matches measured LAN round-trip residuals well and is
    the default in :func:`lan_latency`.
    """

    tail_mean: Duration
    sigma: float = 0.5
    floor: Duration = 0.0
    #: mu of the underlying normal, derived once at construction (a
    #: ``math.log`` per draw is measurable on the per-datagram path).
    mu: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.tail_mean <= 0:
            raise ValueError("tail_mean must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.floor < 0:
            raise ValueError("floor must be non-negative")
        # mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        object.__setattr__(
            self, "mu", math.log(self.tail_mean) - 0.5 * self.sigma * self.sigma
        )

    def _mu(self) -> float:
        return self.mu

    def sample(self, rng: np.random.Generator) -> Duration:
        return self.floor + float(rng.lognormal(self.mu, self.sigma))

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return self.floor + draws.lognormal(self.mu, self.sigma)

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        floor = self.floor
        return [floor + v for v in draws.lognormal_block(self.mu, self.sigma, count)]

    def mean(self) -> Duration:
        return self.floor + self.tail_mean


@dataclass(frozen=True)
class EmpiricalLatency(LatencyModel):
    """Resample (with replacement) from a recorded set of durations."""

    samples: tuple

    def __init__(self, samples: Sequence[Duration]) -> None:
        values = tuple(float(s) for s in samples)
        if not values:
            raise ValueError("EmpiricalLatency needs at least one sample")
        if any(v < 0 for v in values):
            raise ValueError("EmpiricalLatency samples must be non-negative")
        object.__setattr__(self, "samples", values)

    def sample(self, rng: np.random.Generator) -> Duration:
        return self.samples[int(rng.integers(len(self.samples)))]

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return self.samples[draws.integers(len(self.samples))]

    def mean(self) -> Duration:
        return float(np.mean(self.samples))


@dataclass(frozen=True)
class ShiftedLatency(LatencyModel):
    """Another model plus a constant shift (e.g. a per-hop floor)."""

    base: LatencyModel
    shift: Duration

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise ValueError("shift must be non-negative")

    def sample(self, rng: np.random.Generator) -> Duration:
        return self.shift + self.base.sample(rng)

    def sample_buffered(self, draws: "BufferedDraws") -> Duration:
        return self.shift + self.base.sample_buffered(draws)

    def sample_buffered_block(self, draws: "BufferedDraws", count: int) -> list:
        shift = self.shift
        return [shift + v for v in self.base.sample_buffered_block(draws, count)]

    def mean(self) -> Duration:
        return self.shift + self.base.mean()


def lan_latency(
    floor: Duration = us(60.0),
    jitter_mean: Duration = us(25.0),
    sigma: float = 0.6,
) -> LatencyModel:
    """The default switched-LAN one-way latency model.

    Defaults imitate the paper's 100Base-TX switched Ethernet: ≈60 µs
    store-and-forward floor with a small lognormal jitter tail — the
    *propagation* part only; transmission time (size/bandwidth) is added
    by :class:`repro.net.network.SimNetwork`.
    """
    return LogNormalLatency(tail_mean=jitter_mean, sigma=sigma, floor=floor)
