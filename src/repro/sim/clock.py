"""Simulated time.

Simulated time is a ``float`` number of **seconds** since the start of the
run.  This module centralises the conventions (units, formatting, epsilon
comparisons) so the rest of the library never hard-codes unit conversions.

The paper reports latencies in milliseconds; :func:`ms` / :func:`to_ms`
convert between the two conventions at API boundaries.
"""

from __future__ import annotations

import math

__all__ = [
    "Time",
    "Duration",
    "TIME_EPSILON",
    "ms",
    "us",
    "to_ms",
    "to_us",
    "format_time",
    "time_eq",
    "time_le",
]

#: Simulated instants, seconds since simulation start.
Time = float

#: Simulated durations, seconds.
Duration = float

#: Two instants closer than this are considered simultaneous when comparing
#: measured values (the event queue itself uses exact floats plus sequence
#: numbers for determinism, never the epsilon).
TIME_EPSILON: float = 1e-12


def ms(value: float) -> Duration:
    """Convert *value* milliseconds into a simulated duration (seconds)."""
    return value * 1e-3


def us(value: float) -> Duration:
    """Convert *value* microseconds into a simulated duration (seconds)."""
    return value * 1e-6


def to_ms(duration: Duration) -> float:
    """Convert a simulated duration (seconds) into milliseconds."""
    return duration * 1e3


def to_us(duration: Duration) -> float:
    """Convert a simulated duration (seconds) into microseconds."""
    return duration * 1e6


def format_time(t: Time) -> str:
    """Render *t* with an adaptive unit (for logs and plots).

    >>> format_time(0.0341)
    '34.100ms'
    >>> format_time(12.5)
    '12.500s'
    """
    if not math.isfinite(t):
        return str(t)
    if abs(t) >= 1.0:
        return f"{t:.3f}s"
    if abs(t) >= 1e-3:
        return f"{t * 1e3:.3f}ms"
    return f"{t * 1e6:.3f}us"


def time_eq(a: Time, b: Time, eps: float = TIME_EPSILON) -> bool:
    """``True`` when instants *a* and *b* are within *eps* of each other."""
    return abs(a - b) <= eps


def time_le(a: Time, b: Time, eps: float = TIME_EPSILON) -> bool:
    """``True`` when *a* precedes *b*, tolerating *eps* of float noise."""
    return a <= b + eps
