"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed (7 PCs on switched
100 Mb/s Ethernet): a deterministic event loop (:class:`Simulator`),
simulated hosts with serial CPUs and crash-stop failures
(:class:`Machine`), latency distributions, named random streams, and
non-intrusive probes.
"""

from .clock import Duration, Time, format_time, ms, to_ms, to_us, us
from .engine import Simulator
from .events import (
    PRIORITY_CONTROL,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventHandle,
    EventQueue,
)
from .latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    ShiftedLatency,
    UniformLatency,
    lan_latency,
)
from .faults import FaultInjector, FaultRecord
from .monitors import Counter, EventLog, PeriodicProbe
from .process import Machine
from .random import BufferedDraws, RngRegistry, stable_hash64

__all__ = [
    "Time",
    "Duration",
    "ms",
    "us",
    "to_ms",
    "to_us",
    "format_time",
    "Simulator",
    "EventQueue",
    "EventHandle",
    "PRIORITY_CONTROL",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
    "Machine",
    "FaultInjector",
    "FaultRecord",
    "RngRegistry",
    "BufferedDraws",
    "stable_hash64",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "ShiftedLatency",
    "lan_latency",
    "PeriodicProbe",
    "Counter",
    "EventLog",
]
