"""Deterministic fault injection.

:class:`FaultInjector` is the one place an experiment schedules
adversity: process crashes and recoveries on :class:`Machine`\\ s,
network partitions and heals, per-link loss/duplication/reorder bursts
and latency spikes (delegated to the attached network object), and
randomised schedules (cascades, churn) drawn from the injector's **own
named RNG stream** — so adding or re-ordering fault draws never perturbs
the workload's or the network's randomness, and a run stays reproducible
from its root seed.

Every fault that actually fires is appended to :attr:`records` (at its
simulated firing instant) and announced to the :attr:`on_fault` hooks,
which is what lets a switch plan trigger "replace the protocol when the
first fault is detected" deterministically.

The injector lives in the ``sim`` layer and therefore knows the network
only as a duck-typed object (``partition`` / ``heal`` / ``impair_link`` /
``clear_links`` / ``extra_latency``); the concrete implementation is
:class:`repro.net.network.SimNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .clock import Duration, Time
from .events import PRIORITY_CONTROL
from .engine import Simulator
from .process import Machine
from .random import BufferedDraws

__all__ = ["FaultRecord", "FaultInjector"]


@dataclass(frozen=True)
class FaultRecord:
    """One fault that fired: its instant, kind, and JSON-able detail."""

    time: Time
    kind: str
    detail: Tuple[Any, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """A deterministic plain-dict rendering for campaign reports."""
        return {"time": self.time, "kind": self.kind, "detail": list(self.detail)}


class FaultInjector:
    """Schedules and records faults against machines and a network.

    Parameters
    ----------
    sim:
        The simulator faults are scheduled on.
    machines:
        The machines that may crash/recover (usually ``system.machines``).
    network:
        Optional network object for partition/link/latency faults
        (``SimNetwork`` or anything with the same fault surface).
    name:
        Names the injector's RNG stream (``faults.<name>``), so two
        injectors in one run draw independently.
    """

    def __init__(
        self,
        sim: Simulator,
        machines: Sequence[Machine],
        network: Any = None,
        name: str = "default",
    ) -> None:
        self.sim = sim
        self._machines: Dict[int, Machine] = {m.machine_id: m for m in machines}
        self.network = network
        self.rng = sim.rng.stream(f"faults.{name}")
        #: Block-buffered uniform draws on the injector's stream (used for
        #: randomised schedules; ``self.rng`` stays available — via
        #: ``self.draws.raw`` — for shapes the buffer does not cover).
        self.draws = BufferedDraws(self.rng)
        #: Faults that fired, in firing order.
        self.records: List[FaultRecord] = []
        #: Hooks invoked as ``hook(index, record)`` when a fault fires.
        self.on_fault: List[Callable[[int, FaultRecord], None]] = []
        #: Latency spikes currently active (spikes compose additively and
        #: each revert removes exactly its own delta; when the count hits
        #: zero the total snaps to 0.0 so float residue cannot linger).
        self._active_spikes = 0
        #: Bumped by :meth:`clear_latency_spikes`; a scheduled revert
        #: whose spike began under an older generation is a no-op (its
        #: delta was already reverted wholesale by the clear).
        self._spike_generation = 0

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _record(self, kind: str, *detail: Any) -> None:
        record = FaultRecord(time=self.sim.now, kind=kind, detail=tuple(detail))
        index = len(self.records)
        self.records.append(record)
        for hook in list(self.on_fault):
            hook(index, record)

    def _machine(self, machine_id: int) -> Machine:
        try:
            return self._machines[machine_id]
        except KeyError:
            raise SimulationError(f"fault injector knows no machine {machine_id}")

    def _need_network(self) -> Any:
        if self.network is None:
            raise SimulationError("this fault requires a network to be attached")
        return self.network

    def crashed_ever(self) -> Dict[int, Time]:
        """``machine -> first crash instant`` over the recorded faults."""
        out: Dict[int, Time] = {}
        for record in self.records:
            if record.kind == "crash":
                out.setdefault(int(record.detail[0]), record.time)
        return out

    # ------------------------------------------------------------------ #
    # Immediate faults (also the targets of the *_at schedulers)
    # ------------------------------------------------------------------ #
    def crash(self, machine_id: int) -> None:
        """Crash *machine_id* now (no-op if already down)."""
        machine = self._machine(machine_id)
        if machine.crashed:
            return
        machine.crash()
        self._record("crash", machine_id)

    def recover(self, machine_id: int) -> None:
        """Recover *machine_id* now (no-op if up)."""
        machine = self._machine(machine_id)
        if not machine.crashed:
            return
        machine.recover()
        self._record("recover", machine_id)

    def partition(self, *groups: Sequence[int]) -> None:
        """Split the network into *groups*: cross-group traffic drops."""
        network = self._need_network()
        sets = [set(g) for g in groups if g]
        for i, a in enumerate(sets):
            for b in sets[i + 1:]:
                network.partition(a, b)
        self._record("partition", *[tuple(sorted(g)) for g in sets])

    def partition_oneway(
        self, src_side: Sequence[int], dst_side: Sequence[int]
    ) -> None:
        """Asymmetric split: drop *src_side* → *dst_side* traffic only.

        The reverse direction keeps flowing (a unidirectional-link /
        half-broken-port failure): *src_side* still hears everything but
        its own frames toward *dst_side* vanish until :meth:`heal`.
        """
        network = self._need_network()
        network.partition_oneway(set(src_side), set(dst_side))
        self._record(
            "partition-oneway", tuple(sorted(src_side)), tuple(sorted(dst_side))
        )

    def heal(self) -> None:
        """Remove every partition (symmetric and one-way)."""
        self._need_network().heal()
        self._record("heal")

    def impair_link(
        self,
        src: int,
        dst: int,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: Duration = 0.0,
        extra_latency: Duration = 0.0,
        corrupt_rate: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Degrade the *src→dst* link (both directions when *symmetric*)."""
        self._need_network().impair_link(
            src,
            dst,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            reorder_delay=reorder_delay,
            extra_latency=extra_latency,
            corrupt_rate=corrupt_rate,
            symmetric=symmetric,
        )
        detail = [
            src, dst, loss_rate, duplicate_rate, reorder_rate,
            reorder_delay, extra_latency,
        ]
        if corrupt_rate:
            # Appended conditionally so corruption-free fault records (and
            # the campaign goldens that pin them) keep their shape.
            detail.append(corrupt_rate)
        self._record("impair-link", *detail)

    def clear_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        """Remove the impairment on *src↔dst*."""
        self._need_network().clear_link(src, dst, symmetric=symmetric)
        self._record("clear-link", src, dst)

    def clear_links(self) -> None:
        """Remove every per-link impairment."""
        self._need_network().clear_links()
        self._record("clear-links")

    def latency_spike(self, extra: Duration, duration: Optional[Duration] = None) -> None:
        """Add *extra* seconds of network-wide delivery delay now.

        Immediate and scheduled (:meth:`latency_spike_at`) spikes share
        one additive semantics: overlapping spikes compose, and each one
        reverts exactly its own contribution — either after *duration*
        or via :meth:`clear_latency_spikes`.  Records carry
        ``(delta, total_after)`` so a report shows both the spike's own
        size and the composed network state.
        """
        self._spike_begin(extra, duration)

    def clear_latency_spikes(self) -> None:
        """Revert every active latency spike at once."""
        network = self._need_network()
        self._spike_generation += 1
        if self._active_spikes == 0 and network.extra_latency == 0.0:
            return
        self._active_spikes = 0
        network.extra_latency = 0.0
        self._record("latency-clear", 0.0, 0.0)

    def _spike_begin(self, extra: Duration, duration: Optional[Duration] = None) -> None:
        network = self._need_network()
        self._active_spikes += 1
        network.extra_latency += extra
        self._record("latency-spike", extra, network.extra_latency)
        if duration is not None:
            # The revert is armed at begin time, carrying the current
            # generation: a wholesale clear in between invalidates it.
            self._at(self.sim.now + duration, self._spike_end, extra, self._spike_generation)

    def _spike_end(self, extra: Duration, generation: int) -> None:
        network = self._need_network()
        if generation != self._spike_generation:
            return  # this spike was already reverted by clear_latency_spikes
        self._active_spikes -= 1
        total = network.extra_latency - extra
        if self._active_spikes == 0:
            # Snap instead of trusting float subtraction to cancel: any
            # residue here would be an accounting bug, not physics.
            total = 0.0
        network.extra_latency = total
        self._record("latency-spike", -extra, total)

    # ------------------------------------------------------------------ #
    # Scheduled faults
    # ------------------------------------------------------------------ #
    def _at(self, time: Time, fn: Callable[..., None], *args: Any) -> None:
        self.sim.schedule_at(time, fn, *args, priority=PRIORITY_CONTROL)

    def crash_at(self, time: Time, machine_id: int) -> None:
        """Schedule a crash of *machine_id* at absolute instant *time*."""
        self._at(time, self.crash, machine_id)

    def recover_at(self, time: Time, machine_id: int) -> None:
        """Schedule a recovery of *machine_id* at *time*."""
        self._at(time, self.recover, machine_id)

    def partition_at(self, time: Time, *groups: Sequence[int]) -> None:
        """Schedule a partition into *groups* at *time*."""
        self._at(time, self.partition, *[tuple(g) for g in groups])

    def partition_oneway_at(
        self, time: Time, src_side: Sequence[int], dst_side: Sequence[int]
    ) -> None:
        """Schedule a one-way partition (*src_side* → *dst_side*) at *time*."""
        self._at(time, self.partition_oneway, tuple(src_side), tuple(dst_side))

    def heal_at(self, time: Time) -> None:
        """Schedule a full heal at *time*."""
        self._at(time, self.heal)

    def impair_link_at(self, time: Time, src: int, dst: int, **impairment: Any) -> None:
        """Schedule a link impairment at *time* (kwargs of :meth:`impair_link`)."""
        self._at(time, lambda: self.impair_link(src, dst, **impairment))

    def clear_link_at(self, time: Time, src: int, dst: int) -> None:
        """Schedule removal of the *src↔dst* impairment at *time*."""
        self._at(time, self.clear_link, src, dst)

    def clear_links_at(self, time: Time) -> None:
        """Schedule removal of all link impairments at *time*."""
        self._at(time, self.clear_links)

    def latency_spike_at(
        self, time: Time, extra: Duration, duration: Optional[Duration] = None
    ) -> None:
        """Schedule a latency spike at *time*; auto-reverts after *duration*.

        Same additive semantics as the immediate :meth:`latency_spike`:
        overlapping spikes compose and each one reverts only its own
        contribution when it ends.
        """
        self._at(time, self._spike_begin, extra, duration)

    # ------------------------------------------------------------------ #
    # Randomised schedules (drawn from the injector's own stream)
    # ------------------------------------------------------------------ #
    def random_crashes(
        self,
        count: int,
        start: Time,
        window: Duration,
        candidates: Optional[Sequence[int]] = None,
        recover_after: Optional[Duration] = None,
    ) -> List[Tuple[Time, int]]:
        """Crash *count* distinct machines at uniform instants in
        ``[start, start+window)``; optionally recover each after
        *recover_after*.  Returns the (time, machine) schedule drawn."""
        pool = sorted(self._machines) if candidates is None else sorted(candidates)
        if count > len(pool):
            raise SimulationError(
                f"cannot crash {count} machines out of {len(pool)} candidates"
            )
        picks = self.draws.raw.choice(len(pool), size=count, replace=False)
        times = sorted(
            float(start + t * window) for t in self.draws.random_block(count)
        )
        schedule = [(t, pool[int(i)]) for t, i in zip(times, picks)]
        for t, machine_id in schedule:
            self.crash_at(t, machine_id)
            if recover_after is not None:
                self.recover_at(t + recover_after, machine_id)
        return schedule

    def churn(
        self,
        machine_ids: Sequence[int],
        start: Time,
        period: Duration,
        downtime: Duration,
        cycles: int = 1,
    ) -> None:
        """Cycle each listed machine through crash→recover *cycles* times.

        Machine *k* of the list starts its first outage at
        ``start + k * period / len(machine_ids)`` (staggered), stays down
        *downtime*, and repeats every *period*.
        """
        if downtime >= period:
            raise SimulationError("churn downtime must be shorter than the period")
        ids = list(machine_ids)
        for k, machine_id in enumerate(ids):
            first = start + k * period / max(1, len(ids))
            for cycle in range(cycles):
                down = first + cycle * period
                self.crash_at(down, machine_id)
                self.recover_at(down + downtime, machine_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector faults={len(self.records)} machines={len(self._machines)}>"
