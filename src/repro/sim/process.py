"""Machines: the simulated hosts that run protocol stacks.

A :class:`Machine` models one node of the paper's cluster.  It has

* a **serial CPU**: work submitted via :meth:`execute` runs one item at a
  time, each item occupying the CPU for its declared cost.  Under load the
  completion times form an M/G/1-style queue, which is what produces the
  latency-versus-load curves of the paper's Figure 6 — protocol code never
  sleeps, it *costs*;
* **timers** (:meth:`set_timer`) that silently die when the machine
  crashes;
* **crash-stop failures** (:meth:`crash`): once crashed, no queued work,
  timer, or delivery on this machine ever fires again.  The paper's system
  model is crash-stop (no recovery), and so is the default here;
* **opt-in recovery** (:meth:`recover`) for the fault-injection scenario
  engine: a recovered machine starts a new *incarnation* — everything
  scheduled before the crash (CPU tasks, timers) is permanently dead, the
  CPU queue is empty, but module state survives (it is a simulation; the
  machine behaves like a node that paused and lost its in-flight work).
  The :attr:`on_recover` hooks are the **restart protocol's** entry
  point: the kernel registers one per stack and uses it to re-arm every
  module's timer wheel in the new incarnation epoch (see
  :meth:`repro.kernel.stack.Stack.restart`).  Property checkers treat an
  ever-crashed machine as crashed until it *re-joins* the group, at
  which point the scenario engine narrows the exemption back (see
  ``check_recovery_liveness``).

The machine deliberately knows nothing about protocol stacks; the kernel
layer attaches a stack to a machine, not the other way round.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from heapq import heappush as _heappush

from ..errors import SimulationError
from ..runtime.api import NodeBackend
from .clock import Duration, Time
from .engine import Simulator
from .events import PRIORITY_CONTROL, PRIORITY_NORMAL, EventHandle

__all__ = ["Machine"]


class Machine(NodeBackend):
    """One simulated host with a serial CPU and crash-stop semantics.

    ``Machine`` is the simulation's implementation of the
    :class:`~repro.runtime.api.NodeBackend` contract (the runtime seam);
    :class:`~repro.runtime.realtime.RealtimeNode` is its wall-clock
    twin.  The base class is pure interface (``__slots__ = ()``), so
    inheriting it costs nothing on the hot paths.

    Parameters
    ----------
    sim:
        The simulator this machine lives in.
    machine_id:
        Rank of the machine, ``0 .. n-1``; doubles as the network address.
    name:
        Human-readable name (defaults to ``"m<id>"``).
    """

    __slots__ = (
        "sim",
        "machine_id",
        "name",
        "_crashed_at",
        "_busy_until",
        "_cpu_busy_total",
        "_tasks_executed",
        "_epoch",
        "_crash_count",
        "_recovered_at",
        "on_crash",
        "on_recover",
    )

    def __init__(self, sim: Simulator, machine_id: int, name: Optional[str] = None) -> None:
        self.sim = sim
        self.machine_id = int(machine_id)
        self.name = name if name is not None else f"m{machine_id}"
        self._crashed_at: Optional[Time] = None
        self._busy_until: Time = 0.0
        self._cpu_busy_total: Duration = 0.0
        self._tasks_executed = 0
        self._epoch = 0
        self._crash_count = 0
        self._recovered_at: Optional[Time] = None
        #: Hooks invoked with the crash time when :meth:`crash` fires.
        self.on_crash: List[Callable[[Time], None]] = []
        #: Hooks invoked with the recovery time when :meth:`recover` fires.
        #: The kernel's restart path hangs off these.
        self.on_recover: List[Callable[[Time], None]] = []

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #
    @property
    def crashed(self) -> bool:
        """``True`` once the machine has crashed (crash-stop: forever)."""
        return self._crashed_at is not None

    @property
    def crashed_at(self) -> Optional[Time]:
        """The crash instant, or ``None`` while the machine is alive."""
        return self._crashed_at

    @property
    def crash_count(self) -> int:
        """How many times this machine has crashed so far."""
        return self._crash_count

    @property
    def ever_crashed(self) -> bool:
        """``True`` once the machine crashed at least once (even if it
        recovered since); the conservative notion the property checkers
        quantify over."""
        return self._crash_count > 0

    @property
    def epoch(self) -> int:
        """The current incarnation epoch (increments at every crash).

        Work scheduled under an older epoch never fires; protocol
        payloads that must outlive in-flight traffic from a dead
        incarnation (heartbeats, re-join handshakes) carry this value.
        """
        return self._epoch

    @property
    def last_recovered_at(self) -> Optional[Time]:
        """Instant of the most recent recovery (``None`` if never)."""
        return self._recovered_at

    def crash(self) -> None:
        """Crash the machine now.  Idempotent.

        Work already queued on the CPU, pending timers and in-flight
        deliveries targeting this machine are suppressed: their wrappers
        check :attr:`crashed` (and the incarnation epoch) when they fire.
        """
        if self._crashed_at is not None:
            return
        self._crashed_at = self.sim.now
        self._crash_count += 1
        self._epoch += 1
        for hook in list(self.on_crash):
            hook(self.sim.now)

    def crash_at(self, time: Time) -> EventHandle:
        """Schedule a crash at absolute instant *time* (for fault injection)."""
        return self.sim.schedule_at(time, self.crash, priority=PRIORITY_CONTROL)

    def recover(self) -> None:
        """Bring a crashed machine back up (fault-injection opt-in).

        The recovered incarnation starts with an idle CPU; every task and
        timer scheduled before the crash stays dead (they belong to the
        previous epoch).  The :attr:`on_recover` hooks then run the
        restart protocol (the kernel re-arms each module's timers in the
        new epoch).  No-op while the machine is up.
        """
        if self._crashed_at is None:
            return
        self._crashed_at = None
        self._busy_until = self.sim.now
        self._recovered_at = self.sim.now
        for hook in list(self.on_recover):
            hook(self.sim.now)

    def recover_at(self, time: Time) -> EventHandle:
        """Schedule a recovery at absolute instant *time*."""
        return self.sim.schedule_at(time, self.recover, priority=PRIORITY_CONTROL)

    # ------------------------------------------------------------------ #
    # CPU
    # ------------------------------------------------------------------ #
    @property
    def busy_until(self) -> Time:
        """Instant at which the CPU drains everything currently queued."""
        return max(self._busy_until, self.sim.now)

    @property
    def cpu_backlog(self) -> Duration:
        """Seconds of queued-but-unfinished CPU work (0 when idle)."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def cpu_busy_total(self) -> Duration:
        """Total CPU seconds consumed since the start of the run."""
        return self._cpu_busy_total

    @property
    def tasks_executed(self) -> int:
        """Number of CPU tasks completed so far."""
        return self._tasks_executed

    def execute(self, cost: Duration, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after the CPU has spent *cost* seconds on it.

        The task starts when the CPU becomes free, so its completion time
        is ``max(now, busy_until) + cost``.  When the machine is already
        crashed the work is silently dropped — a crashed machine does
        nothing.  Completions are fire-and-forget events (a crash
        suppresses them through the incarnation-epoch guard, not through
        cancellation), so no handle is allocated or returned.
        """
        if cost < 0:
            raise SimulationError(f"negative CPU cost {cost!r}")
        if self._crashed_at is not None:
            return None
        self.execute_packed(cost, fn, args)

    def execute_packed(self, cost: Duration, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path :meth:`execute`: pre-packed args, no precondition checks.

        The kernel's call/response dispatch calls this once per service
        call, so it skips what :meth:`execute` already guarantees at its
        own call sites — *cost* is non-negative and the machine is up —
        and pushes the completion straight onto the simulator's
        fire-and-forget heap.  Everything observable (completion instant,
        CPU accounting, epoch guard) is identical to :meth:`execute`.
        """
        sim = self.sim
        start = sim._now
        busy = self._busy_until
        if busy > start:
            start = busy
        completion = start + cost
        self._busy_until = completion
        self._cpu_busy_total += cost
        _heappush(
            sim._heap,
            (completion, PRIORITY_NORMAL, next(sim._seq),
             self._run_task, (self._epoch, fn, args)),
        )

    def _run_task(self, epoch: int, fn: Callable[..., Any], args: tuple) -> None:
        if self._crashed_at is not None or epoch != self._epoch:
            return
        self._tasks_executed += 1
        fn(*args)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def set_timer(
        self, delay: Duration, fn: Callable[..., Any], *args: Any
    ) -> Optional[EventHandle]:
        """Fire ``fn(*args)`` after *delay* seconds unless the machine crashes.

        Unlike :meth:`execute`, a timer does not occupy the CPU — the
        callback itself should :meth:`execute` any non-trivial work.
        Returns ``None`` when the machine is already crashed.
        """
        if self.crashed:
            return None
        return self.sim.schedule(delay, self._run_timer, self._epoch, fn, args)

    def set_timer_fast(self, delay: Duration, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`set_timer`: no cancellable handle.

        The one-shot variant for timers that are **never cancelled** —
        periodic wheels that re-arm themselves (FD ticks, ack flushes)
        are the canonical case: each firing allocates a fresh
        :class:`~repro.sim.events.EventHandle` on the ordinary path
        purely to drop it.  Ordering, crash suppression and the
        incarnation-epoch guard are identical to :meth:`set_timer`; the
        only difference is that the caller cannot cancel it.
        """
        if self._crashed_at is not None:
            return
        self.sim.schedule_fast(delay, self._run_timer, self._epoch, fn, args)

    def _run_timer(self, epoch: int, fn: Callable[..., Any], args: tuple) -> None:
        if self._crashed_at is not None or epoch != self._epoch:
            return
        fn(*args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a timer handle returned by :meth:`set_timer`.

        Delegates to the simulator; part of the
        :class:`~repro.runtime.api.NodeBackend` contract so module code
        never needs a direct engine reference to disarm its timers.
        """
        self.sim.cancel(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"crashed@{self._crashed_at:.6f}" if self.crashed else "up"
        return f"<Machine {self.name} id={self.machine_id} {state}>"
