"""The runtime seam: the surface modules may touch, as explicit ABCs.

Protocol modules historically reached time, timers and datagram I/O
*concretely* — through :class:`~repro.sim.engine.Simulator`,
:class:`~repro.sim.process.Machine` and
:class:`~repro.net.network.SimNetwork`.  That worked, but it welded the
whole stack to the discrete-event world: the paper's claim is about a
*running system*, and a runnable system needs the same modules on real
sockets and wall-clock timers.

This module names the seam.  Three narrow contracts cover everything a
module (or the kernel on its behalf) actually uses:

* :class:`Scheduler` — ``now``, the ``schedule*`` family, ``cancel``,
  ``peek_time``, seeded rng streams.  Implemented natively by
  :class:`~repro.sim.engine.Simulator` and by
  :class:`~repro.runtime.realtime.RealtimeScheduler` (asyncio
  wall-clock timers).
* :class:`NodeBackend` — the per-node surface: epoch-guarded timers,
  CPU execution, crash/recover state and hooks.  Implemented by
  :class:`~repro.sim.process.Machine` and
  :class:`~repro.runtime.realtime.RealtimeNode`.
* :class:`Transport` — datagram I/O between nodes: ``attach`` /
  ``detach`` delivery hooks, ``send`` / ``send_local``, counters.
  Implemented by :class:`~repro.net.network.SimNetwork` and
  :class:`~repro.runtime.realtime.RealtimeUdpTransport`.

:class:`Backend` bundles the three into one bootable cluster runtime;
:class:`~repro.runtime.sim_backend.SimBackend` and
:class:`~repro.runtime.realtime.RealtimeBackend` are the two
implementations (the deterministic twin and the deployable one).

Design constraints
------------------
* Every ABC is ``__slots__ = ()`` and import-cycle-free, so the hot
  simulation classes can inherit them without growing a ``__dict__``
  or paying any per-call cost — the seam is a *naming* of the existing
  surface, not an indirection layer.
* The kernel's dispatch fast path reads two node internals directly
  (``_crashed_at`` and ``_busy_until``); they are part of this contract
  (see :class:`NodeBackend`), not private details of ``Machine``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional, Sequence

__all__ = ["Scheduler", "NodeBackend", "Transport", "Backend"]


class Scheduler(ABC):
    """Time and timers: the engine-level half of the runtime seam.

    Implementations must also expose two non-method members:

    * ``rng`` — a :class:`~repro.sim.random.RngRegistry`; modules draw
      named, seeded streams from it (``sim.rng.stream("workload.3")``),
    * ``at_end`` — a mutable list of zero-argument callbacks invoked
      when the run winds down.

    Equal-deadline ordering must be FIFO in scheduling order — the
    determinism contract protocol code relies on (both the simulator's
    sequence counter and asyncio's ``call_later`` guarantee it).
    """

    __slots__ = ()

    @property
    @abstractmethod
    def now(self) -> float:
        """Current runtime time in seconds (simulated or wall-clock)."""

    @property
    @abstractmethod
    def events_processed(self) -> int:
        """Total callbacks fired so far (budget checks, soak metrics)."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Any:
        """Fire ``callback(*args)`` after *delay* seconds; returns a
        cancellable handle (pass it to :meth:`cancel`)."""

    @abstractmethod
    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any,
                      priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, never cancelled."""

    @abstractmethod
    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Any:
        """Fire ``callback(*args)`` at absolute instant *time*."""

    @abstractmethod
    def schedule_at_fast(self, time: float, callback: Callable[..., Any], *args: Any,
                         priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule_at`."""

    def schedule_burst_fast(self, times: Sequence[float],
                            callback: Callable[..., Any], items: Sequence[Any],
                            priority: int = 0) -> None:
        """Fire-and-forget burst: ``callback(items[i])`` at ``times[i]``.

        Semantically identical to ``schedule_at_fast(times[i], callback,
        items[i])`` in sequence — same relative ordering at equal
        deadlines — but implementations may push the whole burst in one
        pass (the simulator does; see
        :meth:`repro.sim.engine.Simulator.schedule_burst_fast`).  This is
        the delivery half of the network's vectorised fan-out path.
        """
        for time, item in zip(times, items):
            self.schedule_at_fast(time, callback, item, priority=priority)

    @abstractmethod
    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  priority: int = 0) -> Any:
        """Fire ``callback(*args)`` as soon as possible, after anything
        already queued for the current instant."""

    @abstractmethod
    def cancel(self, handle: Any) -> None:
        """Cancel a handle returned by the non-fast scheduling calls
        (no-op once it fired)."""

    @abstractmethod
    def peek_time(self) -> Optional[float]:
        """Deadline of the earliest pending event, or ``None`` when that
        is unknowable (real time) or nothing is pending.

        The kernel uses this as a conservative "is anything pending at
        the current instant" probe; returning ``None`` is always safe.
        """


class NodeBackend(ABC):
    """One node's runtime surface: timers, execution, crash state.

    Beyond the abstract methods, implementations expose:

    * ``sim`` — the node's :class:`Scheduler`,
    * ``machine_id`` / ``name`` — rank (doubles as the transport
      address) and human-readable name,
    * ``on_crash`` / ``on_recover`` — hook lists invoked with the
      crash/recovery instant (the kernel's restart protocol hangs off
      ``on_recover``),
    * ``_crashed_at`` / ``_busy_until`` — the two internals the kernel
      dispatch fast path reads directly: crash instant (``None`` while
      up) and the CPU-drain instant (any value ``<= sim.now`` means
      idle; backends without a modelled CPU keep it at ``0.0``).

    Timers and executed work are **epoch-guarded**: work scheduled
    before a crash must never fire in a later incarnation.
    """

    __slots__ = ()

    @property
    @abstractmethod
    def crashed(self) -> bool:
        """Whether the node is currently down."""

    @property
    @abstractmethod
    def ever_crashed(self) -> bool:
        """Whether the node has crashed at least once (even if back up)."""

    @property
    @abstractmethod
    def crash_count(self) -> int:
        """How many times the node has crashed so far."""

    @property
    @abstractmethod
    def epoch(self) -> int:
        """Current incarnation epoch (increments at every crash)."""

    @abstractmethod
    def execute(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after the node's CPU spent *cost* seconds
        on it (backends without a modelled CPU may ignore *cost* but
        must still defer the invocation — callers rely on not being
        re-entered synchronously)."""

    @abstractmethod
    def execute_packed(self, cost: float, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path :meth:`execute`: pre-packed args, preconditions
        (non-negative cost, node up) already checked by the caller."""

    @abstractmethod
    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Optional[Any]:
        """Fire ``fn(*args)`` after *delay* seconds unless the node
        crashes first; returns a cancellable handle (``None`` when the
        node is already down)."""

    @abstractmethod
    def set_timer_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`set_timer` (periodic wheels that
        re-arm themselves and are never cancelled)."""

    @abstractmethod
    def cancel(self, handle: Any) -> None:
        """Cancel a handle returned by :meth:`set_timer`."""

    @abstractmethod
    def crash(self) -> None:
        """Take the node down now (idempotent); pending timers and work
        die with the incarnation."""

    @abstractmethod
    def recover(self) -> None:
        """Bring a crashed node back up as a new incarnation (no-op
        while up); the ``on_recover`` hooks then run the restart
        protocol."""


class Transport(ABC):
    """Datagram I/O between nodes: the network half of the seam.

    Hooks are called as ``hook(message, arrival_time)`` with a
    :class:`~repro.net.message.NetMessage`.  Crash semantics are part of
    the contract: datagrams from crashed senders are never sent, and
    datagrams to crashed receivers are dropped at delivery time (the
    receiver may crash while a datagram is in flight).
    """

    __slots__ = ()

    @abstractmethod
    def attach(self, machine_id: int, hook: Callable[..., None]) -> None:
        """Register the delivery hook for node *machine_id* (its doorway
        module, normally :class:`~repro.net.udp.UdpModule`)."""

    @abstractmethod
    def detach(self, machine_id: int) -> None:
        """Remove the delivery hook of node *machine_id*."""

    @abstractmethod
    def send(self, message: Any) -> None:
        """Send one datagram (unreliable, unordered: whatever the
        substrate does)."""

    def send_many(self, messages: Sequence[Any]) -> None:
        """Send a batch of datagrams, equivalent to :meth:`send` in
        sequence.

        Implementations may vectorise the batch (the simulated network
        draws one latency block and pushes one delivery burst when every
        message takes the homogeneous fast path); the default just
        loops.  Behaviour — delivery order, impairment draws, counters —
        must be indistinguishable from sequential sends.
        """
        for message in messages:
            self.send(message)

    @abstractmethod
    def send_local(self, message: Any) -> None:
        """Loopback delivery to the sender's own hook (no wire, no
        latency model, but still asynchronous)."""

    @abstractmethod
    def stats(self) -> Dict[str, int]:
        """Datagram counters (``sent``, ``bytes_sent``, drop reasons,
        ...) as a plain dict."""


class Backend(ABC):
    """One bootable cluster runtime: a scheduler, *n* nodes, a transport.

    The lifecycle is ``start()`` → build stacks on :attr:`nodes` →
    ``run(duration)`` (repeatable) → ``stop()``.  ``start()`` comes
    *first* because module ``on_start`` hooks arm timers and send
    datagrams immediately — the transport must already be bound.

    Implementations expose ``nodes`` (list of :class:`NodeBackend`,
    index = rank), ``transport`` (:class:`Transport`) and ``sim`` (the
    shared :class:`Scheduler`).
    """

    __slots__ = ()

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abstractmethod
    def start(self) -> None:
        """Bind the transport and make the scheduler ready (idempotent)."""

    @abstractmethod
    def run(self, duration: float) -> None:
        """Advance the runtime by *duration* seconds (blocking)."""

    @abstractmethod
    def stop(self) -> None:
        """Tear the runtime down; :attr:`Scheduler.at_end` hooks run here."""

    def node(self, i: int) -> NodeBackend:
        """Node of rank *i*."""
        return self.nodes[i]  # type: ignore[attr-defined]
