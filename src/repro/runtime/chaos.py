"""Realtime chaos: the sim fault-injection surface on a live cluster.

:class:`RealtimeFaultInjector` ports :class:`repro.sim.faults.
FaultInjector` — ``crash``/``recover``, ``partition``/
``partition_oneway``/``heal``, ``impair_link``, ``latency_spike``,
``random_crashes``, ``churn``, and the :class:`~repro.sim.faults.
FaultRecord` log — onto :class:`~repro.runtime.realtime.RealtimeBackend`.

It is deliberately thin.  The sim injector only ever touches three
seam-level surfaces, all of which the realtime backend already provides
with identical semantics:

* a scheduler with ``schedule_at`` / ``now`` / ``rng.stream`` —
  :class:`~repro.runtime.realtime.RealtimeScheduler` (faults fire at
  wall-clock instants instead of simulated ones);
* machines with ``crashed`` / ``crash()`` / ``recover()`` —
  :class:`~repro.runtime.realtime.RealtimeNode` (software crash-stop
  with the same incarnation-epoch guard as the simulated ``Machine``);
* a duck-typed network with ``partition`` / ``partition_oneway`` /
  ``heal`` / ``impair_link`` / ``clear_link(s)`` / ``extra_latency`` —
  :class:`~repro.runtime.realtime.RealtimeUdpTransport`, whose chaos
  surface enforces partitions on both the send and the receive path and
  applies loss/duplication/reorder/latency at delivery time.

Because the surface is shared, scenario fault plans
(:class:`repro.scenarios.spec.FaultAction` subclasses) schedule
unchanged against a live cluster: ``action.schedule(injector)`` works on
either injector.  :meth:`RealtimeFaultInjector.schedule_plan` is the
loop that does so, and is what ``repro.runtime.soak --chaos`` uses.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from ..sim.faults import FaultInjector, FaultRecord

__all__ = ["RealtimeFaultInjector", "FaultRecord"]


class RealtimeFaultInjector(FaultInjector):
    """A :class:`~repro.sim.faults.FaultInjector` bound to a realtime
    backend: faults fire at wall-clock instants against live nodes and
    the UDP transport's chaos surface.

    Parameters
    ----------
    backend:
        The :class:`~repro.runtime.realtime.RealtimeBackend` to degrade.
    name:
        Names the injector's RNG stream (``faults.<name>``), exactly as
        in the sim, so randomised schedules (``random_crashes``,
        ``churn``) are reproducible from the root seed even though their
        firing *effects* race real timing.
    """

    def __init__(self, backend: Any, name: str = "chaos") -> None:
        super().__init__(
            backend.sim, backend.nodes, network=backend.transport, name=name
        )
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Plans and reporting
    # ------------------------------------------------------------------ #
    def schedule_plan(self, actions: Iterable[Any]) -> int:
        """Schedule every scenario :class:`~repro.scenarios.spec.
        FaultAction` in *actions* against this injector.

        Returns the number of actions scheduled.  Times inside the
        actions are absolute instants on the backend's clock (seconds of
        wall-clock since the scheduler was created).
        """
        count = 0
        for action in actions:
            action.schedule(self)
            count += 1
        return count

    def counters(self) -> Dict[str, int]:
        """Per-kind counts over the faults that actually fired.

        JSON-shaped for the soak health endpoint: ``{"crash": 1,
        "heal": 1, ...}``, deterministic key order (sorted).
        """
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return dict(sorted(out.items()))

    def records_as_dicts(self) -> List[Dict[str, Any]]:
        """The fault log as plain dicts (for the health snapshot)."""
        return [record.to_dict() for record in self.records]
