"""The realtime backend: asyncio UDP sockets and wall-clock timers.

The deployable half of the runtime twin.  Everything the modules see —
``now``, ``set_timer``, datagram delivery, crash/recover hooks — has the
same semantics as the simulation backend, except that time is the
event loop's monotonic clock and datagrams travel through real
``AF_INET`` UDP sockets on localhost:

* :class:`RealtimeScheduler` — the :class:`~repro.runtime.api.Scheduler`
  contract on ``loop.call_later`` / ``loop.call_soon``.  asyncio's timer
  wheel is FIFO for equal deadlines, preserving the determinism contract
  modules rely on (to the extent wall-clock equality ever happens).
* :class:`RealtimeNode` — the :class:`~repro.runtime.api.NodeBackend`
  contract without a modelled CPU: ``execute`` ignores the declared cost
  (real CPUs charge for themselves) but still defers the invocation
  through the loop, so kernel dispatch keeps its asynchronous shape.
  Crash/recover are *software* crash-stop — a crashed node stops
  processing timers and datagrams (epoch-guarded, exactly like
  :class:`~repro.sim.process.Machine`) — which is what chaos-testing a
  single-process soak needs.
* :class:`RealtimeUdpTransport` — one UDP socket per node, bound to an
  OS-assigned port on localhost; the node-rank → address map is shared
  in-process.  The wire format is the safe, versioned codec of
  :mod:`repro.runtime.codec` (struct header + restricted-tag payload
  encoding).  **Trust boundary**: decoding never executes anything —
  unknown tags, unknown wire versions, and truncated or corrupted
  datagrams are counted (``malformed`` in :meth:`~RealtimeUdpTransport.
  stats`) and dropped, never raised into the event loop.  The transport
  also carries the chaos layer's fault surface (partitions, per-link
  impairments, latency spikes) so :class:`~repro.runtime.chaos.
  RealtimeFaultInjector` can degrade a live cluster the way
  :class:`~repro.net.network.SimNetwork` degrades a simulated one.
* :class:`RealtimeBackend` — bundles the three behind the
  :class:`~repro.runtime.api.Backend` lifecycle and doubles as the
  duck-typed "system" (``stacks`` / ``machine(i)`` / ``sim`` /
  ``registry``) that :class:`~repro.dpu.manager.ReplacementManager`
  and the property checkers already consume, so the *unmodified*
  dpu/gm/fd/abcast modules run on it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import CodecError, SimulationError, UnknownDestinationError
from ..net.message import NetMessage
from ..net.network import LinkImpairment
from ..sim.random import RngRegistry
from .api import Backend, NodeBackend, Scheduler, Transport
from .codec import decode_datagram, encode_datagram

__all__ = [
    "RealtimeScheduler",
    "RealtimeNode",
    "RealtimeUdpTransport",
    "RealtimeBackend",
]


class RealtimeScheduler(Scheduler):
    """Wall-clock :class:`~repro.runtime.api.Scheduler` on an asyncio loop.

    Parameters
    ----------
    loop:
        The event loop to schedule on (owned by the backend).
    seed:
        Root seed for the rng streams (workload jitter etc. stays
        reproducible even when timing is not).
    """

    __slots__ = ("_loop", "_t0", "rng", "at_end", "_events_processed")

    def __init__(self, loop: asyncio.AbstractEventLoop, seed: int = 0) -> None:
        self._loop = loop
        self._t0 = loop.time()
        self.rng = RngRegistry(seed=seed)
        #: Callbacks the backend invokes at :meth:`RealtimeBackend.stop`.
        self.at_end: List[Callable[[], None]] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Seconds of wall-clock time since the scheduler was created."""
        return self._loop.time() - self._t0

    @property
    def events_processed(self) -> int:
        """Total scheduled callbacks fired so far."""
        return self._events_processed

    def _fire(self, callback: Callable[..., Any], args: tuple) -> None:
        self._events_processed += 1
        callback(*args)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 priority: int = 0) -> asyncio.TimerHandle:
        """Fire ``callback(*args)`` after *delay* wall-clock seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._loop.call_later(delay, self._fire, callback, args)

    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any,
                      priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule` (the handle is discarded)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._loop.call_later(delay, self._fire, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    priority: int = 0) -> asyncio.TimerHandle:
        """Fire at absolute instant *time* (clock of :attr:`now`); an
        already-past instant fires as soon as possible — wall-clock
        backends cannot refuse the past, they can only be late."""
        return self._loop.call_later(max(0.0, time - self.now), self._fire,
                                     callback, args)

    def schedule_at_fast(self, time: float, callback: Callable[..., Any], *args: Any,
                         priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        self._loop.call_later(max(0.0, time - self.now), self._fire, callback, args)

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  priority: int = 0) -> asyncio.Handle:
        """Fire on the next loop iteration (after everything queued)."""
        return self._loop.call_soon(self._fire, callback, args)

    def cancel(self, handle: Any) -> None:
        """Cancel an asyncio handle (no-op once it fired)."""
        handle.cancel()

    def peek_time(self) -> Optional[float]:
        """Always ``None``: real time has no inspectable event heap.

        The kernel treats ``None`` as "nothing pending at this instant",
        which selects its batched blocked-call drain — safe, because
        wall-clock timing carries no determinism contract to preserve.
        """
        return None


class RealtimeNode(NodeBackend):
    """A :class:`~repro.runtime.api.NodeBackend` on wall-clock time.

    Mirrors :class:`~repro.sim.process.Machine`'s observable surface —
    including the ``_crashed_at`` / ``_busy_until`` internals the kernel
    fast path reads — minus the serial-CPU queue: declared costs are
    ignored and work runs on the next loop iteration.

    Parameters
    ----------
    sim:
        The shared :class:`RealtimeScheduler`.
    machine_id:
        Rank; doubles as the transport address.
    name:
        Human-readable name (defaults to ``"m<id>"``).
    """

    __slots__ = (
        "sim",
        "machine_id",
        "name",
        "_crashed_at",
        "_busy_until",
        "_epoch",
        "_crash_count",
        "_recovered_at",
        "_tasks_executed",
        "on_crash",
        "on_recover",
    )

    def __init__(self, sim: RealtimeScheduler, machine_id: int,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.machine_id = int(machine_id)
        self.name = name if name is not None else f"m{machine_id}"
        self._crashed_at: Optional[float] = None
        #: Kernel-contract internal; no modelled CPU, so always "idle".
        self._busy_until: float = 0.0
        self._epoch = 0
        self._crash_count = 0
        self._recovered_at: Optional[float] = None
        self._tasks_executed = 0
        #: Hooks invoked with the crash time when :meth:`crash` fires.
        self.on_crash: List[Callable[[float], None]] = []
        #: Hooks invoked with the recovery time when :meth:`recover` fires.
        self.on_recover: List[Callable[[float], None]] = []

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #
    @property
    def crashed(self) -> bool:
        """Whether the node is currently down (software crash-stop)."""
        return self._crashed_at is not None

    @property
    def crashed_at(self) -> Optional[float]:
        """The crash instant, or ``None`` while the node is up."""
        return self._crashed_at

    @property
    def crash_count(self) -> int:
        """How many times the node has crashed so far."""
        return self._crash_count

    @property
    def ever_crashed(self) -> bool:
        """Whether the node crashed at least once (even if back up)."""
        return self._crash_count > 0

    @property
    def epoch(self) -> int:
        """Current incarnation epoch (increments at every crash)."""
        return self._epoch

    @property
    def last_recovered_at(self) -> Optional[float]:
        """Instant of the most recent recovery (``None`` if never)."""
        return self._recovered_at

    def crash(self) -> None:
        """Take the node down now (idempotent); its timers and queued
        work are suppressed by the incarnation-epoch guard."""
        if self._crashed_at is not None:
            return
        self._crashed_at = self.sim.now
        self._crash_count += 1
        self._epoch += 1
        for hook in list(self.on_crash):
            hook(self.sim.now)

    def recover(self) -> None:
        """Bring a crashed node back up (no-op while up); the
        ``on_recover`` hooks then run the kernel's restart protocol."""
        if self._crashed_at is None:
            return
        self._crashed_at = None
        self._recovered_at = self.sim.now
        for hook in list(self.on_recover):
            hook(self.sim.now)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def busy_until(self) -> float:
        """Always :attr:`Scheduler.now`: no modelled CPU queue."""
        return self.sim.now

    @property
    def tasks_executed(self) -> int:
        """Number of executed work items completed so far."""
        return self._tasks_executed

    def execute(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` on the next loop iteration (cost ignored:
        the real CPU charges for itself); dropped if the node is down."""
        if cost < 0:
            raise SimulationError(f"negative CPU cost {cost!r}")
        if self._crashed_at is not None:
            return
        self.execute_packed(cost, fn, args)

    def execute_packed(self, cost: float, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path :meth:`execute`: pre-packed args, no checks."""
        self.sim.call_soon(self._run_task, self._epoch, fn, args)

    def _run_task(self, epoch: int, fn: Callable[..., Any], args: tuple) -> None:
        if self._crashed_at is not None or epoch != self._epoch:
            return
        self._tasks_executed += 1
        fn(*args)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any
                  ) -> Optional[asyncio.TimerHandle]:
        """Fire ``fn(*args)`` after *delay* seconds unless the node
        crashes first; ``None`` when already down."""
        if self._crashed_at is not None:
            return None
        return self.sim.schedule(delay, self._run_timer, self._epoch, fn, args)

    def set_timer_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`set_timer`."""
        if self._crashed_at is not None:
            return
        self.sim.schedule_fast(delay, self._run_timer, self._epoch, fn, args)

    def _run_timer(self, epoch: int, fn: Callable[..., Any], args: tuple) -> None:
        if self._crashed_at is not None or epoch != self._epoch:
            return
        fn(*args)

    def cancel(self, handle: Any) -> None:
        """Cancel a timer handle returned by :meth:`set_timer`."""
        self.sim.cancel(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"crashed@{self._crashed_at:.3f}" if self.crashed else "up"
        return f"<RealtimeNode {self.name} id={self.machine_id} {state}>"


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """Per-node receive protocol: forwards raw datagrams to the transport."""

    def __init__(self, owner: "RealtimeUdpTransport", node_id: int) -> None:
        self._owner = owner
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr: Any) -> None:
        """asyncio callback: one raw datagram arrived on this node's socket."""
        self._owner._on_datagram(self._node_id, data)


class RealtimeUdpTransport(Transport):
    """Datagram I/O over real UDP sockets, one per node, on localhost.

    Sockets bind to OS-assigned ports (``port 0``), and the rank →
    ``(host, port)`` map is shared in-process, so N stacks coexist in
    one process with zero port configuration.  Wire format is the safe
    codec of :mod:`repro.runtime.codec` — header + restricted-tag
    payload; malformed datagrams are counted and dropped at
    :meth:`_on_datagram`, never raised.

    Crash semantics match :class:`~repro.net.network.SimNetwork`:
    datagrams from crashed senders are never sent; datagrams to crashed
    receivers are dropped at delivery time.

    **Chaos surface** (duck-type compatible with ``SimNetwork``, which
    is what lets one :class:`~repro.sim.faults.FaultInjector` contract
    drive both): :meth:`partition` / :meth:`partition_oneway` /
    :meth:`heal` maintain directed partition tables honoured on *both*
    the send and the receive path (the receive check is the one that
    matters beyond localhost — a partitioned peer cannot be stopped
    from transmitting, only ignored); :meth:`impair_link` attaches a
    per-direction :class:`~repro.net.network.LinkImpairment` whose
    loss / duplication / reorder / extra-latency act at delivery time
    (drop/dup/delay on :meth:`_deliver`); :attr:`extra_latency` is the
    network-wide latency-spike knob.  Loopback (:meth:`send_local`)
    bypasses impairments, exactly like the simulated network.
    """

    def __init__(self, sim: RealtimeScheduler, nodes: List[RealtimeNode],
                 host: str = "127.0.0.1") -> None:
        self.sim = sim
        self.host = host
        self._nodes: Dict[int, RealtimeNode] = {n.machine_id: n for n in nodes}
        self._hooks: Dict[int, Callable[..., None]] = {}
        self._endpoints: Dict[int, asyncio.DatagramTransport] = {}
        #: Rank -> bound (host, port); filled by :meth:`open`.
        self.addresses: Dict[int, Any] = {}
        # Chaos state (mirrors SimNetwork's fault surface).
        self._partitions: Set[FrozenSet[int]] = set()
        self._oneway: Set[Tuple[int, int]] = set()
        self._links: Dict[Tuple[int, int], LinkImpairment] = {}
        #: Extra one-way delay added to every non-loopback delivery.
        self.extra_latency: float = 0.0
        #: Rng stream for impairment draws (own stream: chaos draws
        #: never perturb workload randomness, same rule as the sim).
        self._impair_rng = sim.rng.stream("net.realtime.impairments")
        self._c_sent = 0
        self._c_bytes_sent = 0
        self._c_received = 0
        self._c_dropped_crashed = 0
        self._c_dropped_unknown = 0
        self._c_malformed = 0
        self._c_dropped_partition = 0
        self._c_dropped_loss = 0
        self._c_duplicated = 0
        self._c_reordered = 0
        self._c_delayed = 0
        self._c_corrupted = 0

    async def open(self) -> None:
        """Bind one UDP socket per node (must run inside the loop)."""
        loop = asyncio.get_running_loop()
        for node_id in sorted(self._nodes):
            if node_id in self._endpoints:
                continue
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda node_id=node_id: _NodeDatagramProtocol(self, node_id),
                local_addr=(self.host, 0),
            )
            self._endpoints[node_id] = transport
            self.addresses[node_id] = transport.get_extra_info("sockname")

    def close(self) -> None:
        """Close every socket (idempotent)."""
        for transport in self._endpoints.values():
            transport.close()
        self._endpoints.clear()
        self.addresses.clear()

    # ------------------------------------------------------------------ #
    # Transport contract
    # ------------------------------------------------------------------ #
    def attach(self, machine_id: int, hook: Callable[..., None]) -> None:
        """Register node *machine_id*'s delivery hook."""
        self._hooks[machine_id] = hook

    def detach(self, machine_id: int) -> None:
        """Remove node *machine_id*'s delivery hook."""
        self._hooks.pop(machine_id, None)

    # ------------------------------------------------------------------ #
    # Chaos surface (mirrors SimNetwork's fault-injection API)
    # ------------------------------------------------------------------ #
    def partition(self, group_a: Set[int], group_b: Set[int]) -> None:
        """Drop all traffic between *group_a* and *group_b* until healed."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self._partitions.add(frozenset((a, b)))

    def partition_oneway(self, src_group: Set[int], dst_group: Set[int]) -> None:
        """Drop *src_group* → *dst_group* traffic only (asymmetric split)."""
        for src in src_group:
            for dst in dst_group:
                if src != dst:
                    self._oneway.add((src, dst))

    def heal(self) -> None:
        """Remove every partition (symmetric and one-way)."""
        self._partitions.clear()
        self._oneway.clear()

    def is_partitioned(self, a: int, b: int) -> bool:
        """Whether *a* → *b* traffic is currently blocked (directional)."""
        if self._partitions and frozenset((a, b)) in self._partitions:
            return True
        return bool(self._oneway) and (a, b) in self._oneway

    def impair_link(
        self,
        src: int,
        dst: int,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: float = 0.0,
        extra_latency: float = 0.0,
        corrupt_rate: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Attach a :class:`LinkImpairment` to *src→dst* (and the reverse
        direction when *symmetric*), replacing any previous one."""
        for machine_id in (src, dst):
            if machine_id not in self._nodes:
                raise UnknownDestinationError(f"no machine with id {machine_id}")
        impairment = LinkImpairment(
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            reorder_delay=reorder_delay,
            extra_latency=extra_latency,
            corrupt_rate=corrupt_rate,
        )
        self._links[(src, dst)] = impairment
        if symmetric:
            self._links[(dst, src)] = impairment

    def clear_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        """Remove the impairment on *src→dst* (and reverse if *symmetric*)."""
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)

    def clear_links(self) -> None:
        """Remove every per-link impairment."""
        self._links.clear()

    def link_impairment(self, src: int, dst: int) -> Optional[LinkImpairment]:
        """The impairment currently on *src→dst*, if any."""
        return self._links.get((src, dst))

    # ------------------------------------------------------------------ #
    # Datagram path
    # ------------------------------------------------------------------ #
    def send(self, message: Any) -> None:
        """Send one datagram through the sender's real socket."""
        sender = self._nodes.get(message.src)
        if sender is None or sender._crashed_at is not None:
            self._c_dropped_crashed += 1
            return
        if self.is_partitioned(message.src, message.dst):
            self._c_dropped_partition += 1
            return
        addr = self.addresses.get(message.dst)
        endpoint = self._endpoints.get(message.src)
        if addr is None or endpoint is None:
            self._c_dropped_unknown += 1
            return
        data = encode_datagram(message.src, message.dst, message.payload,
                               message.size_bytes)
        link = self._links.get((message.src, message.dst)) if self._links else None
        if (link is not None and link.corrupt_rate > 0.0
                and self._impair_rng.random() < link.corrupt_rate):
            # Wire corruption, mangled where the receiver's codec is
            # guaranteed to notice (the magic): on the real backend every
            # corrupted frame is detected and dropped as malformed — the
            # safe-wire-codec contract is the checksum, always on.
            self._c_corrupted += 1
            data = b"\x00" + data[1:]
        endpoint.sendto(data, addr)
        self._c_sent += 1
        self._c_bytes_sent += len(data)

    def send_local(self, message: Any) -> None:
        """Loopback: skip the socket — and the chaos surface, exactly like
        ``SimNetwork.send_local`` (no loss, no partition, no latency)."""
        self.sim.call_soon(self._deliver_now, message.dst, message.src,
                           message.payload, message.size_bytes)

    def _on_datagram(self, node_id: int, data: bytes) -> None:
        try:
            src, dst, payload, size_bytes = decode_datagram(data)
        except CodecError:
            self._c_malformed += 1
            return
        self._deliver(node_id, src, payload, size_bytes)

    def _deliver(self, dst: int, src: int, payload: Any, size_bytes: int) -> None:
        """Apply the chaos surface, then hand off to :meth:`_deliver_now`.

        Receive-side enforcement: a real peer beyond localhost cannot be
        stopped from *transmitting* into a partition, so the drop has to
        happen here, on arrival.  Loss / duplication / reorder-delay draws
        likewise act at delivery — the sender's socket already did its
        (un-impaired) work.
        """
        if self.is_partitioned(src, dst):
            self._c_dropped_partition += 1
            return
        link = self._links.get((src, dst)) if self._links else None
        delay = self.extra_latency
        if link is not None:
            if link.loss_rate > 0.0 and self._impair_rng.random() < link.loss_rate:
                self._c_dropped_loss += 1
                return
            delay += link.extra_latency
            if (link.reorder_rate > 0.0
                    and self._impair_rng.random() < link.reorder_rate):
                delay += self._impair_rng.random() * link.reorder_delay
                self._c_reordered += 1
            if (link.duplicate_rate > 0.0
                    and self._impair_rng.random() < link.duplicate_rate):
                self._c_duplicated += 1
                self.sim.schedule_fast(delay, self._deliver_now, dst, src,
                                       payload, size_bytes)
        if delay > 0.0:
            self._c_delayed += 1
            self.sim.schedule_fast(delay, self._deliver_now, dst, src,
                                   payload, size_bytes)
            return
        self._deliver_now(dst, src, payload, size_bytes)

    def _deliver_now(self, dst: int, src: int, payload: Any,
                     size_bytes: int) -> None:
        receiver = self._nodes.get(dst)
        if receiver is None or receiver._crashed_at is not None:
            self._c_dropped_crashed += 1
            return
        hook = self._hooks.get(dst)
        if hook is None:
            self._c_dropped_unknown += 1
            return
        self._c_received += 1
        hook(NetMessage(src=src, dst=dst, payload=payload,
                        size_bytes=size_bytes), self.sim.now)

    def stats(self) -> Dict[str, int]:
        """Datagram counters, dict-shaped like ``SimNetwork.stats()``."""
        out = {
            "sent": self._c_sent,
            "bytes_sent": self._c_bytes_sent,
            "received": self._c_received,
            "dropped_crashed": self._c_dropped_crashed,
            "dropped_unknown": self._c_dropped_unknown,
            "malformed": self._c_malformed,
            "dropped_partition": self._c_dropped_partition,
            "dropped_loss": self._c_dropped_loss,
            "duplicated": self._c_duplicated,
            "reordered": self._c_reordered,
            "delayed": self._c_delayed,
        }
        if self._c_corrupted:
            # Conditional, like SimNetwork: corruption-free runs keep the
            # historical stats shape.
            out["corrupted"] = self._c_corrupted
        return out


class RealtimeBackend(Backend):
    """A bootable wall-clock cluster: scheduler + *n* nodes + UDP sockets.

    Also exposes the duck-typed "system" surface
    (``stacks``/``machine(i)``/``sim``/``registry``/``network``) the
    replacement manager and experiment helpers consume, so the builder
    code for realtime stacks mirrors the simulated one
    (see :mod:`repro.runtime.soak`).

    Parameters
    ----------
    n:
        Number of nodes.
    seed:
        Root seed for the rng streams.
    host:
        Interface to bind the node sockets on (loopback by default).
    """

    def __init__(self, n: int, seed: int = 0, host: str = "127.0.0.1") -> None:
        if n < 1:
            raise SimulationError(f"a backend needs at least one node, got n={n}")
        self._loop = asyncio.new_event_loop()
        self.sim = RealtimeScheduler(self._loop, seed=seed)
        self.nodes: List[RealtimeNode] = [
            RealtimeNode(self.sim, i) for i in range(n)
        ]
        self.transport = RealtimeUdpTransport(self.sim, self.nodes, host=host)
        #: Stacks built on the nodes (filled by the harness builder).
        self.stacks: List[Any] = []
        #: Protocol registry (filled by the harness builder).
        self.registry: Any = None
        #: Alias for experiment helpers that expect ``system.network``.
        self.network = self.transport
        self._started = False
        self._stopped = False

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def machine(self, i: int) -> RealtimeNode:
        """Node *i* (system-compatible accessor)."""
        return self.nodes[i]

    def stack(self, i: int) -> Any:
        """Stack of node *i* (system-compatible accessor)."""
        return self.stacks[i]

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The owned event loop (for harness extras, e.g. health servers)."""
        return self._loop

    def start(self) -> None:
        """Bind every node's socket (idempotent).  Call *before* building
        stacks: module ``on_start`` hooks send datagrams immediately."""
        if self._started:
            return
        self._loop.run_until_complete(self.transport.open())
        self._started = True

    def run(self, duration: float) -> None:
        """Run the event loop for *duration* wall-clock seconds."""
        if not self._started:
            raise SimulationError("RealtimeBackend.run() before start()")
        self._loop.run_until_complete(asyncio.sleep(duration))

    def run_coro(self, coro: Any) -> Any:
        """Run one coroutine to completion on the owned loop."""
        return self._loop.run_until_complete(coro)

    def stop(self) -> None:
        """Run the ``at_end`` hooks, close the sockets and the loop."""
        if self._stopped:
            return
        self._stopped = True
        for hook in self.sim.at_end:
            hook()
        self.transport.close()
        # One last spin so asyncio processes the transport closes.
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()
