"""Runtime backends: the sim/real twin behind one module-facing API.

The :mod:`repro.runtime.api` ABCs name the seam; this package ships the
two implementations — :class:`SimBackend` (the deterministic
discrete-event twin, wrapping the existing engine bit-identically) and
:class:`RealtimeBackend` (asyncio UDP sockets and wall-clock timers) —
plus the :mod:`repro.runtime.soak` harness that boots real-socket
stacks on localhost and drives traffic through a mid-switch chain.

The backend classes are exposed lazily (PEP 562): the core simulation
packages import :mod:`repro.runtime.api` at module load, so eagerly
importing the backends here (which import the core packages back)
would create a cycle.  ``from repro.runtime import RealtimeBackend``
works as usual.

See ``docs/runtime.md`` for the full API walk-through.
"""

from typing import Any

from .api import Backend, NodeBackend, Scheduler, Transport

__all__ = [
    "Backend",
    "NodeBackend",
    "Scheduler",
    "Transport",
    "SimBackend",
    "RealtimeBackend",
    "RealtimeNode",
    "RealtimeScheduler",
    "RealtimeUdpTransport",
    "RealtimeFaultInjector",
    "encode_datagram",
    "decode_datagram",
    "register_wire_type",
    "WIRE_VERSION",
]

_LAZY = {
    "SimBackend": "sim_backend",
    "RealtimeBackend": "realtime",
    "RealtimeNode": "realtime",
    "RealtimeScheduler": "realtime",
    "RealtimeUdpTransport": "realtime",
    "RealtimeFaultInjector": "chaos",
    "encode_datagram": "codec",
    "decode_datagram": "codec",
    "register_wire_type": "codec",
    "WIRE_VERSION": "codec",
}


def __getattr__(name: str) -> Any:
    """Resolve the backend classes on first access (cycle-free imports)."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
