"""Safe, versioned wire codec for the realtime datagram path.

The realtime transport used to pickle ``(src, dst, payload, size_bytes)``
onto the wire, which has two failure modes the chaos layer cares about:

* **trust** — ``pickle.loads`` on bytes from a UDP socket executes
  arbitrary constructors; one hostile datagram owns the process.  A
  loopback lab can shrug at that; anything beyond localhost cannot.
* **robustness** — a truncated or corrupted datagram raises out of the
  decode into the asyncio loop.  A soak that must "run non-stop" cannot
  afford an unhandled exception per garbage frame.

This module replaces pickle with a small explicit codec:

* a fixed :data:`HEADER` — magic (``RW``), a **version byte**
  (:data:`WIRE_VERSION`), a flags byte (reserved, must be zero), the
  envelope ints ``src`` / ``dst`` / ``size_bytes`` — followed by
* a **restricted-tag, length-prefixed value encoding** of the payload.
  Exactly the shapes the protocol modules actually put on the wire are
  representable: ``None``, ``bool``, ``int``, ``float``, ``str``,
  ``bytes``, ``tuple``, ``list``, ``dict``, ``set``, ``frozenset`` —
  plus explicitly *registered* message classes (see
  :func:`register_wire_type`; :class:`~repro.net.message.NetMessage`
  registers itself).  Nothing else encodes, and — the point — nothing
  else **decodes**: there is no tag whose decoding calls a constructor
  the receiver did not register first.

Every malformation — bad magic, unknown version, non-zero flags,
unknown tag, length prefix past the end of the datagram, trailing
garbage, containers nested past :data:`MAX_DEPTH` — raises
:class:`~repro.errors.CodecError` from :func:`decode_datagram`.  The
transport catches exactly that (plus nothing else), counts the drop,
and moves on; see ``RealtimeUdpTransport._on_datagram``.

The codec is deliberately *not* self-describing beyond its tags: it is
a wire format for this stack's frames, not a general serialisation
library.  Determinism: encoding is a pure function of the value (dict
and set iteration order is preserved as given), so equal frames encode
to equal bytes within one process.
"""

from __future__ import annotations

import operator
import struct
from typing import Any, Callable, Dict, Tuple

from ..errors import CodecError

__all__ = [
    "WIRE_VERSION",
    "MAX_DEPTH",
    "encode_value",
    "decode_value",
    "encode_datagram",
    "decode_datagram",
    "register_wire_type",
    "registered_wire_types",
]

#: Version byte stamped into every datagram header.  Receivers drop
#: datagrams from other versions (counted, never raised) so rolling a
#: codec change through a live cluster degrades to partition, not crash.
WIRE_VERSION = 1

#: Two magic bytes: "repro wire".  Catches cross-talk from unrelated
#: processes that happen to hit our port.
MAGIC = b"RW"

#: Maximum container nesting the decoder will follow.  The stack's real
#: frames nest ~6 deep; 32 leaves headroom while bounding the recursion
#: a hostile datagram can force.
MAX_DEPTH = 32

#: Header: magic(2s) version(B) flags(B) src(i) dst(i) size_bytes(i).
HEADER = struct.Struct("!2sBBiii")

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# Registered message classes: name -> (cls, pack, unpack); cls -> name.
_WIRE_TYPES: Dict[str, Tuple[type, Callable[[Any], tuple], Callable[[tuple], Any]]] = {}
_WIRE_TYPE_BY_CLS: Dict[type, str] = {}


def register_wire_type(
    name: str,
    cls: type,
    pack: Callable[[Any], tuple],
    unpack: Callable[[tuple], Any],
) -> None:
    """Register message class *cls* under wire tag *name*.

    ``pack(obj)`` must return a tuple of codec-encodable fields;
    ``unpack(fields)`` rebuilds the instance.  Registration is what
    makes a class decodable — an unregistered name in an incoming
    datagram is a :class:`~repro.errors.CodecError`, not an import or a
    constructor call.  Re-registering the same name for the same class
    is idempotent; re-using a name for a different class is an error
    (two modules fighting over a tag is a deployment bug).
    """
    existing = _WIRE_TYPES.get(name)
    if existing is not None and existing[0] is not cls:
        raise CodecError(
            f"wire type name {name!r} already registered for {existing[0].__name__}"
        )
    _WIRE_TYPES[name] = (cls, pack, unpack)
    _WIRE_TYPE_BY_CLS[cls] = name


def registered_wire_types() -> Tuple[str, ...]:
    """The currently registered wire-type names (sorted)."""
    return tuple(sorted(_WIRE_TYPES))


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #
def _encode_into(out: list, value: Any, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise CodecError(f"value nests deeper than MAX_DEPTH={MAX_DEPTH}")
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(b"I")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif type(value) is float:
        out.append(b"f")
        out.append(_F64.pack(value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif type(value) is bytes:
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif type(value) is tuple:
        out.append(b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif type(value) is list:
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif type(value) is dict:
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for k, v in value.items():
            _encode_into(out, k, depth + 1)
            _encode_into(out, v, depth + 1)
    elif type(value) is set:
        out.append(b"e")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif type(value) is frozenset:
        out.append(b"z")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    else:
        name = _WIRE_TYPE_BY_CLS.get(type(value))
        if name is None:
            # Numeric look-alikes (int/float subclasses, numpy scalars)
            # encode as their exact plain value; everything else refuses.
            if isinstance(value, bool):
                out.append(b"T" if value else b"F")
                return
            if isinstance(value, float):
                out.append(b"f")
                out.append(_F64.pack(float(value)))
                return
            try:
                _encode_into(out, int(operator.index(value)), depth)
                return
            except TypeError:
                pass
            raise CodecError(
                f"type {type(value).__name__} is not wire-encodable; register "
                f"it with register_wire_type or restrict the payload"
            )
        _, pack, _unpack = _WIRE_TYPES[name]
        raw_name = name.encode("utf-8")
        out.append(b"x")
        out.append(_U32.pack(len(raw_name)))
        out.append(raw_name)
        fields = pack(value)
        if type(fields) is not tuple:
            raise CodecError(f"wire type {name!r}: pack() must return a tuple")
        _encode_into(out, fields, depth + 1)


def encode_value(value: Any) -> bytes:
    """Encode one payload value (raises :class:`CodecError` on
    unencodable types or excessive nesting)."""
    out: list = []
    _encode_into(out, value, 0)
    return b"".join(out)


def encode_datagram(src: int, dst: int, payload: Any, size_bytes: int) -> bytes:
    """Encode one wire datagram: header + payload value."""
    return HEADER.pack(MAGIC, WIRE_VERSION, 0, src, dst, size_bytes) + encode_value(
        payload
    )


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #
def _need(data: bytes, offset: int, count: int) -> int:
    end = offset + count
    if end > len(data):
        raise CodecError(
            f"truncated datagram: need {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
    return end


def _decode_at(data: bytes, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise CodecError(f"value nests deeper than MAX_DEPTH={MAX_DEPTH}")
    end = _need(data, offset, 1)
    tag = data[offset:end]
    offset = end
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        end = _need(data, offset, 8)
        return _I64.unpack_from(data, offset)[0], end
    if tag == b"f":
        end = _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], end
    if tag in (b"I", b"s", b"b"):
        end = _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset = end
        end = _need(data, offset, length)
        raw = data[offset:end]
        if tag == b"I":
            return int.from_bytes(raw, "big", signed=True), end
        if tag == b"s":
            try:
                return raw.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise CodecError(f"invalid utf-8 in string: {exc}") from exc
        return bytes(raw), end
    if tag in (b"t", b"l", b"e", b"z"):
        end = _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset = end
        items = []
        for _ in range(count):
            # Every item consumes >= 1 byte, so count is implicitly
            # bounded by the datagram length via the truncation check.
            item, offset = _decode_at(data, offset, depth + 1)
            items.append(item)
        if tag == b"t":
            return tuple(items), offset
        if tag == b"l":
            return items, offset
        if tag == b"e":
            return set(items), offset
        return frozenset(items), offset
    if tag == b"d":
        end = _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset = end
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset, depth + 1)
            value, offset = _decode_at(data, offset, depth + 1)
            mapping[key] = value
        return mapping, offset
    if tag == b"x":
        end = _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset = end
        end = _need(data, offset, length)
        try:
            name = data[offset:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in wire type name: {exc}") from exc
        offset = end
        entry = _WIRE_TYPES.get(name)
        if entry is None:
            raise CodecError(f"unknown wire type {name!r}")
        fields, offset = _decode_at(data, offset, depth + 1)
        if type(fields) is not tuple:
            raise CodecError(f"wire type {name!r}: fields must decode to a tuple")
        _cls, _pack, unpack = entry
        try:
            return unpack(fields), offset
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"wire type {name!r}: unpack failed: {exc}") from exc
    raise CodecError(f"unknown tag byte {tag!r} at offset {offset - 1}")


def decode_value(data: bytes) -> Any:
    """Decode one payload value; the whole buffer must be consumed."""
    value, offset = _decode_at(data, 0, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def decode_datagram(data: bytes) -> Tuple[int, int, Any, int]:
    """Decode one wire datagram into ``(src, dst, payload, size_bytes)``.

    Raises :class:`~repro.errors.CodecError` — and only that — on any
    malformation, so callers have exactly one thing to catch.
    """
    if len(data) < HEADER.size:
        raise CodecError(
            f"datagram shorter than header: {len(data)} < {HEADER.size}"
        )
    magic, version, flags, src, dst, size_bytes = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {version}")
    if flags != 0:
        raise CodecError(f"reserved flags byte is non-zero: {flags:#x}")
    if size_bytes < 0:
        raise CodecError(f"negative declared size {size_bytes}")
    payload, offset = _decode_at(data, HEADER.size, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after payload")
    return src, dst, payload, size_bytes
