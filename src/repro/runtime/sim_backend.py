"""The simulation backend: the existing engine behind the Backend API.

:class:`SimBackend` bundles the discrete-event pieces — one
:class:`~repro.sim.engine.Simulator`, *n*
:class:`~repro.sim.process.Machine` instances with their kernel
:class:`~repro.kernel.stack.Stack`\\ s, and one
:class:`~repro.net.network.SimNetwork` over a
:class:`~repro.net.topology.SwitchedLan` — behind the exact lifecycle
and accessor surface :class:`~repro.runtime.realtime.RealtimeBackend`
exposes, so harness code (the soak builder, the conformance tests) is
written once against :class:`~repro.runtime.api.Backend` and runs on
either twin.

It is a *bundler*, not a reimplementation: the wrapped objects are the
unmodified engine classes, so everything built through ``SimBackend`` is
bit-identical to a hand-assembled ``System`` + ``SimNetwork`` with the
same parameters (the golden-report pins in
``tests/integration/test_golden_reports.py`` hold this to account).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..kernel.events import TraceKind
from ..kernel.stack import DEFAULT_CALL_COST, DEFAULT_RESPONSE_COST
from ..kernel.system import System
from ..net.network import SimNetwork
from ..net.topology import SwitchedLan
from ..sim.clock import Duration
from ..sim.latency import lan_latency
from .api import Backend

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """The deterministic discrete-event twin of the runtime pair.

    Parameters
    ----------
    n:
        Number of nodes.
    seed:
        Root seed for all randomness of the run.
    lan:
        Link model for the simulated network; a default 100 Mb/s
        switched LAN when ``None``.
    trace_enabled, trace_kinds, call_cost, response_cost:
        Forwarded to :class:`~repro.kernel.system.System` unchanged.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        lan: Optional[SwitchedLan] = None,
        trace_enabled: bool = True,
        trace_kinds: Optional[Iterable[TraceKind]] = None,
        call_cost: Duration = DEFAULT_CALL_COST,
        response_cost: Duration = DEFAULT_RESPONSE_COST,
    ) -> None:
        self.system = System(
            n=n,
            seed=seed,
            trace_enabled=trace_enabled,
            trace_kinds=trace_kinds,
            call_cost=call_cost,
            response_cost=response_cost,
        )
        if lan is None:
            lan = SwitchedLan(bandwidth_bps=100e6, latency=lan_latency())
        self.transport = SimNetwork(self.system.sim, self.system.machines, lan)
        self.system.network = self.transport
        #: Alias: harness code reads ``backend.network`` on either twin.
        self.network = self.transport

    # ------------------------------------------------------------------ #
    # Backend contract
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.system.n

    @property
    def nodes(self) -> List[Any]:
        """The simulated machines (each a NodeBackend)."""
        return self.system.machines

    @property
    def sim(self) -> Any:
        """The shared :class:`~repro.sim.engine.Simulator`."""
        return self.system.sim

    @property
    def stacks(self) -> List[Any]:
        """The kernel stacks, one per node."""
        return self.system.stacks

    @property
    def registry(self) -> Any:
        """The shared protocol registry."""
        return self.system.registry

    @property
    def trace(self) -> Any:
        """The shared trace recorder."""
        return self.system.trace

    def machine(self, i: int) -> Any:
        """Node *i* (system-compatible accessor)."""
        return self.system.machines[i]

    def stack(self, i: int) -> Any:
        """Stack of node *i* (system-compatible accessor)."""
        return self.system.stacks[i]

    def start(self) -> None:
        """No-op: the simulated network needs no binding step."""

    def run(self, duration: float) -> None:
        """Advance simulated time by *duration* seconds."""
        self.system.sim.run(until=self.system.sim.now + duration)

    def stop(self) -> None:
        """No-op: ``Simulator.run`` already fires the ``at_end`` hooks."""
