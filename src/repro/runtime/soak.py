"""Soak harness: the Figure 4 stack on real sockets, switching live.

``python -m repro.runtime.soak`` boots *n* complete group-communication
stacks — UDP, RP2P, heartbeat FD, reliable broadcast, consensus, ABcast,
and the replacement layer, all the *same unmodified module classes* the
simulator runs — on a :class:`~repro.runtime.realtime.RealtimeBackend`:
real asyncio UDP sockets on localhost, wall-clock timers.  It then
drives constant client traffic through a mid-run protocol-switch chain
(the paper's experiment, but live), drains to quiescence, checks the
four ABcast properties on the delivery log, and exits non-zero on any
violation or incomplete switch.

While running it serves a JSON health/metrics endpoint
(``--health-port``; port 0 picks a free one) reporting uptime, event
and datagram counters, per-node delivery counts, and switch progress —
the kind of surface a long soak is watched through.

The builder is written against the :class:`~repro.runtime.api.Backend`
surface, so the conformance tests boot the identical stack set on
:class:`~repro.runtime.sim_backend.SimBackend` with the same code path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dpu import AbcastProbeModule, DeliveryLog, ReplacementManager, ReplAbcastModule
from ..dpu.abcast_checker import check_all_abcast_properties
from ..dpu.probes import is_workload_key
from ..experiments.common import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    register_standard_protocols,
)
from ..fd import HeartbeatFd
from ..kernel import WellKnown
from ..kernel.registry import ProtocolRegistry
from ..kernel.stack import Stack
from ..kernel.trace import TraceRecorder
from ..net import Rp2pModule, UdpModule
from ..rbcast import RbcastModule
from ..sim.clock import ms
from ..workload import FixedPayload, LoadGeneratorModule
from .api import Backend
from .realtime import RealtimeBackend

__all__ = ["SoakConfig", "SoakSystem", "build_soak_system", "run_soak", "main"]

#: Default mid-run switch chain: one hop to each other protocol family.
DEFAULT_PLAN: Tuple[Tuple[float, str], ...] = (
    (0.25, PROTOCOL_SEQ),
    (0.5, PROTOCOL_TOKEN),
    (0.75, PROTOCOL_CT),
)


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run.

    Timer-ish durations are in seconds of backend time (wall-clock on
    the realtime backend).  The failure-detector calibration is much
    coarser than the simulated default because wall-clock scheduling
    jitter on a loaded CI box would otherwise produce false suspicions.
    """

    nodes: int = 3
    duration: float = 20.0
    seed: int = 0
    #: Aggregate client rate over all nodes (messages per second).
    rate_per_sec: float = 60.0
    payload_bytes: int = 256
    initial_protocol: str = PROTOCOL_CT
    #: Switch chain as ``(fraction_of_duration, protocol)`` pairs.
    plan: Tuple[Tuple[float, str], ...] = DEFAULT_PLAN
    host: str = "127.0.0.1"
    #: Health endpoint port (``0`` = OS-assigned, ``None`` = no server).
    health_port: Optional[int] = 0
    fd_period: float = 0.25
    fd_timeout: float = 2.0
    creation_cost: float = 5e-3
    #: Post-load budget to drain in-flight messages to quiescence.
    drain_extra: float = 5.0
    drain_step: float = 0.25


@dataclass
class SoakSystem:
    """A built soak: the backend plus its measurement handles."""

    config: SoakConfig
    backend: Backend
    log: DeliveryLog
    manager: ReplacementManager
    generators: List[LoadGeneratorModule]
    #: ``(absolute_instant, protocol)`` switch plan (resolved from fractions).
    switch_times: List[Tuple[float, str]] = field(default_factory=list)
    health_address: Optional[Tuple[str, int]] = None
    _health_server: Any = None

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-able health/metrics snapshot of the running soak."""
        backend = self.backend
        versions = {
            v: self.manager.replacement_complete(v)
            for v in sorted(self.manager.windows)
        }
        return {
            "now": backend.sim.now,
            "nodes": backend.n,
            "events_processed": backend.sim.events_processed,
            "sends": len(self.log.sends),
            "deliveries": {
                s: len(self.log.delivered_set(s)) for s in range(backend.n)
            },
            "protocols": self.manager.current_protocols(),
            "switches_complete": versions,
            "transport": backend.network.stats(),
        }


def build_soak_system(config: SoakConfig, backend: Backend) -> SoakSystem:
    """Assemble the Figure 4 stack set on an already-started *backend*.

    Mirrors :func:`repro.experiments.common.build_group_comm_system`
    module for module, but reaches the runtime only through the
    :class:`~repro.runtime.api.Backend` surface — the same builder boots
    the simulated and the real-socket twin.
    """
    group = list(range(backend.n))
    if getattr(backend, "registry", None) is None:
        backend.registry = ProtocolRegistry()
    if not getattr(backend, "stacks", None):
        trace = TraceRecorder(enabled=False)
        backend.stacks = [Stack(node, trace) for node in backend.nodes]

    gc_config = GroupCommConfig(
        n=backend.n, seed=config.seed, token_idle_hold=ms(1.0)
    )
    register_standard_protocols(backend, group, gc_config)

    log = DeliveryLog()
    generators: List[LoadGeneratorModule] = []
    needs_consensus = config.initial_protocol == PROTOCOL_CT

    for stack in backend.stacks:
        stack.add_module(UdpModule(stack, backend.network))
        stack.add_module(Rp2pModule(stack))
        stack.add_module(
            HeartbeatFd(
                stack, group, period=config.fd_period, timeout=config.fd_timeout
            )
        )
        stack.add_module(RbcastModule(stack, group))
        if needs_consensus:
            from ..consensus import CtConsensusModule

            stack.add_module(CtConsensusModule(stack, group))
        info = backend.registry.info(config.initial_protocol)
        stack.add_module(info.factory(stack))
        stack.add_module(
            ReplAbcastModule(
                stack,
                backend.registry,
                initial_protocol=config.initial_protocol,
                creation_cost=config.creation_cost,
            )
        )
        stack.add_module(
            AbcastProbeModule(
                stack, log, service=WellKnown.R_ABCAST, key_filter=is_workload_key
            )
        )
        generator = LoadGeneratorModule(
            stack,
            log,
            rate_per_sec=config.rate_per_sec / backend.n,
            start_at=0.1 + stack.stack_id * (1.0 / config.rate_per_sec),
            stop_at=config.duration,
            service=WellKnown.R_ABCAST,
            payload=FixedPayload(config.payload_bytes),
        )
        stack.add_module(generator)
        generators.append(generator)

    manager = ReplacementManager(backend)
    switch_times = [
        (fraction * config.duration, protocol) for fraction, protocol in config.plan
    ]
    return SoakSystem(
        config=config,
        backend=backend,
        log=log,
        manager=manager,
        generators=generators,
        switch_times=switch_times,
    )


# --------------------------------------------------------------------- #
# Health endpoint
# --------------------------------------------------------------------- #
def _start_health_server(soak: SoakSystem, backend: RealtimeBackend) -> None:
    """Serve ``soak.snapshot()`` as JSON over HTTP on the backend's loop."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            await reader.readline()  # request line; any path serves metrics
            body = json.dumps(soak.snapshot(), sort_keys=True).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        finally:
            writer.close()

    async def open_server() -> None:
        server = await asyncio.start_server(
            handle, soak.config.host, soak.config.health_port
        )
        soak._health_server = server
        soak.health_address = server.sockets[0].getsockname()[:2]

    backend.run_coro(open_server())


def _probe_health(soak: SoakSystem, backend: RealtimeBackend) -> bool:
    """GET the health endpoint through a real TCP connection; parse it."""
    if soak.health_address is None:
        return False
    host, port = soak.health_address

    async def fetch() -> bool:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.startswith(b"HTTP/1.1 200") and "sends" in json.loads(body)

    try:
        return bool(backend.run_coro(fetch()))
    except Exception:
        return False


# --------------------------------------------------------------------- #
# Driving
# --------------------------------------------------------------------- #
def _drain(soak: SoakSystem) -> bool:
    """Run past the load window until every node delivered every send."""
    backend = soak.backend
    deadline = backend.sim.now + soak.config.drain_extra
    while backend.sim.now < deadline:
        backend.run(soak.config.drain_step)
        targets = set(soak.log.sends)
        if all(
            targets <= soak.log.delivered_set(s) for s in range(backend.n)
        ):
            return True
    return False


def run_soak(config: SoakConfig) -> Dict[str, Any]:
    """Run one full soak on a fresh realtime backend; return the report."""
    backend = RealtimeBackend(config.nodes, seed=config.seed, host=config.host)
    backend.start()
    soak = build_soak_system(config, backend)
    if config.health_port is not None:
        _start_health_server(soak, backend)
    for at, protocol in soak.switch_times:
        soak.manager.request_change(protocol, from_stack=0, at=at)

    wall_start = time.monotonic()
    backend.run(config.duration)
    drained = _drain(soak)
    wall_elapsed = time.monotonic() - wall_start

    health_ok = (
        _probe_health(soak, backend) if config.health_port is not None else None
    )
    snapshot = soak.snapshot()
    violations = check_all_abcast_properties(
        soak.log, crashed={}, stacks=list(range(backend.n))
    )
    switches_ok = all(snapshot["switches_complete"].values()) and len(
        snapshot["switches_complete"]
    ) == len(soak.switch_times)

    if soak._health_server is not None:
        soak._health_server.close()
    backend.stop()

    ok = (
        drained
        and switches_ok
        and not any(violations.values())
        and health_ok is not False
    )
    return {
        "ok": ok,
        "backend": "realtime",
        "wall_elapsed": wall_elapsed,
        "drained": drained,
        "switches_ok": switches_ok,
        "health_ok": health_ok,
        "violations": {k: v for k, v in violations.items() if v},
        **snapshot,
    }


def _parse_plan(text: str, default: Tuple[Tuple[float, str], ...]
                ) -> Tuple[Tuple[float, str], ...]:
    """Parse ``"0.25:abcast-seq,0.5:abcast-token"`` into a switch plan."""
    if not text:
        return default
    plan: List[Tuple[float, str]] = []
    for part in text.split(","):
        fraction, _, protocol = part.partition(":")
        plan.append((float(fraction), protocol.strip()))
    return tuple(plan)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run a soak, print the JSON report, exit 0/1."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.soak", description=__doc__
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="load window in wall-clock seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=60.0,
                        help="aggregate client messages per second")
    parser.add_argument("--payload-bytes", type=int, default=256)
    parser.add_argument("--plan", type=str, default="",
                        help="switch chain, e.g. '0.25:abcast-seq,0.5:abcast-ct'"
                        " (fractions of --duration)")
    parser.add_argument("--health-port", type=int, default=0,
                        help="health endpoint port (0 = auto, -1 = off)")
    parser.add_argument("--out", type=str, default="",
                        help="also write the JSON report to this file")
    args = parser.parse_args(argv)

    config = SoakConfig(
        nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        rate_per_sec=args.rate,
        payload_bytes=args.payload_bytes,
        plan=_parse_plan(args.plan, DEFAULT_PLAN),
        health_port=None if args.health_port < 0 else args.health_port,
    )
    report = run_soak(config)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
