"""Soak harness: the Figure 4 stack on real sockets, switching live.

``python -m repro.runtime.soak`` boots *n* complete group-communication
stacks — UDP, RP2P, heartbeat FD, reliable broadcast, consensus, ABcast,
and the replacement layer, all the *same unmodified module classes* the
simulator runs — on a :class:`~repro.runtime.realtime.RealtimeBackend`:
real asyncio UDP sockets on localhost, wall-clock timers.  It then
drives constant client traffic through a mid-run protocol-switch chain
(the paper's experiment, but live), drains to quiescence, checks the
four ABcast properties on the delivery log, and exits non-zero on any
violation or incomplete switch.

While running it serves a JSON health/metrics endpoint
(``--health-port``; port 0 picks a free one) reporting uptime, event
and datagram counters, per-node delivery counts, wall-clock
delivery-latency percentiles, and switch progress — the kind of surface
a long soak is watched through.

``--chaos`` arms the realtime chaos layer
(:class:`~repro.runtime.chaos.RealtimeFaultInjector`): a scheduled
crash → recover → partition → heal plan, with a lossy/duplicating link
and a latency spike riding along, runs *through* the protocol-switch
chain while the group-membership module expels and re-admits the
victim.  Degradation must stay graceful: the ABcast properties hold on
the survivor log (crash exemptions narrowed by the GM re-join, exactly
like the scenario engine), every stack traverses an agreeing protocol
chain, and the run still drains to quiescence after the heal.  A forged
*stale* change frame is injected mid-chain as a teeth check: the
guarded algorithm discards it (counted), while ``--unguarded`` runs the
paper-literal algorithm and is expected to FAIL the chain-agreement
check — proving the chaos gate can actually reject a bad run.

The builder is written against the :class:`~repro.runtime.api.Backend`
surface, so the conformance tests boot the identical stack set on
:class:`~repro.runtime.sim_backend.SimBackend` with the same code path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dpu import AbcastProbeModule, DeliveryLog, ReplacementManager, ReplAbcastModule
from ..dpu.abcast_checker import (
    chain_agreement_violations,
    check_all_abcast_properties,
    check_recovery_liveness,
    is_post_rejoin_send,
)
from ..dpu.probes import is_workload_key
from ..dpu.repl import NEW_ABCAST
from ..experiments.common import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    register_standard_protocols,
)
from ..fd import HeartbeatFd
from ..gm import GroupMembershipModule
from ..kernel import WellKnown
from ..kernel.registry import ProtocolRegistry
from ..kernel.stack import Stack
from ..kernel.trace import TraceRecorder
from ..net import Rp2pModule, UdpModule
from ..rbcast import RbcastModule
from ..scenarios.spec import Crash, Heal, ImpairLink, LatencySpike, Partition, Recover
from ..sim.clock import ms
from ..workload import FixedPayload, LoadGeneratorModule
from .api import Backend
from .chaos import RealtimeFaultInjector
from .realtime import RealtimeBackend

__all__ = [
    "SoakConfig",
    "SoakSystem",
    "build_soak_system",
    "default_chaos_faults",
    "run_soak",
    "main",
]

#: Default mid-run switch chain: one hop to each other protocol family.
DEFAULT_PLAN: Tuple[Tuple[float, str], ...] = (
    (0.25, PROTOCOL_SEQ),
    (0.5, PROTOCOL_TOKEN),
    (0.75, PROTOCOL_CT),
)

#: Chaos switch chain: two hops, timed so the first completes while the
#: victim is down (it must catch the chain up through re-join) and the
#: second lands after the partition heals.
CHAOS_PLAN: Tuple[Tuple[float, str], ...] = (
    (0.25, PROTOCOL_SEQ),
    (0.6, PROTOCOL_TOKEN),
)

#: Default chaos load window (seconds): long enough for a crash outage
#: to exceed the failure-detector timeout (expel + re-join exercised)
#: with a partition window shorter than it (no false suspicion).
CHAOS_DURATION: float = 10.0


def default_chaos_faults(config: "SoakConfig") -> Tuple[Any, ...]:
    """The default chaos fault plan, scaled to ``config.duration``.

    Calibrated against the soak's failure-detector settings
    (``fd_period=0.25``, ``fd_timeout=2.0``) at the default 10 s window:

    * crash the last node at ``0.18·D`` and recover it at ``0.45·D`` —
      a 2.7 s outage **exceeds** ``fd_timeout``, so the survivors
      suspect and (with GM) expel the victim, and its recovery must go
      through the full re-join state transfer;
    * a symmetric partition isolates the re-joined victim from
      ``0.58·D`` to ``0.75·D`` — 1.7 s, **under** ``fd_timeout``, so
      delivery stalls and recovers with no membership change;
    * a lossy + duplicating link between nodes 0 and 1 across the first
      switch window, and a network-wide latency spike near the end,
      stress retransmission and reordering on the way out.
    """
    d = config.duration
    victim = config.nodes - 1
    survivors = tuple(range(config.nodes - 1))
    return (
        Crash(at=0.18 * d, machine=victim),
        ImpairLink(
            at=0.30 * d, src=0, dst=1,
            loss_rate=0.05, duplicate_rate=0.05, until=0.50 * d,
        ),
        Recover(at=0.45 * d, machine=victim),
        Partition(at=0.58 * d, groups=(survivors, (victim,))),
        Heal(at=0.75 * d),
        LatencySpike(at=0.85 * d, extra=0.02, duration=0.05 * d),
    )


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run.

    Timer-ish durations are in seconds of backend time (wall-clock on
    the realtime backend).  The failure-detector calibration is much
    coarser than the simulated default because wall-clock scheduling
    jitter on a loaded CI box would otherwise produce false suspicions.
    """

    nodes: int = 3
    duration: float = 20.0
    seed: int = 0
    #: Aggregate client rate over all nodes (messages per second).
    rate_per_sec: float = 60.0
    payload_bytes: int = 256
    initial_protocol: str = PROTOCOL_CT
    #: Switch chain as ``(fraction_of_duration, protocol)`` pairs.
    plan: Tuple[Tuple[float, str], ...] = DEFAULT_PLAN
    host: str = "127.0.0.1"
    #: Health endpoint port (``0`` = OS-assigned, ``None`` = no server).
    health_port: Optional[int] = 0
    fd_period: float = 0.25
    fd_timeout: float = 2.0
    creation_cost: float = 5e-3
    #: Post-load budget to drain in-flight messages to quiescence.
    drain_extra: float = 5.0
    drain_step: float = 0.25
    #: Arm the realtime chaos layer (fault plan + degradation checks).
    chaos: bool = False
    #: Add the group-membership module (expel/re-join); implied by chaos.
    with_gm: bool = False
    #: Algorithm 1's stale-change guard; ``False`` runs the
    #: paper-literal variant the chaos teeth check expects to fail.
    guard_change_sn: bool = True
    #: Chaos fault plan (scenario ``FaultAction``s with absolute times);
    #: ``None`` selects :func:`default_chaos_faults`.
    fault_plan: Optional[Tuple[Any, ...]] = None


@dataclass
class SoakSystem:
    """A built soak: the backend plus its measurement handles."""

    config: SoakConfig
    backend: Backend
    log: DeliveryLog
    manager: ReplacementManager
    generators: List[LoadGeneratorModule]
    #: ``(absolute_instant, protocol)`` switch plan (resolved from fractions).
    switch_times: List[Tuple[float, str]] = field(default_factory=list)
    health_address: Optional[Tuple[str, int]] = None
    _health_server: Any = None
    #: The chaos injector, when ``config.chaos`` armed one.
    injector: Optional[RealtimeFaultInjector] = None

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-able health/metrics snapshot of the running soak."""
        backend = self.backend
        versions = {
            v: self.manager.replacement_complete(v)
            for v in sorted(self.manager.windows)
        }
        out: Dict[str, Any] = {
            "now": backend.sim.now,
            "nodes": backend.n,
            "events_processed": backend.sim.events_processed,
            "sends": len(self.log.sends),
            "deliveries": {
                s: len(self.log.delivered_set(s)) for s in range(backend.n)
            },
            "protocols": self.manager.current_protocols(),
            "switches_complete": versions,
            "latency": _latency_percentiles(self.log),
            "stale": self.manager.stale_classification(),
            "transport": backend.network.stats(),
        }
        if self.injector is not None:
            out["chaos"] = {
                "counters": self.injector.counters(),
                "records": self.injector.records_as_dicts(),
                "crashed_ever": {
                    str(k): v for k, v in sorted(self.injector.crashed_ever().items())
                },
                "rejoined": {
                    str(k): v for k, v in sorted(_collect_rejoined(self).items())
                },
                "stale_changes_discarded": sum(
                    self.manager.module(s).counters.get("stale_changes_discarded")
                    for s in range(backend.n)
                ),
            }
        return out


def build_soak_system(config: SoakConfig, backend: Backend) -> SoakSystem:
    """Assemble the Figure 4 stack set on an already-started *backend*.

    Mirrors :func:`repro.experiments.common.build_group_comm_system`
    module for module, but reaches the runtime only through the
    :class:`~repro.runtime.api.Backend` surface — the same builder boots
    the simulated and the real-socket twin.
    """
    group = list(range(backend.n))
    if getattr(backend, "registry", None) is None:
        backend.registry = ProtocolRegistry()
    if not getattr(backend, "stacks", None):
        trace = TraceRecorder(enabled=False)
        backend.stacks = [Stack(node, trace) for node in backend.nodes]

    gc_config = GroupCommConfig(
        n=backend.n, seed=config.seed, token_idle_hold=ms(1.0)
    )
    register_standard_protocols(backend, group, gc_config)

    log = DeliveryLog()
    generators: List[LoadGeneratorModule] = []
    needs_consensus = config.initial_protocol == PROTOCOL_CT

    for stack in backend.stacks:
        stack.add_module(UdpModule(stack, backend.network))
        stack.add_module(Rp2pModule(stack))
        stack.add_module(
            HeartbeatFd(
                stack, group, period=config.fd_period, timeout=config.fd_timeout
            )
        )
        stack.add_module(RbcastModule(stack, group))
        if needs_consensus:
            from ..consensus import CtConsensusModule

            stack.add_module(CtConsensusModule(stack, group))
        info = backend.registry.info(config.initial_protocol)
        stack.add_module(info.factory(stack))
        stack.add_module(
            ReplAbcastModule(
                stack,
                backend.registry,
                initial_protocol=config.initial_protocol,
                guard_change_sn=config.guard_change_sn,
                creation_cost=config.creation_cost,
            )
        )
        if config.with_gm or config.chaos:
            stack.add_module(
                GroupMembershipModule(
                    stack, group, abcast_service=WellKnown.R_ABCAST
                )
            )
        stack.add_module(
            AbcastProbeModule(
                stack, log, service=WellKnown.R_ABCAST, key_filter=is_workload_key
            )
        )
        generator = LoadGeneratorModule(
            stack,
            log,
            rate_per_sec=config.rate_per_sec / backend.n,
            start_at=0.1 + stack.stack_id * (1.0 / config.rate_per_sec),
            stop_at=config.duration,
            service=WellKnown.R_ABCAST,
            payload=FixedPayload(config.payload_bytes),
        )
        stack.add_module(generator)
        generators.append(generator)

    manager = ReplacementManager(backend)
    switch_times = [
        (fraction * config.duration, protocol) for fraction, protocol in config.plan
    ]
    return SoakSystem(
        config=config,
        backend=backend,
        log=log,
        manager=manager,
        generators=generators,
        switch_times=switch_times,
    )


# --------------------------------------------------------------------- #
# Health endpoint
# --------------------------------------------------------------------- #
def _start_health_server(soak: SoakSystem, backend: RealtimeBackend) -> None:
    """Serve ``soak.snapshot()`` as JSON over HTTP on the backend's loop."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            await reader.readline()  # request line; any path serves metrics
            body = json.dumps(soak.snapshot(), sort_keys=True).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        finally:
            writer.close()

    async def open_server() -> None:
        server = await asyncio.start_server(
            handle, soak.config.host, soak.config.health_port
        )
        soak._health_server = server
        soak.health_address = server.sockets[0].getsockname()[:2]

    backend.run_coro(open_server())


def _probe_health(soak: SoakSystem, backend: RealtimeBackend) -> bool:
    """GET the health endpoint through a real TCP connection; parse it."""
    if soak.health_address is None:
        return False
    host, port = soak.health_address

    async def fetch() -> bool:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.startswith(b"HTTP/1.1 200") and "sends" in json.loads(body)

    try:
        return bool(backend.run_coro(fetch()))
    except Exception:
        return False


# --------------------------------------------------------------------- #
# Measurement helpers
# --------------------------------------------------------------------- #
def _latency_percentiles(log: DeliveryLog) -> Dict[str, Any]:
    """Wall-clock send→deliver latency percentiles over every delivery.

    Each ``(key, t_deliver)`` pairs with its send instant; on the
    realtime backend both stamps come from the loop's monotonic clock,
    so these are honest end-to-end ABcast latencies through the real
    UDP sockets.
    """
    samples: List[float] = []
    for seq in log.deliveries.values():
        for key, t_deliver in seq:
            send = log.sends.get(key)
            if send is not None:
                samples.append(t_deliver - send[1])
    if not samples:
        return {"count": 0}
    samples.sort()
    last = len(samples) - 1

    def pct(p: float) -> float:
        return samples[min(last, int(p / 100.0 * len(samples)))]

    return {
        "count": len(samples),
        "p50": pct(50.0),
        "p95": pct(95.0),
        "p99": pct(99.0),
        "max": samples[-1],
    }


def _collect_rejoined(soak: SoakSystem) -> Dict[int, float]:
    """Stacks whose re-join completed for the incarnation still up
    (``stack -> completion instant``) — the scenario engine's rule.

    The GM handshake for the *current* epoch is the primary signal;
    stacks without a GM module fall back to the kernel's
    restart-complete marker.
    """
    out: Dict[int, float] = {}
    for stack in soak.backend.stacks:
        machine = stack.machine
        if machine.crashed or not machine.ever_crashed:
            continue
        gm = stack.bound_module(WellKnown.GM)
        if (
            gm is not None
            and getattr(gm, "rejoined_at", None) is not None
            and gm.rejoined_epoch == machine.epoch
        ):
            out[stack.stack_id] = gm.rejoined_at
        elif gm is None and stack.restart_completed_epoch == machine.epoch:
            out[stack.stack_id] = stack.restart_completed_at
    return out


# --------------------------------------------------------------------- #
# Driving
# --------------------------------------------------------------------- #
def _drain_pending(soak: SoakSystem) -> Dict[str, int]:
    """Per-stack count of obligations not yet delivered (empty = done).

    Obligations follow the scenario engine's quiescence rule: a
    never-crashed stack owes every send by a correct-or-rejoined sender
    (a crashed sender's pre-re-join sends are exempt in-flight losses)
    plus everything any correct stack already delivered (uniform
    agreement); a currently-crashed stack owes nothing; a rejoined
    stack owes the post-re-join sends.
    """
    log, backend = soak.log, soak.backend
    crashed_now = {
        s for s in range(backend.n) if backend.machine(s).crashed
    }
    rejoined = _collect_rejoined(soak)

    def obliged(sender: int, t_send: float) -> bool:
        if not backend.machine(sender).ever_crashed:
            return True
        return is_post_rejoin_send(sender, t_send, rejoined)

    targets = {
        key for key, (sender, t) in log.sends.items() if obliged(sender, t)
    }
    correct = [
        s
        for s in range(backend.n)
        if s not in crashed_now and not backend.machine(s).ever_crashed
    ]
    for s in correct:
        targets |= log.delivered_set(s)

    pending: Dict[str, int] = {}
    for s in correct:
        missing = len(targets - log.delivered_set(s))
        if missing:
            pending[str(s)] = missing
    for r, t_rejoin in rejoined.items():
        post_rejoin = {
            key
            for key, (sender, t) in log.sends.items()
            if t > t_rejoin and obliged(sender, t)
        }
        missing = len(post_rejoin - log.delivered_set(r))
        if missing:
            pending[str(r)] = pending.get(str(r), 0) + missing
    return pending


def _drain(soak: SoakSystem) -> Tuple[bool, Dict[str, int]]:
    """Run past the load window until every obligation is delivered.

    Returns ``(drained, pending)`` where *pending* names the stacks that
    failed to quiesce and how many deliveries each still owes — so a
    chaos-soak failure is diagnosable straight from the CI artifact.
    """
    backend = soak.backend
    deadline = backend.sim.now + soak.config.drain_extra
    pending = _drain_pending(soak)
    while backend.sim.now < deadline:
        backend.run(soak.config.drain_step)
        pending = _drain_pending(soak)
        if not pending:
            return True, {}
    return False, pending


def _arm_stale_probe(soak: SoakSystem) -> None:
    """Arm the chaos teeth check: one forged stale change frame.

    The moment version 1 closes cluster-wide, a fabricated
    ``(NEW_ABCAST, sn=0, ...)`` frame — a change message whose sequence
    number is one version stale, the paper's Section 5 anomaly — is fed
    to one stack's Adeliver interceptor.  Algorithm 1 with the
    sequence-number guard discards it (``stale_changes_discarded`` in
    the health snapshot); the paper-literal ``--unguarded`` variant
    accepts it, that stack's protocol chain diverges, and the
    chain-agreement check fails the run — proving the chaos gate
    rejects a genuinely inconsistent update.
    """
    backend = soak.backend
    target = 1 if backend.n > 1 else 0
    forged = (NEW_ABCAST, 0, (999, 0), soak.config.initial_protocol)

    def inject(version: int, protocol: str, when: float) -> None:
        if version != 1:
            return
        module = soak.manager.module(target)
        backend.machine(target).execute(
            0.0, module._on_adeliver, target, forged, 64
        )

    soak.manager.on_version_closed.append(inject)


def run_soak(config: SoakConfig) -> Dict[str, Any]:
    """Run one full soak on a fresh realtime backend; return the report."""
    backend = RealtimeBackend(config.nodes, seed=config.seed, host=config.host)
    backend.start()
    soak = build_soak_system(config, backend)
    if config.chaos:
        soak.injector = RealtimeFaultInjector(backend)
        faults = (
            config.fault_plan
            if config.fault_plan is not None
            else default_chaos_faults(config)
        )
        soak.injector.schedule_plan(faults)
        _arm_stale_probe(soak)
    if config.health_port is not None:
        _start_health_server(soak, backend)
    for at, protocol in soak.switch_times:
        soak.manager.request_change(protocol, from_stack=0, at=at)

    wall_start = time.monotonic()
    backend.run(config.duration)
    drained, drain_pending = _drain(soak)
    wall_elapsed = time.monotonic() - wall_start

    health_ok = (
        _probe_health(soak, backend) if config.health_port is not None else None
    )
    snapshot = soak.snapshot()

    stacks = list(range(backend.n))
    crashed: Dict[int, float] = (
        dict(soak.injector.crashed_ever()) if soak.injector is not None else {}
    )
    rejoined = _collect_rejoined(soak)
    in_flight = {
        key
        for key, (sender, t_send) in soak.log.sends.items()
        if sender in crashed and not is_post_rejoin_send(sender, t_send, rejoined)
    }
    violations = check_all_abcast_properties(
        soak.log, crashed=crashed, stacks=stacks, in_flight_ok=in_flight or None
    )
    violations["recovery liveness"] = check_recovery_liveness(
        soak.log, rejoined, crashed
    )
    chains = {
        sid: [protocol for _version, protocol in trajectory]
        for sid, trajectory in soak.manager.protocol_trajectories().items()
    }
    violations["chain agreement"] = chain_agreement_violations(
        chains, crashed=crashed
    )
    # Every stack that crashed and is back up must have completed its
    # re-join handshake, or the recovery path silently degraded.
    rejoin_ok = all(
        s in rejoined for s in crashed if not backend.machine(s).crashed
    )
    switches_ok = all(snapshot["switches_complete"].values()) and len(
        snapshot["switches_complete"]
    ) == len(soak.switch_times)

    if soak._health_server is not None:
        soak._health_server.close()
    backend.stop()

    ok = (
        drained
        and switches_ok
        and rejoin_ok
        and not any(violations.values())
        and health_ok is not False
    )
    return {
        "ok": ok,
        "backend": "realtime",
        "chaos_mode": config.chaos,
        "wall_elapsed": wall_elapsed,
        "drained": drained,
        "drain_pending": drain_pending,
        "switches_ok": switches_ok,
        "rejoin_ok": rejoin_ok,
        "health_ok": health_ok,
        "violations": {k: v for k, v in violations.items() if v},
        **snapshot,
    }


def _parse_plan(text: str, default: Tuple[Tuple[float, str], ...]
                ) -> Tuple[Tuple[float, str], ...]:
    """Parse ``"0.25:abcast-seq,0.5:abcast-token"`` into a switch plan."""
    if not text:
        return default
    plan: List[Tuple[float, str]] = []
    for part in text.split(","):
        fraction, _, protocol = part.partition(":")
        plan.append((float(fraction), protocol.strip()))
    return tuple(plan)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run a soak, print the JSON report, exit 0/1."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.soak", description=__doc__
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--duration", type=float, default=None,
                        help="load window in wall-clock seconds"
                        f" (default 20, or {CHAOS_DURATION:g} with --chaos)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=60.0,
                        help="aggregate client messages per second")
    parser.add_argument("--payload-bytes", type=int, default=256)
    parser.add_argument("--plan", type=str, default="",
                        help="switch chain, e.g. '0.25:abcast-seq,0.5:abcast-ct'"
                        " (fractions of --duration)")
    parser.add_argument("--chaos", action="store_true",
                        help="arm the fault plan (crash/recover/partition/"
                        "heal through the switch chain) and the graceful-"
                        "degradation checks")
    parser.add_argument("--unguarded", action="store_true",
                        help="run the paper-literal algorithm without the "
                        "stale-change guard; with --chaos this run is "
                        "EXPECTED to fail the chain-agreement check")
    parser.add_argument("--health-port", type=int, default=0,
                        help="health endpoint port (0 = auto, -1 = off)")
    parser.add_argument("--out", type=str, default="",
                        help="also write the JSON report to this file")
    args = parser.parse_args(argv)

    duration = args.duration
    if duration is None:
        duration = CHAOS_DURATION if args.chaos else 20.0
    config = SoakConfig(
        nodes=args.nodes,
        duration=duration,
        seed=args.seed,
        rate_per_sec=args.rate,
        payload_bytes=args.payload_bytes,
        plan=_parse_plan(args.plan, CHAOS_PLAN if args.chaos else DEFAULT_PLAN),
        health_port=None if args.health_port < 0 else args.health_port,
        chaos=args.chaos,
        guard_change_sn=not args.unguarded,
        drain_extra=8.0 if args.chaos else 5.0,
    )
    report = run_soak(config)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
