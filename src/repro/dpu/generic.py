"""The generic indirection level (structural dimension, service-agnostic).

The paper's structural idea is independent of atomic broadcast: a
replacement module provides ``r-p`` and requires ``p``, intercepting calls
and responses.  :class:`IndirectionModule` implements exactly that pattern
for *any* service, forwarding verbatim.  It is useful on its own to

* measure the cost of the indirection level in isolation (bench C1
  separates "kernel dispatch cost of one more level" from "Algorithm 1's
  header/sequence-number work"), and
* serve as the base of service-specific replacement modules (the
  consensus replacement extension builds on it).

A subclass overrides :meth:`forward_call` / :meth:`forward_response` to
add interception logic; the default implementation is a transparent relay.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..kernel.module import Module
from ..kernel.service import replacement_service_name
from ..kernel.stack import Stack

__all__ = ["IndirectionModule"]


class IndirectionModule(Module):
    """A transparent ``r-p`` → ``p`` relay for an arbitrary service ``p``.

    Parameters
    ----------
    stack:
        Hosting stack.
    service:
        The wrapped service name (``p``); the module provides
        ``replacement_service_name(service)`` (``r-p``).
    calls / responses / queries:
        The service vocabulary to relay.  Only declared names are
        forwarded — anything else is a configuration error surfacing as
        an unknown-handler kernel error, which is deliberate.
    """

    PROTOCOL = "indirection"

    def __init__(
        self,
        stack: Stack,
        service: str,
        calls: Iterable[str],
        responses: Iterable[str],
        queries: Iterable[str] = (),
        name: Optional[str] = None,
    ) -> None:
        self.wrapped_service = service
        self.indirect_service = replacement_service_name(service)
        super().__init__(
            stack,
            name=name,
            provides=(self.indirect_service,),
            requires=(service,),
        )
        for method in calls:
            self.export_call(
                self.indirect_service, method, self._make_call_forwarder(method)
            )
        for event in responses:
            self.subscribe(
                self.wrapped_service, event, self._make_response_forwarder(event)
            )
        for query in queries:
            self.export_query(
                self.indirect_service, query, self._make_query_forwarder(query)
            )

    # ------------------------------------------------------------------ #
    # Forwarding (override points)
    # ------------------------------------------------------------------ #
    def forward_call(self, method: str, args: tuple) -> None:
        """Relay one intercepted call downward (default: verbatim)."""
        self.call(self.wrapped_service, method, *args)

    def forward_response(self, event: str, args: tuple) -> Any:
        """Relay one intercepted response upward (default: verbatim).

        May return :data:`~repro.kernel.module.NOT_MINE` to disclaim the
        response (subclasses filtering multiplexed frames).
        """
        self.respond(self.indirect_service, event, *args)
        return None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _make_call_forwarder(self, method: str):
        def forwarder(*args: Any) -> None:
            self.forward_call(method, args)

        return forwarder

    def _make_response_forwarder(self, event: str):
        def forwarder(*args: Any) -> Any:
            return self.forward_response(event, args)

        return forwarder

    def _make_query_forwarder(self, query: str):
        def forwarder(*args: Any) -> Any:
            return self.query(self.wrapped_service, query, *args)

        return forwarder
