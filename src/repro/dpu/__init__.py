"""Dynamic protocol update — the paper's contribution.

* :class:`ReplAbcastModule` — Algorithm 1 (replacement of atomic
  broadcast protocols) behind the ``r-abcast`` indirection level;
* :class:`IndirectionModule` — the generic structural pattern;
* :class:`ReplacementManager` — orchestration + the paper's replacement
  window measurement;
* :class:`ReplConsensusModule` — the future-work extension (replacement
  of consensus protocols);
* :mod:`~repro.dpu.properties` / :mod:`~repro.dpu.abcast_checker` —
  trace checkers for the Section 3 generic properties and the Section 5
  ABcast properties across replacements;
* :class:`AbcastProbeModule` / :class:`DeliveryLog` — the observation
  layer the checkers consume.
"""

from .abcast_checker import (
    assert_abcast_properties,
    chain_agreement_violations,
    check_all_abcast_properties,
    check_recovery_liveness,
    check_uniform_agreement,
    check_uniform_integrity,
    check_uniform_total_order,
    check_validity,
    is_post_rejoin_send,
)
from .consensus_repl import ReplConsensusModule
from .generic import IndirectionModule
from .manager import ReplacementManager, ReplacementWindow
from .probes import AbcastProbeModule, DeliveryLog, payload_key
from .properties import (
    assert_chain_agreement,
    assert_strong_protocol_operationability,
    assert_strong_stack_well_formedness,
    assert_weak_protocol_operationability,
    assert_weak_stack_well_formedness,
    check_chain_agreement,
    check_strong_protocol_operationability,
    check_strong_stack_well_formedness,
    check_weak_protocol_operationability,
    check_weak_stack_well_formedness,
    protocol_chains,
)
from .repl import NEW_ABCAST, NIL, ReplAbcastModule, SwitchTask

__all__ = [
    "ReplAbcastModule",
    "SwitchTask",
    "NIL",
    "NEW_ABCAST",
    "IndirectionModule",
    "ReplacementManager",
    "ReplacementWindow",
    "ReplConsensusModule",
    "AbcastProbeModule",
    "DeliveryLog",
    "payload_key",
    "check_weak_stack_well_formedness",
    "check_strong_stack_well_formedness",
    "check_weak_protocol_operationability",
    "check_strong_protocol_operationability",
    "assert_weak_stack_well_formedness",
    "assert_strong_stack_well_formedness",
    "assert_weak_protocol_operationability",
    "assert_strong_protocol_operationability",
    "check_validity",
    "check_uniform_agreement",
    "check_uniform_integrity",
    "check_uniform_total_order",
    "check_recovery_liveness",
    "check_all_abcast_properties",
    "assert_abcast_properties",
    "is_post_rejoin_send",
    "protocol_chains",
    "check_chain_agreement",
    "assert_chain_agreement",
    "chain_agreement_violations",
]
