"""Checkers for the paper's generic dynamic-update properties (Section 3).

All checkers are pure functions over a recorded
:class:`~repro.kernel.trace.TraceRecorder`; each returns a list of
violation strings (empty = property holds on this trace) and has an
``assert_*`` twin raising :class:`~repro.errors.PropertyViolation`.

Finite-trace caveat: the *weak* properties are "eventually" properties.
On a finite trace a pending obligation near the end may be an artefact of
stopping the clock, not a violation; callers can pass ``ignore_after`` to
exempt obligations created after that instant (experiments instead run to
quiescence, making the strict check exact).

Definitions implemented (quoted from the paper):

* **strong stack-well-formedness** — "a stack is strongly well-formed iff
  whenever a module calls a service, the service is bound to one module";
* **weak stack-well-formedness** — "... the service is *eventually* bound
  to one module";
* **strong protocol-operationability** — "a protocol P is strongly
  operational in a set of stacks Π iff whenever a module Pi is bound in
  some stack i, then all non-crashed stacks j in Π contain a module Pj";
* **weak protocol-operationability** — "... *eventually* contain a module
  Pj".

Beyond the paper's four, the file hosts the trace side of **chain
agreement** (pipelined replacements): every stack must traverse the
identical protocol chain in the identical order.
:func:`protocol_chains` extracts each stack's ordered bind history for a
service from the kernel trace; :func:`check_chain_agreement` feeds it to
the comparison core in
:func:`repro.dpu.abcast_checker.chain_agreement_violations`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PropertyViolation
from ..kernel.events import TraceKind
from ..kernel.service import WellKnown
from ..kernel.trace import TraceRecorder
from ..sim.clock import Time
from .abcast_checker import chain_agreement_violations

__all__ = [
    "check_weak_stack_well_formedness",
    "check_strong_stack_well_formedness",
    "check_weak_protocol_operationability",
    "check_strong_protocol_operationability",
    "protocol_chains",
    "check_chain_agreement",
    "assert_weak_stack_well_formedness",
    "assert_strong_stack_well_formedness",
    "assert_weak_protocol_operationability",
    "assert_strong_protocol_operationability",
    "assert_chain_agreement",
]


# --------------------------------------------------------------------------- #
# Stack-well-formedness
# --------------------------------------------------------------------------- #
def check_weak_stack_well_formedness(
    trace: TraceRecorder,
    ignore_after: Optional[Time] = None,
) -> List[str]:
    """Every blocked call must eventually be released (unless the stack crashed).

    A blocked call on a stack that crashes at any point is exempt: a
    crashed stack makes no further calls and honours no obligations — the
    paper's properties quantify over non-crashed stacks, and an obligation
    pending at the crash instant dies with the stack.
    """
    crashes = trace.crashes()
    blocked: Dict[Tuple[int, str], Time] = {}  # (stack, call_id) -> block time
    for event in trace:
        if event.kind is TraceKind.CALL_BLOCKED:
            blocked[(event.stack_id, event.get("call_id"))] = event.time
        elif event.kind is TraceKind.CALL_UNBLOCKED:
            blocked.pop((event.stack_id, event.get("call_id")), None)
    violations = []
    for (stack_id, call_id), t in sorted(blocked.items(), key=lambda kv: kv[1]):
        if stack_id in crashes:
            continue
        if ignore_after is not None and t > ignore_after:
            continue
        violations.append(
            f"call {call_id} on stack {stack_id} blocked at t={t:.6f} and never released"
        )
    return violations


def check_strong_stack_well_formedness(trace: TraceRecorder) -> List[str]:
    """No call may ever block (the service must be bound at call time)."""
    return [
        f"call {e.get('call_id')} on stack {e.stack_id} blocked at t={e.time:.6f} "
        f"(service {e.service!r} unbound)"
        for e in trace.of_kind(TraceKind.CALL_BLOCKED)
    ]


# --------------------------------------------------------------------------- #
# Protocol-operationability
# --------------------------------------------------------------------------- #
def _module_presence(
    trace: TraceRecorder, protocol: str
) -> Dict[int, List[Tuple[Time, Time]]]:
    """Per stack, the [added, removed) intervals of modules of *protocol*."""
    open_since: Dict[Tuple[int, str], Time] = {}
    intervals: Dict[int, List[Tuple[Time, Time]]] = {}
    for event in trace:
        if event.protocol != protocol:
            continue
        if event.kind is TraceKind.MODULE_ADDED:
            open_since[(event.stack_id, event.module)] = event.time
        elif event.kind is TraceKind.MODULE_REMOVED:
            start = open_since.pop((event.stack_id, event.module), None)
            if start is not None:
                intervals.setdefault(event.stack_id, []).append((start, event.time))
    for (stack_id, _module), start in open_since.items():
        intervals.setdefault(stack_id, []).append((start, float("inf")))
    return intervals


def check_weak_protocol_operationability(
    trace: TraceRecorder,
    protocol: str,
    stacks: Sequence[int],
    ignore_after: Optional[Time] = None,
) -> List[str]:
    """Whenever a module of *protocol* is bound on some stack, every
    non-crashed stack in *stacks* must eventually contain such a module."""
    crashes = trace.crashes()
    presence = _module_presence(trace, protocol)
    binds = [
        e for e in trace.of_kind(TraceKind.BIND)
        if e.protocol == protocol and e.stack_id in set(stacks)
    ]
    violations = []
    for bind in binds:
        if ignore_after is not None and bind.time > ignore_after:
            continue
        for j in stacks:
            crash_t = crashes.get(j)
            if crash_t is not None and crash_t <= bind.time:
                continue  # j crashed before the obligation arose
            # "eventually contains": some presence interval ends after the
            # bind instant (still open counts), or j crashes later.
            ok = any(end > bind.time for (_s, end) in presence.get(j, []))
            if not ok and crash_t is None:
                violations.append(
                    f"protocol {protocol!r} bound on stack {bind.stack_id} at "
                    f"t={bind.time:.6f}, but stack {j} never contains a module of it"
                )
    return violations


def check_strong_protocol_operationability(
    trace: TraceRecorder,
    protocol: str,
    stacks: Sequence[int],
) -> List[str]:
    """Whenever a module of *protocol* is bound on some stack, every
    non-crashed stack in *stacks* must contain such a module *right then*."""
    crashes = trace.crashes()
    presence = _module_presence(trace, protocol)
    binds = [
        e for e in trace.of_kind(TraceKind.BIND)
        if e.protocol == protocol and e.stack_id in set(stacks)
    ]
    violations = []
    for bind in binds:
        for j in stacks:
            crash_t = crashes.get(j)
            if crash_t is not None and crash_t <= bind.time:
                continue
            ok = any(
                start <= bind.time < end for (start, end) in presence.get(j, [])
            )
            if not ok:
                violations.append(
                    f"protocol {protocol!r} bound on stack {bind.stack_id} at "
                    f"t={bind.time:.6f}, but stack {j} does not contain a module of "
                    f"it at that instant"
                )
    return violations


# --------------------------------------------------------------------------- #
# Chain agreement (pipelined replacements)
# --------------------------------------------------------------------------- #
def protocol_chains(
    trace: TraceRecorder,
    stacks: Sequence[int],
    service: str = WellKnown.ABCAST,
) -> Dict[int, List[str]]:
    """Per stack, the ordered protocol chain bound to *service*.

    The first entry is the initial protocol (its bind at build time),
    then one entry per completed replacement — the observable trajectory
    a pipelined chain leaves in the kernel trace.  Re-binding the *same*
    module (registry requirement resolution) still counts as a chain
    step only when it targets *service*, which only the replacement layer
    ever rebinds.
    """
    wanted = set(stacks)
    chains: Dict[int, List[str]] = {s: [] for s in stacks}
    for event in trace.of_kind(TraceKind.BIND):
        if event.service == service and event.stack_id in wanted:
            chains[event.stack_id].append(event.protocol)
    return chains


def check_chain_agreement(
    trace: TraceRecorder,
    stacks: Sequence[int],
    crashed: Optional[Dict[int, Time]] = None,
    service: str = WellKnown.ABCAST,
) -> List[str]:
    """Every stack traverses the identical protocol chain in the identical
    order (correct stacks exactly; ever-crashed stacks as a subsequence).

    See :func:`repro.dpu.abcast_checker.chain_agreement_violations` for
    the precise quantification.
    """
    return chain_agreement_violations(
        protocol_chains(trace, stacks, service=service), crashed=crashed
    )


# --------------------------------------------------------------------------- #
# Assertion twins
# --------------------------------------------------------------------------- #
def _raise_if(prop: str, violations: List[str]) -> None:
    if violations:
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise PropertyViolation(prop, preview + more)


def assert_weak_stack_well_formedness(
    trace: TraceRecorder, ignore_after: Optional[Time] = None
) -> None:
    """Raise :class:`PropertyViolation` unless the property holds."""
    _raise_if(
        "weak stack-well-formedness",
        check_weak_stack_well_formedness(trace, ignore_after=ignore_after),
    )


def assert_strong_stack_well_formedness(trace: TraceRecorder) -> None:
    """Raise :class:`PropertyViolation` unless the property holds."""
    _raise_if(
        "strong stack-well-formedness", check_strong_stack_well_formedness(trace)
    )


def assert_weak_protocol_operationability(
    trace: TraceRecorder,
    protocol: str,
    stacks: Sequence[int],
    ignore_after: Optional[Time] = None,
) -> None:
    """Raise :class:`PropertyViolation` unless the property holds."""
    _raise_if(
        "weak protocol-operationability",
        check_weak_protocol_operationability(
            trace, protocol, stacks, ignore_after=ignore_after
        ),
    )


def assert_strong_protocol_operationability(
    trace: TraceRecorder, protocol: str, stacks: Sequence[int]
) -> None:
    """Raise :class:`PropertyViolation` unless the property holds."""
    _raise_if(
        "strong protocol-operationability",
        check_strong_protocol_operationability(trace, protocol, stacks),
    )


def assert_chain_agreement(
    trace: TraceRecorder,
    stacks: Sequence[int],
    crashed: Optional[Dict[int, Time]] = None,
    service: str = WellKnown.ABCAST,
) -> None:
    """Raise :class:`PropertyViolation` unless the property holds."""
    _raise_if(
        "chain agreement",
        check_chain_agreement(trace, stacks, crashed=crashed, service=service),
    )
