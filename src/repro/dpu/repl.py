"""The replacement module for atomic broadcast — Algorithm 1 of the paper.

Structure (paper, Section 4.1 / Figure 3): ``Repl`` provides the
indirection service ``r-abcast`` and requires ``abcast``.  Every consumer
of atomic broadcast (group membership, the application work-load) calls
``r-abcast`` instead of ``abcast``; ``Repl`` intercepts both the calls and
the ``adeliver`` responses.  The updateable ABcast modules are *unaware
that replacement happens* — they are ordinary, unmodified protocol
modules.  This is the paper's central structural claim, and the library
enforces it: the ABcast implementations in :mod:`repro.abcast` contain no
replacement-related code whatsoever.

Algorithm (paper, Section 5.2, Algorithm 1), stack *i*::

     1: Initialisation:
     2:    undelivered ← ∅            {messages not yet rAdelivered}
     3:    curABcast ← current ABcast protocol
     4:    seqNumber ← 0              {protocol version number}
     5: upon changeABcast(prot) do
     6:    ABcast(newABcast, seqNumber, prot)
     7: upon rABcast(m) do
     8:    undelivered ← undelivered ∪ {m}
     9:    ABcast(nil, seqNumber, m)
    10: upon Adeliver(newABcast, sn, prot) do
    11:    seqNumber ← seqNumber + 1
    12:    unbind(curABcast)
    13:    create_module(prot)
    14:    curABcast ← prot
    15:    for all m ∈ undelivered do
    16:        ABcast(nil, seqNumber, m)
    17: upon Adeliver(nil, sn, m) do
    18:    if sn = seqNumber then
    19:        if m ∈ undelivered then
    20:            undelivered ← undelivered \\ {m}
    21:        rAdeliver(m)

The change request travels through the *current* protocol's total order
(line 6), so every stack switches at the same point of that order; stale
messages (line 18) are discarded and re-issued by their origin through
the new protocol (line 16); ``create_module`` (lines 13, 22–28) performs
the requirement recursion implemented by
:meth:`repro.kernel.registry.ProtocolRegistry.create_module`.

The version chain
-----------------
Every accepted change message becomes one :class:`SwitchTask` — the
per-version state machine ``ordered → creating → bound → reissued →
retired`` — appended to the module's **switch chain**.  Overlapping
replacements (a second ``changeABcast`` issued before the first window
closes anywhere in the group) are therefore first-class: each version's
module creation, backlog re-issue and old-module retirement is tracked by
its own task, module incarnation tags and re-issue sequence numbers come
from the *task's* version (never from the live ``seq_number``, which may
already have advanced past it), and crash recovery resumes the whole
pending chain, not a single timer.  At most one task is ever in
``creating`` on a stack — module creation occupies the (simulated)
classloader serially — so later ``ordered`` tasks queue behind it and
start in version order.

Two deliberate deviations, both configurable (see DESIGN.md §4):

* ``guard_change_sn`` (default ``True``) — the printed algorithm does not
  test ``sn`` on *change* messages (line 10).  With concurrent
  replacement requests, a stale change message is processed at a point
  that is **not** synchronised with the new protocol's total order, and
  uniform agreement can break (a regression test demonstrates it).  The
  guard discards stale change messages exactly like stale ordinary
  messages; the initiator re-issues its pending change through the new
  protocol according to ``reissue_policy`` (``"reissue"``) or drops it
  (``"drop"``, default — a superseding replacement has already happened).
* ``creation_cost`` — module creation occupies the host CPU and keeps
  the abcast service *unbound* for that long, so calls issued meanwhile
  block in the kernel's blocked-call queue and are released at the new
  bind (weak stack-well-formedness, exactly the paper's Section 3
  mechanism).  Setting it to 0 makes the switch atomic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReplacementError
from ..kernel.module import Module, NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from ..sim.monitors import Counter

__all__ = ["ReplAbcastModule", "SwitchTask", "NIL", "NEW_ABCAST"]

#: Tag of an ordinary (application) message (the algorithm's ``nil``).
NIL = "r.nil"
#: Tag of a protocol-change request (the algorithm's ``newABcast``).
NEW_ABCAST = "r.new"

#: Wire overhead the replacement layer adds to each message (tag + sn + uid).
_REPL_HEADER = 18

#: Internal unique id of a message or change request: (origin stack, seq).
_Rid = Tuple[int, int]


class SwitchTask:
    """One protocol-version transition of a stack's replacement chain.

    A task is born ``ordered`` when its change message is accepted from
    the total order (Algorithm 1, line 10) and advances through::

        ordered   -- accepted; queued behind any switch still creating
        creating  -- old module unbound, module creation in flight
        bound     -- new module created and bound (lines 13-14)
        reissued  -- the undelivered backlog re-issued (lines 15-16)
        retired   -- the old module this switch unbound was reclaimed

    ``bound → reissued`` happens within one simulated instant (the
    re-issue loop runs right after the bind); ``retired`` only ever
    happens when the module was built with ``retire_old_after``.  The
    per-stack chain of tasks *is* the protocol trajectory the
    chain-agreement checker compares across stacks.
    """

    #: Legal states, in lifecycle order (forward-only transitions).
    STATES = ("ordered", "creating", "bound", "reissued", "retired")

    __slots__ = (
        "version",
        "protocol",
        "rid",
        "state",
        "ordered_at",
        "creating_at",
        "bound_at",
        "reissued_at",
        "retired_at",
        "old_module",
        "retire_due",
        "reissue_count",
    )

    def __init__(self, version: int, protocol: str, rid: _Rid, ordered_at: float) -> None:
        self.version = version
        self.protocol = protocol
        self.rid = rid
        self.state = "ordered"
        self.ordered_at = ordered_at
        self.creating_at: Optional[float] = None
        self.bound_at: Optional[float] = None
        self.reissued_at: Optional[float] = None
        self.retired_at: Optional[float] = None
        #: Name of the module this switch unbound (retirement target).
        self.old_module: Optional[str] = None
        #: Absolute due instant of the pending retirement, if armed.
        self.retire_due: Optional[float] = None
        #: Undelivered messages re-issued under this version (lines 15-16).
        self.reissue_count = 0

    @property
    def pending(self) -> bool:
        """Whether the switch itself is still in flight (not yet bound)."""
        return self.state in ("ordered", "creating")

    def advance(self, state: str, now: float) -> None:
        """Move forward to *state* (skips allowed, regressions are bugs)."""
        order = self.STATES
        if order.index(state) <= order.index(self.state):
            raise ReplacementError(
                f"switch v{self.version}: illegal transition "
                f"{self.state!r} -> {state!r}"
            )
        self.state = state
        setattr(self, f"{state}_at", now)

    def to_dict(self) -> Dict[str, Any]:
        """A deterministic plain-dict rendering (status queries, reports)."""
        return {
            "version": self.version,
            "protocol": self.protocol,
            "state": self.state,
            "ordered_at": self.ordered_at,
            "creating_at": self.creating_at,
            "bound_at": self.bound_at,
            "reissued_at": self.reissued_at,
            "retired_at": self.retired_at,
            "reissues": self.reissue_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SwitchTask v{self.version} {self.protocol} {self.state}>"


class ReplAbcastModule(Module):
    """``Repl`` — the replacement module dedicated to the ABcast service.

    Service vocabulary (service ``r-abcast``):

    * call ``abcast(m, size_bytes)`` — the algorithm's ``rABcast``;
    * call ``change_protocol(prot_name)`` — the algorithm's
      ``changeABcast``;
    * response ``adeliver(origin, m, size_bytes)`` — ``rAdeliver``;
    * query ``status()`` — current version, protocol, pending counts and
      the switch chain.

    Parameters
    ----------
    stack, registry:
        The hosting stack and the protocol registry used by
        ``create_module``.
    initial_protocol:
        Name (in the registry) of the protocol bound to ``abcast`` when
        the system starts; used only for bookkeeping/reporting.
    guard_change_sn, reissue_policy, creation_cost:
        See the module docstring.
    dedup_deliveries:
        Belt-and-braces uid dedup at rAdeliver (default off — with the
        guard on, Algorithm 1 needs no dedup, and leaving it off lets the
        property checkers *observe* the paper-literal anomaly).
    """

    PROVIDES = (WellKnown.R_ABCAST,)
    REQUIRES = (WellKnown.ABCAST,)
    PROTOCOL = "repl-abcast"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        initial_protocol: str,
        guard_change_sn: bool = True,
        reissue_policy: str = "drop",
        creation_cost: Duration = ms(5.0),
        dedup_deliveries: bool = False,
        retire_old_after: Optional[Duration] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        if reissue_policy not in ("drop", "reissue"):
            raise ReplacementError(
                f"unknown reissue_policy {reissue_policy!r}; use 'drop' or 'reissue'"
            )
        if retire_old_after is not None and retire_old_after <= 0:
            raise ReplacementError("retire_old_after must be positive (or None)")
        self.registry = registry
        self.guard_change_sn = guard_change_sn
        self.reissue_policy = reissue_policy
        self.creation_cost = creation_cost
        self.dedup_deliveries = dedup_deliveries
        #: Remove the unbound old module this long after a switch.  The
        #: paper keeps old modules forever ("unbinding a module does not
        #: remove it from the stack"); a long-running system must
        #: eventually reclaim them.  The delay must exceed the time other
        #: stacks may still need this stack's participation in the old
        #: protocol's in-flight traffic (seconds are plenty on a LAN).
        self.retire_old_after = retire_old_after
        self.counters = Counter()

        # -- Algorithm 1 state ------------------------------------------ #
        #: line 2 — messages rABcast here and not yet rAdelivered here,
        #: as ``rid -> (m, size, issued_sn)``.  ``issued_sn`` is the
        #: seqNumber the frame was (last) issued under; the reissue loop
        #: (lines 15-16) skips entries already issued under (or past) the
        #: version being installed.  This matters only when module
        #: creation takes time: a message ABcast inside the unbind→bind
        #: gap carries the *new* sn and its own (kernel-blocked) call is
        #: released at bind — reissuing it too would deliver it twice.
        #: With zero creation cost the gap is empty and this reduces to
        #: the paper's lines 15-16 verbatim.
        self.undelivered: Dict[_Rid, Tuple[Any, int, int]] = {}
        #: line 4 — the protocol version number.
        self.seq_number = 0
        #: line 3 — name of the protocol currently bound (bookkeeping).
        self.current_protocol = initial_protocol
        #: The protocol bound at construction: version 0 of the chain.
        self.initial_protocol = initial_protocol

        # -- the version chain ------------------------------------------ #
        #: Every accepted change, in version order: ``chain[k]`` installs
        #: version ``k + 1``.  Append-only; the per-stack protocol
        #: trajectory the chain-agreement checker compares.
        self.switch_chain: List[SwitchTask] = []
        #: The (single) task whose module creation is in flight, if any.
        self._creating: Optional[SwitchTask] = None

        # -- deviation / instrumentation state -------------------------- #
        self._next_rid = 0
        #: Change requests this stack initiated and not yet seen applied.
        self._pending_changes: Dict[_Rid, str] = {}
        self._delivered_rids: set = set()
        #: Stale ordinary-message discards classified by version gap
        #: (``seq_number - sn`` at discard time).  Pipelined chains
        #: produce gaps ≥ 2 — a message can go stale across *several*
        #: versions before its origin re-issues it; negative gaps only
        #: occur in paper-literal runs where a stack processed a stale
        #: change and ran ahead of the frame's issuer.
        self.stale_gaps: Dict[int, int] = {}
        #: Hooks fired as ``hook(stack_id, seq_number, prot, started_at)``.
        self.on_switch_start: List[Callable[..., None]] = []
        #: Hooks fired as ``hook(stack_id, seq_number, prot, duration)``.
        self.on_switch_complete: List[Callable[..., None]] = []

        self.export_call(WellKnown.R_ABCAST, "abcast", self._rabcast)
        self.export_call(WellKnown.R_ABCAST, "change_protocol", self._change_abcast)
        self.export_query(WellKnown.R_ABCAST, "status", self._status)
        self.subscribe(WellKnown.ABCAST, "adeliver", self._on_adeliver)

    # ------------------------------------------------------------------ #
    # Lines 5-6: changeABcast(prot)
    # ------------------------------------------------------------------ #
    def _change_abcast(self, prot: str) -> None:
        self.registry.info(prot)  # fail fast on unknown protocols
        rid = self._fresh_rid()
        self._pending_changes[rid] = prot
        self.counters.incr("change_requests")
        self._abcast_frame((NEW_ABCAST, self.seq_number, rid, prot), 64)

    # ------------------------------------------------------------------ #
    # Lines 7-9: rABcast(m)
    # ------------------------------------------------------------------ #
    def _rabcast(self, m: Any, size_bytes: int) -> None:
        rid = self._fresh_rid()
        self.undelivered[rid] = (m, size_bytes, self.seq_number)  # line 8
        self.counters.incr("rabcasts")
        self._abcast_frame((NIL, self.seq_number, rid, m, size_bytes), size_bytes)

    def _abcast_frame(self, frame: tuple, size_bytes: int) -> None:
        self.call(WellKnown.ABCAST, "abcast", frame, size_bytes + _REPL_HEADER)

    def _fresh_rid(self) -> _Rid:
        rid = (self.stack_id, self._next_rid)
        self._next_rid += 1
        return rid

    # ------------------------------------------------------------------ #
    # Lines 10-21: the Adeliver interceptor
    # ------------------------------------------------------------------ #
    def _on_adeliver(self, origin: int, frame: Any, size_bytes: int):
        if not (isinstance(frame, tuple) and frame and frame[0] in (NIL, NEW_ABCAST)):
            return NOT_MINE
        if frame[0] == NEW_ABCAST:
            _, sn, rid, prot = frame
            self._on_change_message(sn, rid, prot)
        else:
            _, sn, rid, m, m_size = frame
            self._on_ordinary_message(sn, rid, m, m_size)
        return None

    # Lines 10-16 -------------------------------------------------------- #
    def _on_change_message(self, sn: int, rid: _Rid, prot: str) -> None:
        if self.guard_change_sn and sn != self.seq_number:
            # Deviation (DESIGN.md §4): a stale change message is not
            # synchronised with the current protocol's total order.
            self.counters.incr("stale_changes_discarded")
            if rid in self._pending_changes:
                if self.reissue_policy == "reissue":
                    self.counters.incr("changes_reissued")
                    self._abcast_frame((NEW_ABCAST, self.seq_number, rid, prot), 64)
                else:
                    del self._pending_changes[rid]
                    self.counters.incr("changes_dropped_superseded")
            return
        # line 11 — the version is assigned at ordering time; everything
        # downstream (module tag, reissue sn) uses the *task's* version,
        # because by creation time ``seq_number`` may already be ahead.
        self.seq_number += 1
        self._pending_changes.pop(rid, None)
        task = SwitchTask(self.seq_number, prot, rid, self.now)
        self.switch_chain.append(task)
        self.counters.incr("switches")
        if self._creating is None:
            self._begin_switch(task)
        # else: a previous version's module creation still occupies the
        # classloader (reachable only in paper-literal mode, where a
        # stale change is accepted mid-gap); the task waits in state
        # ``ordered`` and starts when the chain reaches it.

    def _begin_switch(self, task: SwitchTask) -> None:
        """Unbind the current module and start creating *task*'s one."""
        task.advance("creating", self.now)
        self._creating = task
        for hook in self.on_switch_start:
            hook(self.stack_id, task.version, task.protocol, task.creating_at)
        # line 12 — from here until the new bind, calls to ``abcast``
        # block in the kernel's queue (weak stack-well-formedness).
        old_module = self.stack.unbind(WellKnown.ABCAST)
        if self.retire_old_after is not None:
            task.old_module = old_module.name
            task.retire_due = self.now + self.retire_old_after
            self.set_timer(self.retire_old_after, self._retire, task)
        # Module creation is modelled as *elapsed* time, not CPU burn:
        # the dominant cost in the paper's Java framework is classloading
        # and allocation, during which the event loop keeps serving the
        # still-running old protocol.  This is what lets calls actually
        # reach the unbound service and block (weak well-formedness).
        if self.creation_cost > 0:
            self.set_timer(self.creation_cost, self._complete_switch, task)
        else:
            self._complete_switch(task)

    def on_restart(self) -> None:
        """Resume the whole pending chain after a crash (crash-recovery).

        A crash between ``unbind`` and the creation-timer completion
        would otherwise leave ``abcast`` unbound forever on the recovered
        stack: the creation timer died with the old incarnation while
        the task stayed ``creating``, so every abcast call blocks
        permanently.  Module creation restarts from scratch in the new
        incarnation (the classloading work is lost with the crash), and
        any tasks still ``ordered`` behind it follow in version order
        when it completes — the chain resumes as a whole.  Retirement
        timers of *every* chain entry are re-armed too.
        """
        if self._creating is not None:
            self.set_timer(self.creation_cost, self._complete_switch, self._creating)
        else:
            # Defensive: the accept path starts a switch synchronously,
            # so an ordered head without a creating task should not
            # occur — but resuming it is strictly safer than stalling.
            for task in self.switch_chain:
                if task.state == "ordered":
                    self._begin_switch(task)
                    break
        for task in self.switch_chain:
            if task.retire_due is not None and task.state != "retired":
                self.set_timer(max(0.0, task.retire_due - self.now), self._retire, task)

    def _complete_switch(self, task: SwitchTask) -> None:
        if self._creating is not task:
            # A stale completion (the timer of a dead incarnation cannot
            # reach here — epochs guard that — but keep the invariant
            # explicit for free).
            return  # pragma: no cover - defensive
        self._creating = None
        # lines 13-14 (+ 22-28 via the registry): create and bind the new
        # protocol module under a fresh incarnation tag agreed via the
        # totally-ordered version of *this task* — under pipelining the
        # live seq_number may already name a later version.
        tag = f"{task.protocol}/v{task.version}"
        self.registry.create_module(
            self.stack, task.protocol, bind=True, factory_kwargs={"instance_tag": tag}
        )
        self.current_protocol = task.protocol
        task.advance("bound", self.now)
        # lines 15-16 — re-issue everything not yet rAdelivered that was
        # issued under an older protocol version (see the ``undelivered``
        # docstring for why gap-issued messages are skipped).  Frames are
        # stamped with the task's version: they travel through the module
        # bound *right now*, whose total order carries exactly that
        # version's traffic.
        reissued = 0
        for rid, (m, m_size, issued_sn) in list(self.undelivered.items()):
            if issued_sn >= task.version:
                continue
            reissued += 1
            self.counters.incr("reissues")
            self.undelivered[rid] = (m, m_size, task.version)
            self._abcast_frame((NIL, task.version, rid, m, m_size), m_size)
        task.reissue_count = reissued
        task.advance("reissued", self.now)
        for hook in self.on_switch_complete:
            hook(self.stack_id, task.version, task.protocol, self.now - task.creating_at)
        # Chain continuation: start the next ordered version, if any
        # (paper-literal pipelining queues them behind the classloader).
        for next_task in self.switch_chain[task.version:]:
            if next_task.state == "ordered":
                self._begin_switch(next_task)
                break

    # Lines 17-21 -------------------------------------------------------- #
    def _on_ordinary_message(self, sn: int, rid: _Rid, m: Any, m_size: int) -> None:
        if sn != self.seq_number:  # line 18
            gap = self.seq_number - sn
            self.counters.incr("stale_messages_discarded")
            if gap >= 2 or gap < 0:
                # Multi-version staleness only arises under pipelined
                # chains (gap ≥ 2) or the paper-literal anomaly (gap < 0).
                self.counters.incr("stale_multi_version")
            self.stale_gaps[gap] = self.stale_gaps.get(gap, 0) + 1
            return
        if rid in self.undelivered:  # lines 19-20
            del self.undelivered[rid]
        if self.dedup_deliveries:
            if rid in self._delivered_rids:
                self.counters.incr("dedup_suppressed")
                return
            self._delivered_rids.add(rid)
        self.counters.incr("radelivers")
        # line 21 — rAdeliver(m)
        self.respond(WellKnown.R_ABCAST, "adeliver", rid[0], m, m_size)

    def _retire(self, task: SwitchTask) -> None:
        """Reclaim the long-unbound module *task* replaced (see constructor)."""
        if task.pending:
            # The switch itself is still in flight — reachable when a
            # crash pushed the (restarted-from-scratch) creation past the
            # original retirement due time, or with a retire delay shorter
            # than the creation cost.  Never reclaim the module the stack
            # is still switching *away from* mid-window; retry once the
            # creation window has passed.
            task.retire_due = self.now + self.creation_cost
            self.set_timer(self.creation_cost, self._retire, task)
            return
        task.retire_due = None
        module_name = task.old_module
        if module_name is not None and module_name in self.stack.modules:
            bound = self.stack.bound_module(WellKnown.ABCAST)
            if bound is not None and bound.name == module_name:
                return  # it was re-bound meanwhile; never remove the active one
            self.stack.remove_module(module_name)
            self.counters.incr("retired_modules")
            if task.state != "retired":
                task.advance("retired", self.now)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        return {
            "seq_number": self.seq_number,
            "current_protocol": self.current_protocol,
            "undelivered": len(self.undelivered),
            "pending_changes": len(self._pending_changes),
            "switching": self._creating is not None,
            "pending_chain": sum(1 for t in self.switch_chain if t.pending),
            "chain": [t.to_dict() for t in self.switch_chain],
            "stale_gaps": dict(sorted(self.stale_gaps.items())),
        }

    @property
    def undelivered_count(self) -> int:
        """Messages rABcast here and not yet rAdelivered here."""
        return len(self.undelivered)

    def protocol_trajectory(self) -> List[Tuple[int, str]]:
        """The ``(version, protocol)`` chain this stack has *bound* so far
        (the initial protocol as version 0, then every completed switch)."""
        out: List[Tuple[int, str]] = [(0, self.initial_protocol)]
        out.extend(
            (t.version, t.protocol)
            for t in self.switch_chain
            if t.bound_at is not None
        )
        return out
