"""The replacement module for atomic broadcast — Algorithm 1 of the paper.

Structure (paper, Section 4.1 / Figure 3): ``Repl`` provides the
indirection service ``r-abcast`` and requires ``abcast``.  Every consumer
of atomic broadcast (group membership, the application work-load) calls
``r-abcast`` instead of ``abcast``; ``Repl`` intercepts both the calls and
the ``adeliver`` responses.  The updateable ABcast modules are *unaware
that replacement happens* — they are ordinary, unmodified protocol
modules.  This is the paper's central structural claim, and the library
enforces it: the ABcast implementations in :mod:`repro.abcast` contain no
replacement-related code whatsoever.

Algorithm (paper, Section 5.2, Algorithm 1), stack *i*::

     1: Initialisation:
     2:    undelivered ← ∅            {messages not yet rAdelivered}
     3:    curABcast ← current ABcast protocol
     4:    seqNumber ← 0              {protocol version number}
     5: upon changeABcast(prot) do
     6:    ABcast(newABcast, seqNumber, prot)
     7: upon rABcast(m) do
     8:    undelivered ← undelivered ∪ {m}
     9:    ABcast(nil, seqNumber, m)
    10: upon Adeliver(newABcast, sn, prot) do
    11:    seqNumber ← seqNumber + 1
    12:    unbind(curABcast)
    13:    create_module(prot)
    14:    curABcast ← prot
    15:    for all m ∈ undelivered do
    16:        ABcast(nil, seqNumber, m)
    17: upon Adeliver(nil, sn, m) do
    18:    if sn = seqNumber then
    19:        if m ∈ undelivered then
    20:            undelivered ← undelivered \\ {m}
    21:        rAdeliver(m)

The change request travels through the *current* protocol's total order
(line 6), so every stack switches at the same point of that order; stale
messages (line 18) are discarded and re-issued by their origin through
the new protocol (line 16); ``create_module`` (lines 13, 22–28) performs
the requirement recursion implemented by
:meth:`repro.kernel.registry.ProtocolRegistry.create_module`.

Two deliberate deviations, both configurable (see DESIGN.md §4):

* ``guard_change_sn`` (default ``True``) — the printed algorithm does not
  test ``sn`` on *change* messages (line 10).  With concurrent
  replacement requests, a stale change message is processed at a point
  that is **not** synchronised with the new protocol's total order, and
  uniform agreement can break (a regression test demonstrates it).  The
  guard discards stale change messages exactly like stale ordinary
  messages; the initiator re-issues its pending change through the new
  protocol according to ``reissue_policy`` (``"reissue"``) or drops it
  (``"drop"``, default — a superseding replacement has already happened).
* ``creation_cost`` — module creation occupies the host CPU and keeps
  the abcast service *unbound* for that long, so calls issued meanwhile
  block in the kernel's blocked-call queue and are released at the new
  bind (weak stack-well-formedness, exactly the paper's Section 3
  mechanism).  Setting it to 0 makes the switch atomic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReplacementError
from ..kernel.module import Module, NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from ..sim.monitors import Counter

__all__ = ["ReplAbcastModule", "NIL", "NEW_ABCAST"]

#: Tag of an ordinary (application) message (the algorithm's ``nil``).
NIL = "r.nil"
#: Tag of a protocol-change request (the algorithm's ``newABcast``).
NEW_ABCAST = "r.new"

#: Wire overhead the replacement layer adds to each message (tag + sn + uid).
_REPL_HEADER = 18

#: Internal unique id of a message or change request: (origin stack, seq).
_Rid = Tuple[int, int]


class ReplAbcastModule(Module):
    """``Repl`` — the replacement module dedicated to the ABcast service.

    Service vocabulary (service ``r-abcast``):

    * call ``abcast(m, size_bytes)`` — the algorithm's ``rABcast``;
    * call ``change_protocol(prot_name)`` — the algorithm's
      ``changeABcast``;
    * response ``adeliver(origin, m, size_bytes)`` — ``rAdeliver``;
    * query ``status()`` — current version, protocol, pending counts.

    Parameters
    ----------
    stack, registry:
        The hosting stack and the protocol registry used by
        ``create_module``.
    initial_protocol:
        Name (in the registry) of the protocol bound to ``abcast`` when
        the system starts; used only for bookkeeping/reporting.
    guard_change_sn, reissue_policy, creation_cost:
        See the module docstring.
    dedup_deliveries:
        Belt-and-braces uid dedup at rAdeliver (default off — with the
        guard on, Algorithm 1 needs no dedup, and leaving it off lets the
        property checkers *observe* the paper-literal anomaly).
    """

    PROVIDES = (WellKnown.R_ABCAST,)
    REQUIRES = (WellKnown.ABCAST,)
    PROTOCOL = "repl-abcast"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        initial_protocol: str,
        guard_change_sn: bool = True,
        reissue_policy: str = "drop",
        creation_cost: Duration = ms(5.0),
        dedup_deliveries: bool = False,
        retire_old_after: Optional[Duration] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        if reissue_policy not in ("drop", "reissue"):
            raise ReplacementError(
                f"unknown reissue_policy {reissue_policy!r}; use 'drop' or 'reissue'"
            )
        if retire_old_after is not None and retire_old_after <= 0:
            raise ReplacementError("retire_old_after must be positive (or None)")
        self.registry = registry
        self.guard_change_sn = guard_change_sn
        self.reissue_policy = reissue_policy
        self.creation_cost = creation_cost
        self.dedup_deliveries = dedup_deliveries
        #: Remove the unbound old module this long after a switch.  The
        #: paper keeps old modules forever ("unbinding a module does not
        #: remove it from the stack"); a long-running system must
        #: eventually reclaim them.  The delay must exceed the time other
        #: stacks may still need this stack's participation in the old
        #: protocol's in-flight traffic (seconds are plenty on a LAN).
        self.retire_old_after = retire_old_after
        self.counters = Counter()

        # -- Algorithm 1 state ------------------------------------------ #
        #: line 2 — messages rABcast here and not yet rAdelivered here,
        #: as ``rid -> (m, size, issued_sn)``.  ``issued_sn`` is the
        #: seqNumber the frame was (last) issued under; the reissue loop
        #: (lines 15-16) skips entries already issued under the current
        #: version.  This matters only when module creation takes time:
        #: a message ABcast inside the unbind→bind gap carries the *new*
        #: sn and its own (kernel-blocked) call is released at bind —
        #: reissuing it too would deliver it twice.  With zero creation
        #: cost the gap is empty and this reduces to the paper's lines
        #: 15-16 verbatim.
        self.undelivered: Dict[_Rid, Tuple[Any, int, int]] = {}
        #: line 4 — the protocol version number.
        self.seq_number = 0
        #: line 3 — name of the protocol currently bound (bookkeeping).
        self.current_protocol = initial_protocol

        # -- deviation / instrumentation state -------------------------- #
        self._next_rid = 0
        #: Change requests this stack initiated and not yet seen applied.
        self._pending_changes: Dict[_Rid, str] = {}
        self._switching = False
        #: The (prot, started_at) of a switch whose creation timer is in
        #: flight — needed to re-arm it if the machine crashes mid-switch.
        self._switch_pending: Optional[Tuple[str, float]] = None
        #: Unbound old modules scheduled for retirement: name -> due time.
        self._retire_pending: Dict[str, float] = {}
        self._deferred_changes: List[tuple] = []
        self._delivered_rids: set = set()
        #: Hooks fired as ``hook(stack_id, seq_number, prot, started_at)``.
        self.on_switch_start: List[Callable[..., None]] = []
        #: Hooks fired as ``hook(stack_id, seq_number, prot, duration)``.
        self.on_switch_complete: List[Callable[..., None]] = []

        self.export_call(WellKnown.R_ABCAST, "abcast", self._rabcast)
        self.export_call(WellKnown.R_ABCAST, "change_protocol", self._change_abcast)
        self.export_query(WellKnown.R_ABCAST, "status", self._status)
        self.subscribe(WellKnown.ABCAST, "adeliver", self._on_adeliver)

    # ------------------------------------------------------------------ #
    # Lines 5-6: changeABcast(prot)
    # ------------------------------------------------------------------ #
    def _change_abcast(self, prot: str) -> None:
        self.registry.info(prot)  # fail fast on unknown protocols
        rid = self._fresh_rid()
        self._pending_changes[rid] = prot
        self.counters.incr("change_requests")
        self._abcast_frame((NEW_ABCAST, self.seq_number, rid, prot), 64)

    # ------------------------------------------------------------------ #
    # Lines 7-9: rABcast(m)
    # ------------------------------------------------------------------ #
    def _rabcast(self, m: Any, size_bytes: int) -> None:
        rid = self._fresh_rid()
        self.undelivered[rid] = (m, size_bytes, self.seq_number)  # line 8
        self.counters.incr("rabcasts")
        self._abcast_frame((NIL, self.seq_number, rid, m, size_bytes), size_bytes)

    def _abcast_frame(self, frame: tuple, size_bytes: int) -> None:
        self.call(WellKnown.ABCAST, "abcast", frame, size_bytes + _REPL_HEADER)

    def _fresh_rid(self) -> _Rid:
        rid = (self.stack_id, self._next_rid)
        self._next_rid += 1
        return rid

    # ------------------------------------------------------------------ #
    # Lines 10-21: the Adeliver interceptor
    # ------------------------------------------------------------------ #
    def _on_adeliver(self, origin: int, frame: Any, size_bytes: int):
        if not (isinstance(frame, tuple) and frame and frame[0] in (NIL, NEW_ABCAST)):
            return NOT_MINE
        if frame[0] == NEW_ABCAST:
            _, sn, rid, prot = frame
            self._on_change_message(sn, rid, prot)
        else:
            _, sn, rid, m, m_size = frame
            self._on_ordinary_message(sn, rid, m, m_size)
        return None

    # Lines 10-16 -------------------------------------------------------- #
    def _on_change_message(self, sn: int, rid: _Rid, prot: str) -> None:
        if self.guard_change_sn and sn != self.seq_number:
            # Deviation (DESIGN.md §4): a stale change message is not
            # synchronised with the current protocol's total order.
            self.counters.incr("stale_changes_discarded")
            if rid in self._pending_changes:
                if self.reissue_policy == "reissue":
                    self.counters.incr("changes_reissued")
                    self._abcast_frame((NEW_ABCAST, self.seq_number, rid, prot), 64)
                else:
                    del self._pending_changes[rid]
                    self.counters.incr("changes_dropped_superseded")
            return
        if self._switching:
            # Only reachable in paper-literal mode (guard off) with
            # concurrent changes: a second change arrives while the
            # previous switch still occupies the CPU.  Serialise it.
            self._deferred_changes.append((sn, rid, prot))
            return
        # line 11
        self.seq_number += 1
        self._pending_changes.pop(rid, None)
        self._switching = True
        self.counters.incr("switches")
        started_at = self.now
        for hook in self.on_switch_start:
            hook(self.stack_id, self.seq_number, prot, started_at)
        # line 12 — from here until the new bind, calls to ``abcast``
        # block in the kernel's queue (weak stack-well-formedness).
        old_module = self.stack.unbind(WellKnown.ABCAST)
        if self.retire_old_after is not None:
            self._retire_pending[old_module.name] = self.now + self.retire_old_after
            self.set_timer(self.retire_old_after, self._retire, old_module.name)
        # Module creation is modelled as *elapsed* time, not CPU burn:
        # the dominant cost in the paper's Java framework is classloading
        # and allocation, during which the event loop keeps serving the
        # still-running old protocol.  This is what lets calls actually
        # reach the unbound service and block (weak well-formedness).
        if self.creation_cost > 0:
            self._switch_pending = (prot, started_at)
            self.set_timer(self.creation_cost, self._complete_switch, prot, started_at)
        else:
            self._complete_switch(prot, started_at)

    def on_restart(self) -> None:
        """Resume an interrupted switch and lost retirements (crash-recovery).

        A crash between ``unbind`` and the creation-timer completion
        would otherwise leave ``abcast`` unbound forever on the recovered
        stack: the creation timer died with the old incarnation while
        ``_switching`` stayed true, so every abcast call blocks
        permanently.  Module creation restarts from scratch in the new
        incarnation (the classloading work is lost with the crash).
        """
        if self._switch_pending is not None:
            prot, started_at = self._switch_pending
            self.set_timer(self.creation_cost, self._complete_switch, prot, started_at)
        for module_name, due in sorted(self._retire_pending.items()):
            self.set_timer(max(0.0, due - self.now), self._retire, module_name)

    def _complete_switch(self, prot: str, started_at: float) -> None:
        self._switch_pending = None
        # lines 13-14 (+ 22-28 via the registry): create and bind the new
        # protocol module under a fresh incarnation tag agreed via the
        # totally-ordered seq_number.
        tag = f"{prot}/v{self.seq_number}"
        self.registry.create_module(
            self.stack, prot, bind=True, factory_kwargs={"instance_tag": tag}
        )
        self.current_protocol = prot
        # lines 15-16 — re-issue everything not yet rAdelivered that was
        # issued under an older protocol version (see the ``undelivered``
        # docstring for why gap-issued messages are skipped).
        for rid, (m, m_size, issued_sn) in list(self.undelivered.items()):
            if issued_sn >= self.seq_number:
                continue
            self.counters.incr("reissues")
            self.undelivered[rid] = (m, m_size, self.seq_number)
            self._abcast_frame((NIL, self.seq_number, rid, m, m_size), m_size)
        self._switching = False
        for hook in self.on_switch_complete:
            hook(self.stack_id, self.seq_number, prot, self.now - started_at)
        if self._deferred_changes:
            sn, rid, prot2 = self._deferred_changes.pop(0)
            self._on_change_message(sn, rid, prot2)

    # Lines 17-21 -------------------------------------------------------- #
    def _on_ordinary_message(self, sn: int, rid: _Rid, m: Any, m_size: int) -> None:
        if sn != self.seq_number:  # line 18
            self.counters.incr("stale_messages_discarded")
            return
        if rid in self.undelivered:  # lines 19-20
            del self.undelivered[rid]
        if self.dedup_deliveries:
            if rid in self._delivered_rids:
                self.counters.incr("dedup_suppressed")
                return
            self._delivered_rids.add(rid)
        self.counters.incr("radelivers")
        # line 21 — rAdeliver(m)
        self.respond(WellKnown.R_ABCAST, "adeliver", rid[0], m, m_size)

    def _retire(self, module_name: str) -> None:
        """Reclaim a long-unbound old protocol module (see constructor)."""
        self._retire_pending.pop(module_name, None)
        if module_name in self.stack.modules:
            bound = self.stack.bound_module(WellKnown.ABCAST)
            if bound is not None and bound.name == module_name:
                return  # it was re-bound meanwhile; never remove the active one
            self.stack.remove_module(module_name)
            self.counters.incr("retired_modules")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        return {
            "seq_number": self.seq_number,
            "current_protocol": self.current_protocol,
            "undelivered": len(self.undelivered),
            "pending_changes": len(self._pending_changes),
            "switching": self._switching,
        }

    @property
    def undelivered_count(self) -> int:
        """Messages rABcast here and not yet rAdelivered here."""
        return len(self.undelivered)
