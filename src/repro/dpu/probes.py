"""Delivery logging: the observation layer for the ABcast property checkers.

A :class:`DeliveryLog` is shared across the system; each stack hosts one
:class:`AbcastProbeModule` that records every Adelivery of the observed
service in arrival order.  Senders register their sends with
:meth:`DeliveryLog.note_send`.  Message identity is the application-level
payload key: the workload generator stamps every payload with a unique
``("wl", stack, seq)`` key, so identity survives replacement re-issues
(the same key may legitimately travel twice on the wire, but must be
Adelivered exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..kernel.module import Module
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Time

__all__ = ["DeliveryLog", "AbcastProbeModule", "payload_key"]


def payload_key(payload: Any) -> Hashable:
    """The identity of an application payload.

    Payloads produced by the library's workload generator are tuples whose
    first element is a unique key; anything else is its own identity
    (must then be hashable and unique per ABcast call for the checkers to
    be meaningful).
    """
    if isinstance(payload, tuple) and len(payload) >= 1:
        return payload[0]
    return payload


@dataclass
class DeliveryLog:
    """Sends and per-stack delivery sequences of one observed service."""

    #: key -> (sender stack, send time)
    sends: Dict[Hashable, Tuple[int, Time]] = field(default_factory=dict)
    #: stack -> [(key, deliver time), ...] in local delivery order
    deliveries: Dict[int, List[Tuple[Hashable, Time]]] = field(default_factory=dict)
    #: Hooks invoked as ``hook(key, stack_id, time)`` on every delivery
    #: (the scenario engine's switch-after-N-messages trigger feeds on this).
    on_delivery: List[Callable[[Hashable, int, Time], None]] = field(
        default_factory=list
    )

    def note_send(self, key: Hashable, stack_id: int, time: Time) -> None:
        """Record that *stack_id* ABcast message *key* at *time*."""
        if key in self.sends:
            raise ValueError(f"duplicate send key {key!r}: keys must be unique")
        self.sends[key] = (stack_id, time)

    def note_delivery(self, key: Hashable, stack_id: int, time: Time) -> None:
        """Record that *stack_id* Adelivered message *key* at *time*."""
        self.deliveries.setdefault(stack_id, []).append((key, time))
        if self.on_delivery:
            for hook in list(self.on_delivery):
                hook(key, stack_id, time)

    def delivered_count(self, stack_id: int) -> int:
        """Number of deliveries recorded at *stack_id* (incl. duplicates)."""
        return len(self.deliveries.get(stack_id, []))

    # Convenience views ------------------------------------------------- #
    def delivery_sequence(self, stack_id: int) -> List[Hashable]:
        """Keys Adelivered by *stack_id*, in order."""
        return [k for k, _t in self.deliveries.get(stack_id, [])]

    def delivered_set(self, stack_id: int) -> set:
        """Set of keys Adelivered by *stack_id*."""
        return set(self.delivery_sequence(stack_id))

    def delivery_times(self, key: Hashable) -> Dict[int, Time]:
        """``stack -> delivery time`` for one message key."""
        out: Dict[int, Time] = {}
        for stack_id, seq in self.deliveries.items():
            for k, t in seq:
                if k == key and stack_id not in out:
                    out[stack_id] = t
        return out


def is_workload_key(key: Hashable) -> bool:
    """Whether *key* identifies a workload-generator message.

    Experiments track only these: control traffic multiplexed onto the
    same abcast service (e.g. group-membership operations) has
    non-unique keys and is checked by its own consumer-level tests.
    """
    return isinstance(key, tuple) and len(key) == 3 and key[0] == "wl"


class AbcastProbeModule(Module):
    """Records every Adelivery of *service* on its stack into a shared log."""

    PROTOCOL = "abcast-probe"

    def __init__(
        self,
        stack: Stack,
        log: DeliveryLog,
        service: str = WellKnown.R_ABCAST,
        key_fn: Callable[[Any], Hashable] = payload_key,
        key_filter: Optional[Callable[[Hashable], bool]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name, provides=(), requires=(service,))
        self.log = log
        self.key_fn = key_fn
        self.key_filter = key_filter
        self.subscribe(service, "adeliver", self._on_adeliver)

    def _on_adeliver(self, origin: int, payload: Any, size_bytes: int) -> None:
        key = self.key_fn(payload)
        if self.key_filter is not None and not self.key_filter(key):
            return
        self.log.note_delivery(key, self.stack_id, self.now)
