"""Dynamic replacement of consensus protocols (the paper's future work).

Section 7: "We have actually already designed an algorithm to replace
consensus protocols [16], another building block of our group
communication middleware."  This module implements that extension in the
same structural style as Algorithm 1 — an indirection module providing
``r-consensus`` and requiring ``consensus`` — with the switch point agreed
through the consensus service itself:

* every proposal is wrapped as ``(value, change-request-or-None)``; a
  stack with a pending ``changeConsensus(prot)`` request piggybacks it on
  each proposal until some decision carries it;
* consensus instances are decided uniformly, so *the decision of instance
  k carrying a change request* is the agreed switch point: every stack
  installs the new consensus module when it learns that decision, and
  routes instances *after k in the same namespace* to it;
* in-flight instances at or before the switch point finish on the old
  module — unbound modules keep responding (paper, Section 2), so nothing
  is lost.

Scope restriction (documented, enforced by the experiments): routing is
**per instance namespace** — the sequential instance stream of one
consumer (e.g. one atomic broadcast incarnation).  A namespace first seen
locally is pinned to the newest locally-installed version; replacing
consensus while an *abcast* replacement is concurrently creating a new
namespace can therefore race.  The library's experiments replace one
layer at a time, which is also the only scenario the paper's future-work
sketch contemplates.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..errors import ReplacementError
from ..kernel.module import Module, NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["ReplConsensusModule"]

_WRAP = "rc"
#: Extra bytes the wrapper adds to each proposal.
_RC_OVERHEAD = 24

#: A change request: (unique id, protocol name).
_Change = Tuple[Tuple[int, int], str]


class ReplConsensusModule(Module):
    """``Repl`` dedicated to the consensus service.

    Service vocabulary (service ``r-consensus``):

    * call ``propose(instance_key, value, size_bytes)``;
    * call ``change_protocol(prot_name)``;
    * response ``decide(instance_key, value, size_bytes)``;
    * query ``status()``.

    ``instance_key`` must be ``(namespace, k)`` with sequential integer
    ``k`` per namespace — the shape produced by
    :class:`~repro.abcast.ct_abcast.CtAbcastModule`.
    """

    PROVIDES = (WellKnown.R_CONSENSUS,)
    REQUIRES = (WellKnown.CONSENSUS,)
    PROTOCOL = "repl-consensus"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        initial_protocol: str,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.registry = registry
        self.counters = Counter()
        self.version = 0
        self.current_protocol = initial_protocol
        initial = stack.bound_module(WellKnown.CONSENSUS)
        if initial is None:
            raise ReplacementError(
                f"stack {stack.stack_id}: install the initial consensus module "
                f"before the r-consensus indirection"
            )
        #: channel -> consensus module object (old versions stay reachable).
        #: Channels are *agreed* identifiers: the initial module uses its
        #: own channel; replacement channels are derived from the decided
        #: switch point, so they match across stacks by construction.
        self._channels: Dict[str, Module] = {getattr(initial, "channel", "0"): initial}
        #: namespace -> channel pinned at first local propose.
        self._pin: Dict[Hashable, str] = {}
        #: namespace -> [(k_switch, channel, protocol)], appended as
        #: decided; sorted by k at routing time.
        self._switch_points: Dict[Hashable, List[Tuple[int, str, str]]] = {}
        self._bound_channel: str = getattr(initial, "channel", "0")
        self._next_rid = 0
        self._pending_changes: List[_Change] = []
        self._applied_rids: set = set()
        self._decided_keys: set = set()

        self.export_call(WellKnown.R_CONSENSUS, "propose", self._propose)
        self.export_call(WellKnown.R_CONSENSUS, "change_protocol", self._change)
        self.export_query(WellKnown.R_CONSENSUS, "status", self._status)
        self.subscribe(WellKnown.CONSENSUS, "decide", self._on_decide)

    # ------------------------------------------------------------------ #
    # changeConsensus(prot)
    # ------------------------------------------------------------------ #
    def _change(self, prot: str) -> None:
        self.registry.info(prot)  # fail fast on unknown protocols
        rid = (self.stack_id, self._next_rid)
        self._next_rid += 1
        self._pending_changes.append((rid, prot))
        self.counters.incr("change_requests")
        # No message is sent here: the request rides the next proposals.

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route(self, instance_key: Any) -> Module:
        namespace, k = instance_key
        channel = self._pin.setdefault(namespace, self._bound_channel)
        for k_switch, new_channel, _prot in sorted(
            self._switch_points.get(namespace, [])
        ):
            if k > k_switch:
                channel = new_channel
        return self._channels[channel]

    def _propose(self, instance_key: Any, value: Any, size_bytes: int) -> None:
        change = self._pending_changes[0] if self._pending_changes else None
        wrapped = (_WRAP, value, change)
        module = self._route(instance_key)
        self.counters.incr("proposals_forwarded")
        handler = module.call_handler(WellKnown.CONSENSUS, "propose")
        # Old versions are unbound, so the call is routed directly to the
        # owning module object — the same privilege the paper's Repl uses
        # when it binds the module it just created.
        handler(instance_key, wrapped, size_bytes + _RC_OVERHEAD)

    # ------------------------------------------------------------------ #
    # Decisions: unwrap, forward, apply switch points
    # ------------------------------------------------------------------ #
    def _on_decide(self, instance_key: Any, value: Any, size_bytes: int):
        if not (isinstance(value, tuple) and len(value) == 3 and value[0] == _WRAP):
            return NOT_MINE
        if instance_key in self._decided_keys:
            return None  # duplicate across versions (split-race protection)
        self._decided_keys.add(instance_key)
        _, inner, change = value
        self.counters.incr("decisions_forwarded")
        self.respond(
            WellKnown.R_CONSENSUS, "decide", instance_key, inner, size_bytes
        )
        if change is not None:
            self._apply_change(instance_key, change)
        return None

    def _apply_change(self, instance_key: Any, change: _Change) -> None:
        rid, prot = change
        self._pending_changes = [c for c in self._pending_changes if c[0] != rid]
        if rid in self._applied_rids:
            return
        self._applied_rids.add(rid)
        namespace, k = instance_key
        self.version += 1
        self.counters.incr("switches")
        # The wire channel is derived from the *decided* switch point, so
        # every stack's new module lands on the same channel even if
        # decisions for different instances arrive in different orders.
        channel = f"{namespace}/{k}"
        # Install the new consensus module and bind it; the old module
        # stays in the stack, unbound, to finish its in-flight instances.
        self.stack.unbind(WellKnown.CONSENSUS)
        module = self.registry.create_module(
            self.stack,
            prot,
            bind=True,
            factory_kwargs={"channel": channel},
        )
        self._channels[channel] = module
        self._bound_channel = channel
        self.current_protocol = prot
        self._switch_points.setdefault(namespace, []).append((k, channel, prot))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        return {
            "version": self.version,
            "current_protocol": self.current_protocol,
            "pending_changes": len(self._pending_changes),
            "namespaces": len(self._pin),
        }
