"""Replacement orchestration and measurement.

:class:`ReplacementManager` is the operator-facing API: it finds the
replacement modules across a system's stacks, lets an experiment trigger
``changeABcast`` from any stack at any simulated instant, and measures the
**replacement window** using the paper's own definition (Section 6.2):

    "the replacement starts when any process triggers a replacement and
    finishes when all machines have replaced the old modules by new
    modules."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReplacementError
from ..kernel.service import WellKnown
from ..kernel.system import System
from ..sim.clock import Time
from .repl import ReplAbcastModule

__all__ = ["ReplacementManager", "ReplacementWindow"]


@dataclass
class ReplacementWindow:
    """Measured timeline of one replacement (one protocol version bump)."""

    version: int
    protocol: str
    requested_at: Optional[Time] = None
    #: stack -> instant its switch began (change message Adelivered).
    started: Dict[int, Time] = field(default_factory=dict)
    #: stack -> instant its switch completed (new module bound, reissues out).
    completed: Dict[int, Time] = field(default_factory=dict)

    @property
    def start(self) -> Optional[Time]:
        """Paper definition: when any process triggered the replacement."""
        if self.requested_at is not None:
            return self.requested_at
        return min(self.started.values()) if self.started else None

    @property
    def end(self) -> Optional[Time]:
        """Paper definition: when all machines have replaced their module."""
        return max(self.completed.values()) if self.completed else None

    @property
    def duration(self) -> Optional[Time]:
        """End minus start, once both are known."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def complete_on(self, stacks: List[int]) -> bool:
        """Whether every listed stack finished its switch."""
        return all(s in self.completed for s in stacks)


class ReplacementManager:
    """Triggers and observes dynamic ABcast replacements on a system."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.windows: Dict[int, ReplacementWindow] = {}
        self._repl_modules: Dict[int, ReplAbcastModule] = {}
        for stack in system.stacks:
            module = stack.bound_module(WellKnown.R_ABCAST)
            if isinstance(module, ReplAbcastModule):
                self._repl_modules[stack.stack_id] = module
                module.on_switch_start.append(self._note_start)
                module.on_switch_complete.append(self._note_complete)
        if not self._repl_modules:
            raise ReplacementError(
                "no ReplAbcastModule bound to r-abcast on any stack; "
                "build the system with a replacement layer first"
            )

    # ------------------------------------------------------------------ #
    # Triggering
    # ------------------------------------------------------------------ #
    def request_change(
        self, protocol: str, from_stack: int = 0, at: Optional[Time] = None
    ) -> None:
        """Trigger ``changeABcast(protocol)`` from *from_stack*.

        When *at* is given the request fires at that absolute simulated
        instant (the paper triggers "in the middle of the experiment");
        otherwise it fires now.
        """
        module = self._repl_modules.get(from_stack)
        if module is None:
            raise ReplacementError(f"stack {from_stack} has no replacement module")

        def fire() -> None:
            version = self._expected_version()
            window = self.windows.setdefault(
                version, ReplacementWindow(version=version, protocol=protocol)
            )
            if window.requested_at is None:
                window.requested_at = self.system.sim.now
            module.call(WellKnown.R_ABCAST, "change_protocol", protocol)

        if at is None:
            fire()
        else:
            self.system.sim.schedule_at(at, fire)

    def _expected_version(self) -> int:
        # The next version is one past the highest seq_number any stack
        # has reached (concurrent requests may share a window; the hooks
        # fix up per-version bookkeeping as switches actually happen).
        return 1 + max(m.seq_number for m in self._repl_modules.values())

    # ------------------------------------------------------------------ #
    # Hook plumbing
    # ------------------------------------------------------------------ #
    def _note_start(self, stack_id: int, version: int, prot: str, at: Time) -> None:
        window = self.windows.setdefault(
            version, ReplacementWindow(version=version, protocol=prot)
        )
        window.started.setdefault(stack_id, at)

    def _note_complete(self, stack_id: int, version: int, prot: str, duration: Time) -> None:
        window = self.windows.setdefault(
            version, ReplacementWindow(version=version, protocol=prot)
        )
        window.completed.setdefault(stack_id, self.system.sim.now)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def window(self, version: int) -> ReplacementWindow:
        """The measured window of protocol *version* (KeyError if unknown)."""
        return self.windows[version]

    def replacement_complete(self, version: int) -> bool:
        """Whether every non-crashed stack finished switching to *version*."""
        window = self.windows.get(version)
        if window is None:
            return False
        return window.complete_on(
            [s for s in self._repl_modules if not self.system.machine(s).crashed]
        )

    def current_protocols(self) -> Dict[int, str]:
        """``stack -> currently bound protocol name`` snapshot."""
        return {
            sid: m.current_protocol for sid, m in self._repl_modules.items()
        }

    def module(self, stack_id: int) -> ReplAbcastModule:
        """The replacement module of *stack_id*."""
        return self._repl_modules[stack_id]
