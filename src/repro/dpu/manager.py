"""Replacement orchestration and measurement.

:class:`ReplacementManager` is the operator-facing API: it finds the
replacement modules across a system's stacks, lets an experiment trigger
``changeABcast`` from any stack at any simulated instant, and measures the
**replacement window** using the paper's own definition (Section 6.2):

    "the replacement starts when any process triggers a replacement and
    finishes when all machines have replaced the old modules by new
    modules."

Pipelined replacements make the windows a **version chain**: each
:class:`ReplacementWindow` links to its predecessor, exposes how long the
two overlapped (a second change issued before the first window closed),
and the manager aggregates chain-level metrics — convergence instant,
convergence time, per-stack protocol trajectories — plus version-phase
hooks (``on_version_started`` / ``on_version_first_complete`` /
``on_version_closed``) that chained switch triggers and experiments hang
off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReplacementError
from ..kernel.service import WellKnown
from ..kernel.system import System
from ..sim.clock import Time
from .repl import ReplAbcastModule

__all__ = ["ReplacementManager", "ReplacementWindow"]


@dataclass
class ReplacementWindow:
    """Measured timeline of one replacement (one protocol version bump)."""

    version: int
    protocol: str
    requested_at: Optional[Time] = None
    #: stack -> instant its switch began (change message Adelivered).
    started: Dict[int, Time] = field(default_factory=dict)
    #: stack -> instant its switch completed (new module bound, reissues out).
    completed: Dict[int, Time] = field(default_factory=dict)
    #: The previous version's window — the chain linkage.
    prev: Optional["ReplacementWindow"] = field(default=None, repr=False)

    @property
    def start(self) -> Optional[Time]:
        """Paper definition: when any process triggered the replacement."""
        if self.requested_at is not None:
            return self.requested_at
        return min(self.started.values()) if self.started else None

    @property
    def end(self) -> Optional[Time]:
        """Paper definition: when all machines have replaced their module."""
        return max(self.completed.values()) if self.completed else None

    @property
    def duration(self) -> Optional[Time]:
        """End minus start, once both are known."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    @property
    def overlap_with_prev(self) -> Optional[Time]:
        """Seconds both this and the previous version's window were open.

        The concurrent-open interval ``[self.start, min(self.end,
        prev.end))`` — positive exactly when the replacement was
        *pipelined*: this version was requested/started before the
        previous window closed somewhere in the group.  Clamped to this
        window's own end, so a straggler closing the *previous* window
        late (crash-recovery) cannot overstate the overlap.  ``0.0`` for
        back-to-back chains, ``None`` while either window is still
        unmeasured (or for version 1).
        """
        if self.prev is None or self.start is None:
            return None
        prev_end = self.prev.end
        if prev_end is None:
            return None
        end = self.end
        closed_both = prev_end if end is None else min(prev_end, end)
        return max(0.0, closed_both - self.start)

    def complete_on(self, stacks: List[int]) -> bool:
        """Whether every listed stack finished its switch."""
        return all(s in self.completed for s in stacks)


class ReplacementManager:
    """Triggers and observes dynamic ABcast replacements on a system."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.windows: Dict[int, ReplacementWindow] = {}
        self._repl_modules: Dict[int, ReplAbcastModule] = {}
        #: Fired once per version, at the first stack's switch start:
        #: ``hook(version, protocol, stack_id, time)``.
        self.on_version_started: List[Callable[[int, str, int, Time], None]] = []
        #: Fired once per version, at the first stack's completion:
        #: ``hook(version, protocol, stack_id, time)``.
        self.on_version_first_complete: List[Callable[[int, str, int, Time], None]] = []
        #: Fired once per version, when every non-crashed stack completed
        #: (the window closed): ``hook(version, protocol, time)``.
        self.on_version_closed: List[Callable[[int, str, Time], None]] = []
        self._started_announced: set = set()
        self._first_complete_announced: set = set()
        self._closed_announced: set = set()
        for stack in system.stacks:
            module = stack.bound_module(WellKnown.R_ABCAST)
            if isinstance(module, ReplAbcastModule):
                self._repl_modules[stack.stack_id] = module
                module.on_switch_start.append(self._note_start)
                module.on_switch_complete.append(self._note_complete)
                # A window can also close when its last straggler
                # *crashes* (replacement_complete quantifies over
                # non-crashed stacks only) — without this hook a
                # crash-closed window would never announce.
                stack.machine.on_crash.append(self._on_machine_crash)
        if not self._repl_modules:
            raise ReplacementError(
                "no ReplAbcastModule bound to r-abcast on any stack; "
                "build the system with a replacement layer first"
            )

    # ------------------------------------------------------------------ #
    # Triggering
    # ------------------------------------------------------------------ #
    def request_change(
        self, protocol: str, from_stack: int = 0, at: Optional[Time] = None
    ) -> None:
        """Trigger ``changeABcast(protocol)`` from *from_stack*.

        When *at* is given the request fires at that absolute simulated
        instant (the paper triggers "in the middle of the experiment");
        otherwise it fires now.
        """
        module = self._repl_modules.get(from_stack)
        if module is None:
            raise ReplacementError(f"stack {from_stack} has no replacement module")

        def fire() -> None:
            version = self._expected_version()
            window = self._window_for(version, protocol)
            if window.requested_at is None:
                window.requested_at = self.system.sim.now
            module.call(WellKnown.R_ABCAST, "change_protocol", protocol)

        if at is None:
            fire()
        else:
            self.system.sim.schedule_at(at, fire)

    def _expected_version(self) -> int:
        # The next version is one past the highest seq_number any stack
        # has reached (concurrent requests may share a window; the hooks
        # fix up per-version bookkeeping as switches actually happen).
        return 1 + max(m.seq_number for m in self._repl_modules.values())

    def _window_for(self, version: int, protocol: str) -> ReplacementWindow:
        """The window of *version*, created (and chain-linked) on demand."""
        window = self.windows.get(version)
        if window is None:
            window = ReplacementWindow(version=version, protocol=protocol)
            window.prev = self.windows.get(version - 1)
            self.windows[version] = window
            later = self.windows.get(version + 1)
            if later is not None and later.prev is None:
                later.prev = window
        return window

    # ------------------------------------------------------------------ #
    # Hook plumbing
    # ------------------------------------------------------------------ #
    def _note_start(self, stack_id: int, version: int, prot: str, at: Time) -> None:
        window = self._window_for(version, prot)
        window.started.setdefault(stack_id, at)
        if version not in self._started_announced:
            self._started_announced.add(version)
            for hook in list(self.on_version_started):
                hook(version, prot, stack_id, at)

    def _note_complete(self, stack_id: int, version: int, prot: str, duration: Time) -> None:
        now = self.system.sim.now
        window = self._window_for(version, prot)
        window.completed.setdefault(stack_id, now)
        if version not in self._first_complete_announced:
            self._first_complete_announced.add(version)
            for hook in list(self.on_version_first_complete):
                hook(version, prot, stack_id, now)
        self._announce_closed(version)

    def _announce_closed(self, version: int) -> None:
        """Fire ``on_version_closed`` once, the moment *version* closes.

        A window only closes over a non-empty alive set: during a
        transient full outage ``replacement_complete`` would be vacuously
        true for every window, and announcing then would consume one-shot
        chained triggers with nobody able to act on them.
        """
        if version in self._closed_announced:
            return
        alive = [
            s for s in self._repl_modules if not self.system.machine(s).crashed
        ]
        if not alive or not self.windows[version].complete_on(alive):
            return
        self._closed_announced.add(version)
        window = self.windows[version]
        now = self.system.sim.now
        for hook in list(self.on_version_closed):
            hook(version, window.protocol, now)

    def _on_machine_crash(self, time: Time) -> None:
        """A crash can close any window whose only stragglers just died."""
        for version in sorted(self.windows):
            self._announce_closed(version)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def window(self, version: int) -> ReplacementWindow:
        """The measured window of protocol *version* (KeyError if unknown)."""
        return self.windows[version]

    def replacement_complete(self, version: int) -> bool:
        """Whether every non-crashed stack finished switching to *version*."""
        window = self.windows.get(version)
        if window is None:
            return False
        return window.complete_on(
            [s for s in self._repl_modules if not self.system.machine(s).crashed]
        )

    def current_protocols(self) -> Dict[int, str]:
        """``stack -> currently bound protocol name`` snapshot."""
        return {
            sid: m.current_protocol for sid, m in self._repl_modules.items()
        }

    def module(self, stack_id: int) -> ReplAbcastModule:
        """The replacement module of *stack_id*."""
        return self._repl_modules[stack_id]

    # ------------------------------------------------------------------ #
    # Chain metrics
    # ------------------------------------------------------------------ #
    def protocol_trajectories(self) -> Dict[int, List[Tuple[int, str]]]:
        """Per stack, the ``(version, protocol)`` chain bound so far.

        Derived from each module's own switch chain (the single source of
        truth), initial protocol first.
        """
        return {
            sid: module.protocol_trajectory()
            for sid, module in self._repl_modules.items()
        }

    def stale_classification(self) -> Dict[str, int]:
        """Aggregated stale-discard classification across all stacks.

        ``gap=k`` counts ordinary messages discarded *k* versions behind
        the receiver (Algorithm 1, line 18); pipelined chains produce
        ``k >= 2``, paper-literal anomalies can produce ``k < 0`` (frames
        from the future of a stack that skipped a stale change).
        """
        out: Dict[str, int] = {}
        for sid in sorted(self._repl_modules):
            for gap, count in self._repl_modules[sid].stale_gaps.items():
                key = f"gap={gap}"
                out[key] = out.get(key, 0) + count
        return out

    def chain_metrics(self) -> Dict[str, Any]:
        """Aggregate metrics of the whole replacement chain.

        Returns a deterministic dict with the chain's version list, the
        first trigger and final convergence instants, the convergence
        time (first trigger → last window close), per-version overlap
        durations, and whether any two consecutive windows actually
        overlapped (``pipelined``).
        """
        versions = sorted(self.windows)
        overlaps: Dict[int, Optional[Time]] = {
            v: self.windows[v].overlap_with_prev for v in versions
        }
        starts = [w.start for w in self.windows.values() if w.start is not None]
        ends = [w.end for w in self.windows.values()]
        converged_at = None if (not ends or any(e is None for e in ends)) else max(ends)
        chain_started_at = min(starts) if starts else None
        convergence_time = (
            converged_at - chain_started_at
            if converged_at is not None and chain_started_at is not None
            else None
        )
        return {
            "versions": versions,
            "chain_started_at": chain_started_at,
            "converged_at": converged_at,
            "convergence_time": convergence_time,
            "overlap_by_version": {str(v): overlaps[v] for v in versions},
            "pipelined": any((o or 0.0) > 0.0 for o in overlaps.values()),
        }
