"""Checkers for the atomic broadcast properties *across replacements*.

Section 5.2.2 of the paper proves that Algorithm 1 preserves the four
ABcast properties end-to-end (at the ``r-abcast`` level) assuming each
installed protocol satisfies them.  These checkers verify exactly that on
a recorded :class:`~repro.dpu.probes.DeliveryLog`:

* **validity** — a message ABcast by a correct (never-crashed) stack is
  eventually Adelivered by that stack;
* **uniform agreement** — a message Adelivered by *any* stack (even one
  that crashed later) is Adelivered by every correct stack;
* **uniform integrity** — each stack Adelivers a message at most once,
  and only if it was previously ABcast;
* **uniform total order** — the delivery sequences of any two stacks,
  restricted to the messages they both delivered, are identical.

The total-order formulation via restriction-equality is equivalent to the
pairwise definition: if i delivers m before m' and j delivers both, then j
must deliver them in the same order — quantified over all pairs.

Finite-trace caveat: "eventually" obligations near the end of a run may be
in flight; run experiments to quiescence or pass ``in_flight_ok`` keys to
exempt (the property tests drain the system, so they check strictly).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set

from ..errors import PropertyViolation
from ..sim.clock import Time
from .probes import DeliveryLog

__all__ = [
    "check_validity",
    "check_uniform_agreement",
    "check_uniform_integrity",
    "check_uniform_total_order",
    "check_recovery_liveness",
    "check_corruption_containment",
    "chain_agreement_violations",
    "check_all_abcast_properties",
    "assert_abcast_properties",
    "is_post_rejoin_send",
]


def is_post_rejoin_send(
    sender: int, t_send: Time, rejoined: Dict[int, Time]
) -> bool:
    """Whether a send happened after *sender*'s own re-join completion.

    The single definition of the exemption-narrowing rule: a send by an
    ever-crashed stack counts as a correct-process send again exactly
    when the sender completed its re-join handshake before the send.
    The scenario engine (in-flight exemptions), the quiescence drain and
    :func:`check_recovery_liveness` all consult this predicate, so the
    three can never drift apart.
    """
    t_rejoin = rejoined.get(sender)
    return t_rejoin is not None and t_send > t_rejoin


def check_validity(
    log: DeliveryLog,
    crashed: Dict[int, Time],
    in_flight_ok: Optional[Set[Hashable]] = None,
) -> List[str]:
    """Correct senders must deliver their own messages."""
    exempt = in_flight_ok or set()
    violations = []
    for key, (sender, t_send) in log.sends.items():
        if sender in crashed or key in exempt:
            continue
        if key not in log.delivered_set(sender):
            violations.append(
                f"message {key!r} ABcast by correct stack {sender} at "
                f"t={t_send:.6f} was never Adelivered by its sender"
            )
    return violations


def check_uniform_agreement(
    log: DeliveryLog,
    crashed: Dict[int, Time],
    stacks: Sequence[int],
    in_flight_ok: Optional[Set[Hashable]] = None,
) -> List[str]:
    """Anything delivered anywhere must be delivered at every correct stack."""
    exempt = in_flight_ok or set()
    delivered_anywhere: Set[Hashable] = set()
    for stack_id in stacks:
        delivered_anywhere |= log.delivered_set(stack_id)
    violations = []
    for stack_id in stacks:
        if stack_id in crashed:
            continue
        missing = delivered_anywhere - log.delivered_set(stack_id) - exempt
        for key in sorted(missing, key=repr):
            violations.append(
                f"message {key!r} was Adelivered somewhere but never by "
                f"correct stack {stack_id}"
            )
    return violations


def check_uniform_integrity(log: DeliveryLog, stacks: Sequence[int]) -> List[str]:
    """At-most-once per stack; only previously-ABcast messages."""
    violations = []
    for stack_id in stacks:
        seen: Set[Hashable] = set()
        for key in log.delivery_sequence(stack_id):
            if key in seen:
                violations.append(
                    f"stack {stack_id} Adelivered message {key!r} more than once"
                )
            seen.add(key)
            if key not in log.sends:
                violations.append(
                    f"stack {stack_id} Adelivered message {key!r} that was never ABcast"
                )
    return violations


def check_uniform_total_order(log: DeliveryLog, stacks: Sequence[int]) -> List[str]:
    """Pairwise restriction-equality of delivery sequences."""
    sequences = {s: log.delivery_sequence(s) for s in stacks}
    sets = {s: set(seq) for s, seq in sequences.items()}
    violations = []
    ordered = sorted(stacks)
    for idx, i in enumerate(ordered):
        for j in ordered[idx + 1:]:
            common = sets[i] & sets[j]
            if not common:
                continue
            seq_i = [k for k in sequences[i] if k in common]
            seq_j = [k for k in sequences[j] if k in common]
            if seq_i != seq_j:
                # Report the first divergence point, which is the most
                # useful debugging artefact.
                for a, b in zip(seq_i, seq_j):
                    if a != b:
                        violations.append(
                            f"stacks {i} and {j} diverge: {i} delivered {a!r} "
                            f"where {j} delivered {b!r}"
                        )
                        break
                else:  # pragma: no cover - same prefix, different length is
                    violations.append(  # impossible on equal common sets
                        f"stacks {i} and {j} delivered common messages in "
                        f"different multiplicity"
                    )
    return violations


def check_recovery_liveness(
    log: DeliveryLog,
    rejoined: Dict[int, Time],
    crashed: Dict[int, Time],
    in_flight_ok: Optional[Set[Hashable]] = None,
) -> List[str]:
    """Recovered-and-rejoined stacks honour liveness again (narrowed exemption).

    The plain checkers exempt an ever-crashed stack from every
    "eventually delivers" obligation, which is sound but hollow in
    crash-recovery runs: a machine that restarted, re-armed its failure
    detector and re-joined through the GM state transfer is a correct
    process again from its re-join instant on.  This checker narrows the
    exemption back: for each stack *r* with re-join completion time
    ``rejoined[r]``, every message ABcast after that instant by a correct
    sender — or by a rejoined sender after *its own* re-join — must be
    Adelivered by *r*.  (Total order and integrity never exempted *r*;
    agreement obligations of the *other* stacks towards *r*'s
    post-re-join sends are restored by the engine, which drops those
    sends from the ``in_flight_ok`` exemption set.)
    """
    exempt = in_flight_ok or set()
    violations = []
    for r, t_rejoin in sorted(rejoined.items()):
        delivered = log.delivered_set(r)
        missing = []
        for key, (sender, t_send) in log.sends.items():
            if t_send <= t_rejoin or key in exempt:
                continue
            if sender in crashed and not is_post_rejoin_send(sender, t_send, rejoined):
                continue  # the sender itself stayed exempt for this send
            if key not in delivered:
                missing.append((t_send, key, sender))
        for t_send, key, sender in sorted(missing, key=lambda m: (m[0], repr(m[1]))):
            violations.append(
                f"message {key!r} ABcast by stack {sender} at t={t_send:.6f} "
                f"was never Adelivered by stack {r}, which re-joined at "
                f"t={t_rejoin:.6f}"
            )
    return violations


def check_corruption_containment(
    network_stats: Dict[str, int], checksum: bool = True
) -> List[str]:
    """**Corruption containment**: wire corruption never crosses into a host.

    *network_stats* is the :meth:`repro.net.network.SimNetwork.stats`
    snapshot.  The two directions, matching the network's corruption
    model:

    * **tolerated** — with the receiver-NIC *checksum* on, every
      corrupted frame must have been detected and dropped below the
      protocol stack (the reliable layers then retransmit, so the ABcast
      properties are unaffected).  A corrupted frame that was delivered
      anyway is a containment violation.
    * **flagged** — with the checksum off, any corrupted frame that was
      delivered reached a host unprotected; the run is flagged even if
      the stack happened to survive (the doorway's defensive parsing is
      best-effort, not a soundness argument).
    """
    violations: List[str] = []
    delivered = network_stats.get("corrupted_delivered", 0)
    if checksum and delivered:
        violations.append(
            f"{delivered} corrupted datagram(s) slipped past the receiver "
            f"checksum and were delivered"
        )
    if not checksum and delivered:
        violations.append(
            f"{delivered} corrupted datagram(s) were delivered to hosts "
            f"with no checksum protection (corruption not contained)"
        )
    return violations


def _is_subsequence(short: Sequence[str], long: Sequence[str]) -> bool:
    """Whether *short* appears in *long* in order (gaps allowed)."""
    it = iter(long)
    return all(any(x == y for y in it) for x in short)


def chain_agreement_violations(
    chains: Dict[int, Sequence[str]],
    crashed: Optional[Dict[int, Time]] = None,
) -> List[str]:
    """**Chain agreement**: every stack traverses the identical protocol
    chain in the identical order.

    *chains* maps each stack to the ordered list of protocols it bound to
    the replaced service (initial protocol first, then one entry per
    completed switch) — see
    :func:`repro.dpu.properties.protocol_chains` for the trace-side
    extractor.  The property quantifies like the paper's: every
    never-crashed stack must traverse exactly the same chain; an
    ever-crashed stack may have *missed* versions (it died, or died and
    recovered after a window passed it by), so it is held to a weaker but
    still order-sensitive rule — its chain must be a subsequence of the
    correct stacks' common chain.  Any divergence in order, or any
    protocol a correct stack never bound, is a violation: under pipelined
    replacements this is exactly the property the ``sn`` guard buys
    (stale changes applied at unsynchronised points make two stacks walk
    *different* chains).
    """
    crashed = crashed or {}
    correct = {s: list(chains[s]) for s in sorted(chains) if s not in crashed}
    violations: List[str] = []
    reference: Optional[List[str]] = None
    ref_stack: Optional[int] = None
    for s, chain in correct.items():
        if reference is None:
            reference, ref_stack = chain, s
            continue
        if chain != reference:
            violations.append(
                f"stacks {ref_stack} and {s} traversed different protocol "
                f"chains: {reference!r} vs {chain!r}"
            )
    if reference is None:
        return violations  # no correct stack: nothing to anchor the chain
    for s in sorted(chains):
        if s not in crashed:
            continue
        chain = list(chains[s])
        if not _is_subsequence(chain, reference):
            violations.append(
                f"ever-crashed stack {s} traversed {chain!r}, which is not a "
                f"subsequence of the correct chain {reference!r}"
            )
    return violations


def check_all_abcast_properties(
    log: DeliveryLog,
    crashed: Dict[int, Time],
    stacks: Sequence[int],
    in_flight_ok: Optional[Set[Hashable]] = None,
) -> Dict[str, List[str]]:
    """Run all four checkers; returns ``{property: violations}``."""
    return {
        "validity": check_validity(log, crashed, in_flight_ok),
        "uniform agreement": check_uniform_agreement(
            log, crashed, stacks, in_flight_ok
        ),
        "uniform integrity": check_uniform_integrity(log, stacks),
        "uniform total order": check_uniform_total_order(log, stacks),
    }


def assert_abcast_properties(
    log: DeliveryLog,
    crashed: Dict[int, Time],
    stacks: Sequence[int],
    in_flight_ok: Optional[Set[Hashable]] = None,
) -> None:
    """Raise :class:`PropertyViolation` on the first failing property."""
    results = check_all_abcast_properties(log, crashed, stacks, in_flight_ok)
    for prop, violations in results.items():
        if violations:
            preview = "; ".join(violations[:5])
            more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
            raise PropertyViolation(prop, preview + more)
