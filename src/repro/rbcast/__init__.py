"""Uniform reliable broadcast (the R-broadcast primitive inside CT)."""

from .reliable import RBCAST_SERVICE, RbcastModule

__all__ = ["RbcastModule", "RBCAST_SERVICE"]
