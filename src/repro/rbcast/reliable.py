"""Uniform reliable broadcast (eager, relay-on-first-delivery).

Chandra–Toueg consensus R-broadcasts its *decide* messages, and the
consensus-based atomic broadcast R-broadcasts the application payloads it
later orders; this module provides that primitive as the kernel service
``rbcast``:

* call ``broadcast(payload, size_bytes)``;
* response ``deliver(origin, payload, size_bytes)``.

Algorithm (crash-stop, reliable FIFO channels underneath): the origin
sends ``(origin, seq, payload)`` to every process including itself; on
*first* receipt of a given ``(origin, seq)`` a process relays the message
to every other process and then delivers it.  The relay gives the
all-or-nothing guarantee: if any correct process delivers, its relays —
on reliable channels — reach every correct process.

Properties (with crash-stop processes and a majority... no majority is
needed here — any number of crashes):

* validity: a correct origin delivers its own message;
* agreement: if a correct process delivers m, every correct process does;
* integrity: no duplication (``seen`` set), no creation.

Cost: O(n²) datagrams per broadcast — the textbook eager algorithm.  The
paper calls its own prototype "non-optimized"; this matches that spirit
and the measured shapes (and is an explicit knob: ``relay=False`` turns
the module into best-effort broadcast for ablations).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Set, Tuple

from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["RbcastModule", "RBCAST_SERVICE"]

#: Kernel service name (not in :class:`WellKnown`: the paper's Figure 4
#: does not draw it — it is the R-broadcast primitive *inside* CT).
RBCAST_SERVICE = "rbcast"

_TAG = "rbc"
#: Header bytes of one rbcast frame (origin, seq).
_RBC_HEADER = 10


class RbcastModule(Module):
    """Uniform reliable broadcast over RP2P channels."""

    PROVIDES = (RBCAST_SERVICE,)
    REQUIRES = (WellKnown.RP2P,)
    PROTOCOL = "rbcast"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        relay: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        if stack.stack_id not in group:
            raise ValueError(
                f"stack {stack.stack_id} must be a member of its own rbcast group {group!r}"
            )
        self.group: Tuple[int, ...] = tuple(sorted(set(group)))
        self.relay = relay
        self.counters = Counter()
        self._next_seq = 0
        self._seen: Set[Tuple[int, int]] = set()
        self.export_call(RBCAST_SERVICE, "broadcast", self._broadcast)
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)

    # ------------------------------------------------------------------ #
    # Broadcasting
    # ------------------------------------------------------------------ #
    def _broadcast(self, payload: Any, size_bytes: int) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self.counters.incr("broadcasts")
        frame = (_TAG, self.stack_id, seq, payload, size_bytes)
        for dst in self.group:
            self.call(WellKnown.RP2P, "send", dst, frame, size_bytes + _RBC_HEADER)

    # ------------------------------------------------------------------ #
    # Receiving / relaying
    # ------------------------------------------------------------------ #
    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _TAG):
            return NOT_MINE
        _, origin, seq, inner, inner_size = payload
        key = (origin, seq)
        if key in self._seen:
            self.counters.incr("duplicates_suppressed")
            return
        self._seen.add(key)
        if self.relay:
            frame = (_TAG, origin, seq, inner, inner_size)
            for dst in self.group:
                if dst != self.stack_id and dst != origin and dst != src:
                    self.counters.incr("relays")
                    self.call(
                        WellKnown.RP2P, "send", dst, frame, inner_size + _RBC_HEADER
                    )
        self.counters.incr("delivered")
        self.respond(RBCAST_SERVICE, "deliver", origin, inner, inner_size)
