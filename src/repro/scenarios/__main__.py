"""CLI: run fault-injection scenarios and campaigns.

Examples
--------
List everything::

    python -m repro.scenarios --list

Run the CI smoke campaign over 3 seeds and write the JSON report::

    python -m repro.scenarios --campaign smoke --seeds 3 --out smoke.json

Fan the full library over 4 worker processes (reports are byte-identical
to ``--jobs 1``; only the wall-clock changes)::

    python -m repro.scenarios --campaign full --seeds 5 --jobs 4

Run one scenario at one seed::

    python -m repro.scenarios --scenario churn-storm --seed 7

Gate a commit against a stored report (exits 3 on any drift)::

    python -m repro.scenarios --campaign smoke --seeds 3 --compare baseline.json

Exit status is 0 iff no property checker reported a violation (and, with
``--compare``, the report matches the baseline), so the command doubles
as a CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from ..errors import ScenarioError
from ..viz import render_table
from .docgen import update_doc
from .engine import Campaign, CampaignResult, compare_reports, run_campaign
from .library import CAMPAIGNS, SCENARIOS, get_campaign, get_scenario


def _parse_seeds(args: argparse.Namespace) -> List[int]:
    """The seed list: an explicit ``--seed`` or ``range(--seeds)``."""
    if args.seed is not None:
        return [args.seed]
    return list(range(args.seeds))


def _list() -> None:
    """Print the registered scenarios and campaigns as tables."""
    rows = [
        (spec.name, spec.n, spec.duration, len(spec.faults), len(spec.switches),
         spec.description)
        for _name, spec in sorted(SCENARIOS.items())
    ]
    print(render_table(
        ["scenario", "n", "dur [s]", "faults", "switches", "description"],
        rows,
        title="Registered scenarios",
    ))
    rows = [
        (c.name, len(c.scenarios), ", ".join(s.name for s in c.scenarios))
        for _name, c in sorted(CAMPAIGNS.items())
    ]
    print(render_table(
        ["campaign", "runs", "scenarios"],
        rows,
        title="Registered campaigns",
    ))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status (see module doc)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run fault-injection scenario campaigns with property gates.",
    )
    target = parser.add_mutually_exclusive_group()
    target.add_argument("--campaign", help="campaign name (see --list)")
    target.add_argument("--scenario", help="single scenario name (see --list)")
    target.add_argument("--list", action="store_true", dest="list_all",
                        help="list registered scenarios and campaigns")
    target.add_argument("--write-docs", nargs="?", const="docs/scenarios.md",
                        default=None, metavar="PATH",
                        help="regenerate the scenario catalogue tables inside "
                             "PATH (default: docs/scenarios.md) and exit")
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run seeds 0..N-1 (default: 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly this one seed (overrides --seeds)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the (scenario, seed) matrix over N warm "
                             "worker processes (0 = one per CPU; default: 1). "
                             "The report is byte-identical for any N")
    parser.add_argument("--chunk-size", type=int, default=None, metavar="N",
                        help="cells per worker chunk (default: auto — sized "
                             "to amortise IPC). The report is byte-identical "
                             "for any chunk size")
    parser.add_argument("--trace", choices=("structural", "full", "off"),
                        default="structural",
                        help="kernel trace depth per run (default: structural "
                             "— everything the property checkers consume, "
                             "without the per-call firehose; reports are "
                             "byte-identical to --trace full)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (default: stdout only "
                             "prints the summary table)")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report to stdout")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="diff the fresh report against this stored JSON "
                             "report and exit 3 on any drift (campaign reports "
                             "are deterministic, so drift means behaviour "
                             "changed)")
    args = parser.parse_args(argv)

    if args.list_all:
        _list()
        return 0

    if args.write_docs is not None:
        path = pathlib.Path(args.write_docs)
        try:
            changed = update_doc(path)
        except (OSError, ScenarioError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{path}: {'updated' if changed else 'already up to date'}")
        return 0

    seeds = _parse_seeds(args)
    if not seeds:
        parser.error("--seeds must be >= 1")
    try:
        if args.scenario is not None:
            spec = get_scenario(args.scenario)
            campaign = Campaign(name=f"adhoc:{spec.name}", scenarios=(spec,))
        else:
            campaign = get_campaign(args.campaign or "smoke")
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.trace == "off":
        # The trace-backed checkers (stack well-formedness, protocol
        # operationability) are vacuous over an empty trace, and the
        # report does not record the trace depth — say so where the
        # operator will see it rather than gating on blunted verdicts.
        print(
            "warning: --trace off disables the trace-backed property "
            "checkers (their violation lists will be trivially empty)",
            file=sys.stderr,
        )
    result: CampaignResult = run_campaign(
        campaign, seeds=seeds, jobs=args.jobs, trace=args.trace,
        chunk_size=args.chunk_size
    )

    print(render_table(
        ["scenario", "seed", "verdict", "sent", "ordered", "violations"],
        result.summary_rows(),
        title=f"Campaign {result.campaign!r} over seeds {seeds}",
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json() + "\n")
        print(f"report written to {args.out}")
    if args.json:
        print(result.to_json())

    if args.compare:
        try:
            with open(args.compare, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        drift = compare_reports(baseline, result.to_dict())
        if drift:
            for line in drift:
                print(f"DRIFT {line}", file=sys.stderr)
            print(f"{len(drift)} drift(s) against baseline {args.compare}",
                  file=sys.stderr)
            return 3
        print(f"report matches baseline {args.compare}")

    if not result.ok:
        for run in result.results:
            for prop, violations in sorted(run.violations.items()):
                for violation in violations[:3]:
                    print(
                        f"VIOLATION [{run.name} seed={run.seed}] {prop}: {violation}",
                        file=sys.stderr,
                    )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
