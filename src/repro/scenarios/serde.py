"""JSON (de)serialisation of :class:`~repro.scenarios.spec.ScenarioSpec`.

The fuzzer's whole value is a **replayable reproducer**: when a randomly
generated schedule violates a property and the shrinker minimises it, the
result must survive as a plain JSON file that anyone can replay —
``spec_from_json(path.read_text())`` → ``run_scenario(spec, seed)`` —
without the generator, the seed, or this repo's Python objects in the
loop.  So every fault action and switch step serialises to a tagged plain
dict (``{"kind": "Crash", "at": 2.0, "machine": 3}``), and the spec to a
dict of scalars plus those lists.

Round-tripping is exact: ``spec_from_dict(spec_to_dict(s)) == s`` for
every representable spec (specs are frozen dataclasses, so equality is
field-wise), pinned by the serde unit tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from typing import Any, Dict, Type

from ..errors import ScenarioError
from .spec import (
    Churn,
    Crash,
    FaultAction,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    RandomCrashes,
    Recover,
    ScenarioSpec,
)
from .switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
    SwitchStep,
)

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
]

#: Tag -> class for every serialisable fault action and switch step.
_ACTION_KINDS: Dict[str, Type[Any]] = {
    cls.__name__: cls
    for cls in (
        Crash,
        Recover,
        Partition,
        PartitionOneWay,
        Heal,
        ImpairLink,
        LatencySpike,
        Churn,
        RandomCrashes,
        SwitchAt,
        SwitchAfterDeliveries,
        SwitchOnFault,
        SwitchAfterSwitch,
        SwitchIfStalled,
    )
}


def _tagged(obj: Any) -> Dict[str, Any]:
    """One action/step as a plain dict with a ``kind`` tag."""
    out: Dict[str, Any] = {"kind": type(obj).__name__}
    out.update(asdict(obj))
    return out


def _retuple(value: Any) -> Any:
    """JSON lists back to the tuples the frozen dataclasses expect."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


def _untagged(data: Dict[str, Any]) -> Any:
    """Rebuild one action/step from its tagged dict."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _ACTION_KINDS.get(str(kind))
    if cls is None:
        raise ScenarioError(f"unknown fault/switch kind {kind!r} in spec JSON")
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ScenarioError(
            f"unknown field(s) {sorted(unknown)} for {kind} in spec JSON"
        )
    return cls(**{name: _retuple(value) for name, value in payload.items()})


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """A JSON-ready plain dict of *spec* (tuples become lists)."""
    out: Dict[str, Any] = {}
    for f in fields(ScenarioSpec):
        value = getattr(spec, f.name)
        if f.name == "faults":
            out[f.name] = [_tagged(a) for a in value]
        elif f.name == "switches":
            out[f.name] = [_tagged(s) for s in value]
        elif f.name == "expected_faulty":
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`spec_to_dict` output."""
    payload = dict(data)
    known = {f.name for f in fields(ScenarioSpec)}
    unknown = set(payload) - known
    if unknown:
        raise ScenarioError(f"unknown spec field(s) {sorted(unknown)} in JSON")
    faults = tuple(_untagged(a) for a in payload.pop("faults", []))
    switches = tuple(_untagged(s) for s in payload.pop("switches", []))
    expected = tuple(payload.pop("expected_faulty", ()))
    return ScenarioSpec(
        faults=faults, switches=switches, expected_faulty=expected, **payload
    )


def spec_to_json(spec: ScenarioSpec, indent: int = 2) -> str:
    """Deterministic JSON text for *spec* (sorted keys)."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def spec_from_json(text: str) -> ScenarioSpec:
    """Parse a spec from :func:`spec_to_json` text."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ScenarioError(f"spec JSON does not parse: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioError("spec JSON must be an object")
    return spec_from_dict(data)
