"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one adversarial execution: the protocol
stack to build (group size, initial protocol, GM on/off), the workload
shape (rate, payload, jitter, bursts), a **fault schedule** (a tuple of
the fault actions below), and a **switch plan** (see
:mod:`repro.scenarios.switchplan`).  Specs are frozen dataclasses so a
scenario is a value: hashable, comparable, and trivially reproducible —
``run_scenario(spec, seed)`` is a pure function of its arguments.

Fault actions are tiny declarative records; each knows how to schedule
itself on a :class:`~repro.sim.faults.FaultInjector` and which machines
it makes *faulty* (used by the engine to exempt those machines from the
liveness-flavoured property checks, which quantify over correct
processes only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..errors import ScenarioError
from ..experiments.common import PROTOCOL_CT
from ..sim.clock import Duration, Time
from ..sim.faults import FaultInjector
from .switchplan import SwitchStep

__all__ = [
    "Crash",
    "Recover",
    "Partition",
    "PartitionOneWay",
    "Heal",
    "ImpairLink",
    "LatencySpike",
    "Churn",
    "RandomCrashes",
    "FaultAction",
    "ScenarioSpec",
]


# --------------------------------------------------------------------------- #
# Fault actions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Crash:
    """Crash *machine* at instant *at*."""

    at: Time
    machine: int

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.crash_at(self.at, self.machine)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down."""
        return (self.machine,)


@dataclass(frozen=True)
class Recover:
    """Recover *machine* at instant *at* (a new incarnation)."""

    at: Time
    machine: int

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.recover_at(self.at, self.machine)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down."""
        return (self.machine,)


@dataclass(frozen=True)
class Partition:
    """Split the network into *groups* at *at* (cross-group traffic drops)."""

    at: Time
    groups: Tuple[Tuple[int, ...], ...]

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.partition_at(self.at, *self.groups)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (none)."""
        return ()


@dataclass(frozen=True)
class PartitionOneWay:
    """Drop *src* → *dst* traffic only from *at* (asymmetric partition).

    The reverse direction keeps flowing — the unidirectional-link
    failure mode: the *src* side still hears the group while its own
    frames vanish.  Healed by :class:`Heal` like symmetric splits.
    """

    at: Time
    src: Tuple[int, ...]
    dst: Tuple[int, ...]

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.partition_oneway_at(self.at, self.src, self.dst)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (none)."""
        return ()


@dataclass(frozen=True)
class Heal:
    """Remove every partition at *at*."""

    at: Time

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.heal_at(self.at)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (none)."""
        return ()


@dataclass(frozen=True)
class ImpairLink:
    """Degrade the *src↔dst* link from *at* (until *until*, if given)."""

    at: Time
    src: int
    dst: int
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay: Duration = 0.0
    extra_latency: Duration = 0.0
    corrupt_rate: float = 0.0
    until: Optional[Time] = None

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.impair_link_at(
            self.at,
            self.src,
            self.dst,
            loss_rate=self.loss_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            reorder_delay=self.reorder_delay,
            extra_latency=self.extra_latency,
            corrupt_rate=self.corrupt_rate,
        )
        if self.until is not None:
            injector.clear_link_at(self.until, self.src, self.dst)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (none)."""
        return ()


@dataclass(frozen=True)
class LatencySpike:
    """Add *extra* seconds of one-way delay from *at* for *duration*."""

    at: Time
    extra: Duration
    duration: Optional[Duration] = None

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.latency_spike_at(self.at, self.extra, duration=self.duration)

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (none)."""
        return ()


@dataclass(frozen=True)
class Churn:
    """Cycle *machines* through crash→recover outages (membership churn)."""

    start: Time
    machines: Tuple[int, ...]
    period: Duration
    downtime: Duration
    cycles: int = 1

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.churn(
            self.machines, self.start, self.period, self.downtime, cycles=self.cycles
        )

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down."""
        return tuple(self.machines)


@dataclass(frozen=True)
class RandomCrashes:
    """Crash *count* machines at seeded-random instants in a window."""

    start: Time
    window: Duration
    count: int
    candidates: Optional[Tuple[int, ...]] = None
    recover_after: Optional[Duration] = None

    def schedule(self, injector: FaultInjector) -> None:
        """Arm this action on *injector*."""
        injector.random_crashes(
            self.count,
            self.start,
            self.window,
            candidates=self.candidates,
            recover_after=self.recover_after,
        )

    def faulty_machines(self) -> Tuple[int, ...]:
        """The machines this action may take down (all candidates)."""
        # The concrete victims are drawn at schedule time; every candidate
        # is potentially faulty (the engine refines this with the
        # injector's actual records after the run).
        return tuple(self.candidates) if self.candidates is not None else ()


FaultAction = Union[
    Crash,
    Recover,
    Partition,
    PartitionOneWay,
    Heal,
    ImpairLink,
    LatencySpike,
    Churn,
    RandomCrashes,
]


# --------------------------------------------------------------------------- #
# Scenario specification
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One named adversarial execution, fully declaratively.

    Attributes
    ----------
    name / description:
        Identity and one-line intent (shown by ``--list`` and in reports).
    n:
        Group size.
    duration:
        Instant the workload stops; the engine then drains to quiescence.
    load_msgs_per_sec / payload_bytes / load_jitter / load_burst:
        Workload shape (aggregate rate over all stacks).
    initial_protocol:
        The ABcast protocol bound at t=0 (under the replacement layer).
    with_gm:
        Attach the group-membership module (churn scenarios want it).
    loss_rate / duplicate_rate:
        LAN-wide impairment floors (per-link bursts come via faults).
    corrupt_rate / checksum:
        The Byzantine axis: a network-wide per-datagram corruption floor
        (per-link bursts via :class:`ImpairLink`) and whether receiver
        NICs verify a frame checksum.  Checksum on = corruption is
        *tolerated* (detected + dropped, retransmission recovers);
        off = mangled frames are delivered and the corruption
        containment checker flags the run.
    guard_change_sn / reissue_policy:
        The replacement layer's stale-change handling (DESIGN.md §4).
        ``guard_change_sn=False`` runs the **paper-literal** variant whose
        uniform-agreement anomaly the pipelined regression tests pin.
    creation_cost:
        Simulated module-creation time per switch (the unbind→bind gap).
    kernel_rejoin_marker:
        Treat the kernel-level "restart complete" marker (every module
        re-armed in the new incarnation) as the re-join instant for
        recovered stacks that have no GM handshake.  Gives bare (no-GM)
        recovery scenarios the narrowed recovery-liveness obligations;
        GM handshakes, when present, still take precedence.
    faults:
        The fault schedule, as a tuple of fault actions.
    switches:
        The switch plan, as a tuple of switch steps.
    expected_faulty:
        Machines exempted from liveness checks even if they never crash
        (e.g. a minority side of a partition that is never healed).
    quiescence_extra / quiescence_step:
        Drain budget after *duration* (seconds past the last progress).
    """

    name: str
    description: str = ""
    n: int = 5
    duration: float = 6.0
    load_msgs_per_sec: float = 100.0
    payload_bytes: int = 512
    load_jitter: float = 0.0
    load_burst: int = 1
    initial_protocol: str = PROTOCOL_CT
    with_gm: bool = False
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    checksum: bool = True
    guard_change_sn: bool = True
    reissue_policy: str = "drop"
    creation_cost: float = 0.005
    kernel_rejoin_marker: bool = False
    faults: Tuple[FaultAction, ...] = ()
    switches: Tuple[SwitchStep, ...] = field(default_factory=tuple)
    expected_faulty: Tuple[int, ...] = ()
    quiescence_extra: float = 10.0
    quiescence_step: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ScenarioError(f"scenario {self.name!r}: n must be >= 1")
        if self.duration <= 0:
            raise ScenarioError(f"scenario {self.name!r}: duration must be > 0")
        for machine in self.expected_faulty:
            if not 0 <= machine < self.n:
                raise ScenarioError(
                    f"scenario {self.name!r}: expected_faulty machine {machine} "
                    f"out of range for n={self.n}"
                )

    def uses_corruption(self) -> bool:
        """Whether any corruption knob is armed (spec floor or per-link).

        The engine adds the ``corruption containment`` violations key only
        for such scenarios, so corruption-free campaign reports (and their
        pinned goldens) keep their historical shape.
        """
        if self.corrupt_rate > 0.0:
            return True
        return any(
            isinstance(action, ImpairLink) and action.corrupt_rate > 0.0
            for action in self.faults
        )

    def declared_faulty(self) -> Tuple[int, ...]:
        """Machines the schedule may take down, plus *expected_faulty*."""
        out = set(self.expected_faulty)
        for action in self.faults:
            out.update(action.faulty_machines())
        return tuple(sorted(out))
