"""The predefined scenario library and campaigns.

Each entry opens one corner of the adversarial schedule space the
ROADMAP's north star asks for: switches while the network is partitioned,
cascading crashes during a consensus-based replacement, membership churn
storms, lossy/duplicating/reordering links under every ABcast protocol,
latency spikes, crash→recover incarnations, load-coupled and
fault-coupled switch triggers, the **crash-recovery family** (recover
during a switch, churn with GM re-joins, a recovery storm after a
partition heal) that exercises the restart protocol end to end, and the
**pipelined family**: chained replacements across protocol triples where
the next ``changeABcast`` is issued *before the previous window closes*
(``SwitchAfterSwitch``), under crashes, partitions — including one-way
partitions — loss, and crash-recovery, exercising the version-chain
switch state machine and the chain-agreement checker.

Scenarios are registered by name in :data:`SCENARIOS` via
:func:`register_scenario`; campaigns (named scenario sets, e.g. the CI
``smoke`` gate) live in :data:`CAMPAIGNS`.  Everything here is
deterministic per seed by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..errors import ScenarioError
from ..experiments.common import PROTOCOL_CT, PROTOCOL_SEQ, PROTOCOL_TOKEN
from ..sim.clock import ms
from .engine import Campaign
from .spec import (
    Churn,
    Crash,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    Recover,
    ScenarioSpec,
)
from .switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
)

__all__ = [
    "SCENARIOS",
    "CAMPAIGNS",
    "register_scenario",
    "register_campaign",
    "get_scenario",
    "get_campaign",
]

SCENARIOS: Dict[str, ScenarioSpec] = {}
CAMPAIGNS: Dict[str, Campaign] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the library (name must be fresh)."""
    if spec.name in SCENARIOS:
        raise ScenarioError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def register_campaign(name: str, scenario_names: Iterable[str], description: str = "") -> Campaign:
    """Register a campaign referencing already-registered scenarios."""
    if name in CAMPAIGNS:
        raise ScenarioError(f"campaign {name!r} already registered")
    campaign = Campaign(
        name=name,
        scenarios=tuple(get_scenario(n) for n in scenario_names),
        description=description,
    )
    CAMPAIGNS[name] = campaign
    return campaign


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name (helpful error on typos)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}")


def get_campaign(name: str) -> Campaign:
    """Look up a campaign by name (helpful error on typos)."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ScenarioError(f"unknown campaign {name!r}; known: {known}")


# --------------------------------------------------------------------------- #
# The library
# --------------------------------------------------------------------------- #
register_scenario(ScenarioSpec(
    name="switch-under-partition",
    description="CT→CT replacement requested while the LAN is split 3|2; "
                "the majority side switches, the minority catches up after heal",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    faults=(
        Partition(at=2.0, groups=((0, 1, 2), (3, 4))),
        Heal(at=4.0),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=2.5, from_stack=0),),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="cascade-crash-during-consensus-repl",
    description="two machines crash in cascade right inside the window of a "
                "consensus-based (CT) replacement; five survivors finish it",
    n=7,
    duration=6.0,
    load_msgs_per_sec=100.0,
    faults=(
        Crash(at=3.002, machine=5),
        Crash(at=3.08, machine=6),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=3.0, from_stack=0),),
    quiescence_extra=12.0,
))

register_scenario(ScenarioSpec(
    name="churn-storm",
    description="two machines cycle crash→recover twice while group "
                "membership expels them; the stable trio keeps total order",
    n=5,
    duration=6.5,
    load_msgs_per_sec=60.0,
    with_gm=True,
    faults=(
        Churn(start=2.0, machines=(3, 4), period=2.0, downtime=0.8, cycles=2),
    ),
    quiescence_extra=10.0,
))

register_scenario(ScenarioSpec(
    name="lossy-token-ring",
    description="token-ring ABcast over a 3%-lossy LAN, then a live switch "
                "to the sequencer protocol mid-loss",
    n=5,
    duration=6.0,
    load_msgs_per_sec=60.0,
    initial_protocol=PROTOCOL_TOKEN,
    loss_rate=0.03,
    switches=(SwitchAt(protocol=PROTOCOL_SEQ, at=3.0, from_stack=1),),
    quiescence_extra=12.0,
))

register_scenario(ScenarioSpec(
    name="dup-storm-switch",
    description="LAN-wide duplication plus a 30% duplication burst on one "
                "link while a CT→CT replacement runs",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    duplicate_rate=0.05,
    faults=(
        ImpairLink(at=2.0, src=0, dst=1, duplicate_rate=0.3, until=4.0),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=3.0, from_stack=0),),
))

register_scenario(ScenarioSpec(
    name="reorder-burst-seq",
    description="reordering bursts on two links under the sequencer "
                "protocol, with a mid-burst switch to CT",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    initial_protocol=PROTOCOL_SEQ,
    faults=(
        ImpairLink(at=1.5, src=0, dst=1, reorder_rate=0.5,
                   reorder_delay=ms(5.0), until=4.5),
        ImpairLink(at=1.5, src=2, dst=3, reorder_rate=0.5,
                   reorder_delay=ms(5.0), until=4.5),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=3.0, from_stack=2),),
))

register_scenario(ScenarioSpec(
    name="latency-spike-switch",
    description="a 5 ms one-way latency spike brackets a CT→CT replacement "
                "on a small group",
    n=3,
    duration=5.0,
    load_msgs_per_sec=60.0,
    faults=(
        LatencySpike(at=2.0, extra=ms(5.0), duration=1.0),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=2.5, from_stack=0),),
))

register_scenario(ScenarioSpec(
    name="crash-recover-switch",
    description="a machine crashes, recovers as a new incarnation, and a "
                "replacement triggered after the recovery still completes "
                "on every correct stack",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    faults=(
        Crash(at=2.0, machine=2),
        Recover(at=3.5, machine=2),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=4.0, from_stack=0),),
    quiescence_extra=12.0,
))

register_scenario(ScenarioSpec(
    name="bare-recover-kernel-marker",
    description="crash-recovery without GM, held to the narrowed "
                "recovery-liveness obligations via the kernel-level "
                "restart-complete marker: once its modules re-arm, the "
                "recovered stack must deliver everything sent after that "
                "instant, and its own post-restart sends bind everyone",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    kernel_rejoin_marker=True,
    faults=(
        Crash(at=2.0, machine=2),
        Recover(at=3.5, machine=2),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=4.0, from_stack=0),),
    quiescence_extra=12.0,
))

register_scenario(ScenarioSpec(
    name="recover-during-switch",
    description="a machine crashes, a CT→CT replacement fires while it is "
                "down, and it recovers mid-switch: the restart protocol "
                "re-arms its timers, it replays the change, re-joins via "
                "the GM state transfer and converges on the full order",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    with_gm=True,
    faults=(
        Crash(at=2.0, machine=3),
        Recover(at=2.7, machine=3),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=2.3, from_stack=0),),
    quiescence_extra=16.0,
))

register_scenario(ScenarioSpec(
    name="churn-with-rejoin",
    description="one machine cycles crash→recover twice; each incarnation "
                "re-arms its FD, proposes a GM rejoin and must deliver "
                "every post-rejoin message (narrowed exemptions)",
    n=5,
    duration=6.5,
    load_msgs_per_sec=60.0,
    with_gm=True,
    faults=(
        Churn(start=2.0, machines=(3,), period=2.5, downtime=0.9, cycles=2),
    ),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="recovery-storm-after-heal",
    description="the 3-member minority of a 4|3 split crashes while "
                "partitioned; after the heal all three recover in a burst "
                "and re-join through staggered state transfers",
    n=7,
    duration=7.0,
    load_msgs_per_sec=70.0,
    with_gm=True,
    faults=(
        Partition(at=1.5, groups=((0, 1, 2, 3), (4, 5, 6))),
        Crash(at=2.0, machine=4),
        Crash(at=2.1, machine=5),
        Crash(at=2.2, machine=6),
        Heal(at=3.0),
        Recover(at=3.2, machine=4),
        Recover(at=3.35, machine=5),
        Recover(at=3.5, machine=6),
    ),
    quiescence_extra=18.0,
))

register_scenario(ScenarioSpec(
    name="switch-after-burst",
    description="bursty jittered workload; the switch to the sequencer "
                "triggers after stack 0 has Adelivered 150 messages",
    n=5,
    duration=6.0,
    load_msgs_per_sec=100.0,
    load_burst=5,
    load_jitter=0.3,
    switches=(
        SwitchAfterDeliveries(protocol=PROTOCOL_SEQ, count=150, on_stack=0),
    ),
))

register_scenario(ScenarioSpec(
    name="switch-on-crash-detection",
    description="a crash is injected and the operator policy reacts: "
                "50 ms after the fault the group switches to the sequencer",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    faults=(
        Crash(at=2.5, machine=4),
    ),
    switches=(
        SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=0, delay=0.05),
    ),
    quiescence_extra=12.0,
))

register_scenario(ScenarioSpec(
    name="partition-minority-isolated",
    description="a never-healed 3|2 split: the majority keeps full service "
                "and switches protocols; the isolated minority is exempted "
                "from liveness like the paper's crashed processes",
    n=5,
    duration=5.0,
    load_msgs_per_sec=60.0,
    faults=(
        Partition(at=1.5, groups=((0, 1, 2), (3, 4))),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=3.0, from_stack=0),),
    expected_faulty=(3, 4),
    quiescence_extra=8.0,
))


register_scenario(ScenarioSpec(
    name="pipelined-triple-switch",
    description="a CT→sequencer→token→CT chain where each next change is "
                "issued the instant the first stack completes the previous "
                "switch — the windows provably overlap (pipelined "
                "replacement across a protocol triple)",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    switches=(
        SwitchAt(protocol=PROTOCOL_SEQ, at=2.5, from_stack=0),
        SwitchAfterSwitch(protocol=PROTOCOL_TOKEN, version=1, phase="completed"),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=2, phase="completed"),
    ),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="pipelined-deep-overlap",
    description="the deepest overlap a chain allows: each next change is "
                "requested the instant the previous switch *starts* — the "
                "request rides the blocked-call queue through the "
                "unbind→bind gap and still lands in version order",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    switches=(
        SwitchAt(protocol=PROTOCOL_SEQ, at=2.5, from_stack=0),
        SwitchAfterSwitch(protocol=PROTOCOL_TOKEN, version=1, phase="started"),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=2, phase="started"),
    ),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="pipelined-crash-inside-chain",
    description="sequencer→token→CT pipelined chain with a machine crashing "
                "10 ms into the first window: survivors traverse the "
                "identical chain and converge",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    initial_protocol=PROTOCOL_SEQ,
    faults=(
        Crash(at=2.51, machine=4),
    ),
    switches=(
        SwitchAt(protocol=PROTOCOL_TOKEN, at=2.5, from_stack=0),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="completed"),
    ),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="pipelined-under-partition",
    description="a CT→sequencer→CT chain requested by the 3-majority of a "
                "3|2 split: the minority replays the whole chain after the "
                "heal, going multi-version stale (gap ≥ 2) on the way",
    n=5,
    duration=6.0,
    load_msgs_per_sec=70.0,
    faults=(
        Partition(at=2.0, groups=((0, 1, 2), (3, 4))),
        Heal(at=4.0),
    ),
    switches=(
        SwitchAt(protocol=PROTOCOL_SEQ, at=2.5, from_stack=0),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="completed"),
    ),
    quiescence_extra=16.0,
))

register_scenario(ScenarioSpec(
    name="pipelined-under-loss",
    description="token→sequencer→CT pipelined chain over a 2%-lossy LAN: "
                "retransmissions race the version chain",
    n=5,
    duration=6.0,
    load_msgs_per_sec=70.0,
    initial_protocol=PROTOCOL_TOKEN,
    loss_rate=0.02,
    switches=(
        SwitchAt(protocol=PROTOCOL_SEQ, at=2.5, from_stack=1),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="completed"),
    ),
    quiescence_extra=16.0,
))

register_scenario(ScenarioSpec(
    name="pipelined-crash-recover-chain",
    description="a machine crashes 20 ms into a CT→sequencer→CT pipelined "
                "chain and recovers mid-chain: on_restart resumes the "
                "pending switch chain and the GM re-join catches it up",
    n=5,
    duration=6.0,
    load_msgs_per_sec=80.0,
    with_gm=True,
    faults=(
        Crash(at=2.52, machine=3),
        Recover(at=3.2, machine=3),
    ),
    switches=(
        SwitchAt(protocol=PROTOCOL_SEQ, at=2.5, from_stack=0),
        SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="completed"),
    ),
    quiescence_extra=16.0,
))

register_scenario(ScenarioSpec(
    name="oneway-partition-switch",
    description="a one-way partition (machines 3,4 can hear the majority "
                "but their own frames vanish) brackets a CT→CT switch; "
                "after the heal retransmissions converge everyone",
    n=5,
    duration=6.0,
    load_msgs_per_sec=70.0,
    faults=(
        PartitionOneWay(at=2.0, src=(3, 4), dst=(0, 1, 2)),
        Heal(at=3.5),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=2.5, from_stack=0),),
    quiescence_extra=16.0,
))

register_scenario(ScenarioSpec(
    name="corrupt-links-tolerated",
    description="a 1% LAN-wide bit-corruption floor plus a 10% burst on one "
                "link while a CT→CT replacement runs; checksums detect and "
                "drop every mangled frame, retransmissions absorb the loss "
                "and the containment checker stays quiet",
    n=5,
    duration=6.0,
    load_msgs_per_sec=70.0,
    corrupt_rate=0.01,
    faults=(
        ImpairLink(at=2.0, src=0, dst=1, corrupt_rate=0.1, until=4.0),
    ),
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=3.0, from_stack=0),),
    quiescence_extra=14.0,
))

register_scenario(ScenarioSpec(
    name="stall-escape-switch",
    description="module creation takes 500 ms, so the first replacement's "
                "window provably outlives the 100 ms stall budget: the "
                "SwitchIfStalled escape fires and chains a second "
                "replacement onto the still-open window",
    n=3,
    duration=5.0,
    load_msgs_per_sec=60.0,
    creation_cost=0.5,
    switches=(
        SwitchAt(protocol=PROTOCOL_CT, at=2.0, from_stack=0),
        SwitchIfStalled(protocol=PROTOCOL_CT, version=1, timeout=0.1),
    ),
    quiescence_extra=14.0,
))


# --------------------------------------------------------------------------- #
# Campaigns
# --------------------------------------------------------------------------- #
register_campaign(
    "smoke",
    (
        "latency-spike-switch",
        "switch-on-crash-detection",
        "dup-storm-switch",
        "recover-during-switch",
        "pipelined-triple-switch",
    ),
    description="five fast scenarios for the CI gate: a latency spike, a "
                "crash-triggered switch, a duplication storm, a "
                "crash-recovery restart during a replacement, and a "
                "pipelined triple-protocol switch chain",
)

register_campaign(
    "partitions",
    (
        "switch-under-partition",
        "partition-minority-isolated",
    ),
    description="switches while the network is split",
)

register_campaign(
    "recovery",
    (
        "crash-recover-switch",
        "bare-recover-kernel-marker",
        "recover-during-switch",
        "churn-with-rejoin",
        "recovery-storm-after-heal",
    ),
    description="the crash-recovery restart protocol under pressure: "
                "recover-then-switch, recover mid-switch, churn with "
                "repeated rejoins, and a recovery storm after a heal",
)

register_campaign(
    "pipelined",
    (
        "pipelined-triple-switch",
        "pipelined-deep-overlap",
        "pipelined-crash-inside-chain",
        "pipelined-under-partition",
        "pipelined-under-loss",
        "pipelined-crash-recover-chain",
        "oneway-partition-switch",
    ),
    description="chained/overlapping replacements across protocol triples: "
                "the version-chain state machine under crashes, symmetric "
                "and one-way partitions, loss, and crash-recovery",
)

register_campaign(
    "full",
    tuple(sorted(SCENARIOS)),
    description="every registered scenario",
)
