"""Switch plans: when and how a scenario replaces its protocol.

The paper's experiments trigger ``changeABcast`` at a fixed instant "in
the middle of the experiment".  The scenario space needs richer triggers,
so a plan is a sequence of *steps*, each one switch with its own firing
condition:

* :class:`SwitchAt` — at absolute simulated time *at*;
* :class:`SwitchAfterDeliveries` — once a designated stack has Adelivered
  *count* messages (load-coupled switching);
* :class:`SwitchOnFault` — a fixed *delay* after the *fault_index*-th
  injected fault fires (switch-on-fault-detection: the operator reacting
  to trouble by moving to a sturdier protocol);
* :class:`SwitchIfStalled` — a **chain-level predicate trigger**: fires
  only if switch *version*'s convergence time exceeds *timeout* (the
  window is still open *timeout* seconds after its first stack started
  it) — the operator escalating to a sturdier protocol when a
  replacement drags; if the window closes in time the step never fires;
* :class:`SwitchAfterSwitch` — a *delay* after an earlier switch
  *version* reaches a phase, which is how plans express **back-to-back
  and deliberately overlapping (pipelined) replacement chains**:
  ``phase="completed"`` fires when the *first* stack completes the
  version (the rest of the group is typically still creating modules, so
  the next change lands squarely inside the open window),
  ``phase="started"`` fires when the first stack merely *starts* it
  (deeper overlap: the next change is requested while the requester's
  abcast service is still unbound and rides the blocked-call queue), and
  ``phase="closed"`` fires once every non-crashed stack completed it (a
  strict back-to-back chain).

:class:`SwitchPlan` arms the steps against a built system: it wires the
time/delivery/fault/version sources, falls back to the lowest-ranked
alive stack when the requesting stack is down at firing time, and
records every switch that actually fired for the campaign report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ScenarioError
from ..sim.clock import Duration, Time
from ..sim.faults import FaultInjector, FaultRecord

__all__ = [
    "SwitchAt",
    "SwitchAfterDeliveries",
    "SwitchOnFault",
    "SwitchAfterSwitch",
    "SwitchIfStalled",
    "SwitchStep",
    "SwitchPlan",
]


@dataclass(frozen=True)
class SwitchAt:
    """Switch to *protocol* at absolute instant *at*."""

    protocol: str
    at: Time
    from_stack: int = 0


@dataclass(frozen=True)
class SwitchAfterDeliveries:
    """Switch to *protocol* once *on_stack* has Adelivered *count* messages."""

    protocol: str
    count: int
    on_stack: int = 0
    from_stack: int = 0


@dataclass(frozen=True)
class SwitchOnFault:
    """Switch to *protocol* a *delay* after the *fault_index*-th fault fires."""

    protocol: str
    fault_index: int = 0
    delay: Duration = 0.05
    from_stack: int = 0


@dataclass(frozen=True)
class SwitchAfterSwitch:
    """Switch to *protocol* a *delay* after switch *version* reaches *phase*.

    ``phase`` is one of ``"started"`` (first stack began the version's
    switch), ``"completed"`` (first stack bound the new module — the
    pipelining trigger: the rest of the window is still open) or
    ``"closed"`` (every non-crashed stack completed — back-to-back).
    ``from_stack=None`` (the default) requests the change from the stack
    that reached the phase — the only stack *guaranteed* to stamp the
    request with the fresh version's sequence number, which is what
    makes a pipelined chain land cleanly.  (For ``"closed"`` no single
    stack reaches the phase — a crash may close the window — so the
    default is the lowest-ranked alive stack.)  Pass an explicit rank to
    deliberately issue the change from a stack that may still be behind
    (its request goes out under a stale sn and exercises the guard /
    paper-literal anomaly machinery).
    """

    protocol: str
    version: int = 1
    phase: str = "completed"
    delay: Duration = 0.0
    from_stack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.phase not in ("started", "completed", "closed"):
            raise ScenarioError(
                f"SwitchAfterSwitch phase must be 'started', 'completed' or "
                f"'closed', got {self.phase!r}"
            )
        if self.version < 1:
            raise ScenarioError("SwitchAfterSwitch chains off version >= 1")


@dataclass(frozen=True)
class SwitchIfStalled:
    """Switch to *protocol* if switch *version*'s convergence lags.

    A **chain-predicate trigger** ("when convergence time exceeds X"):
    armed when the first stack starts switch *version*, it checks
    *timeout* seconds later whether the version's window is still open —
    i.e. some non-crashed stack has not completed the switch.  If so,
    the replacement is judged stalled and this step fires (by default
    from the lowest-ranked alive stack); if the window closed in time,
    the step never fires.  This is the conditional escape hatch of a
    switch plan: "move to a sturdier protocol only if the current
    replacement drags".
    """

    protocol: str
    version: int = 1
    timeout: Duration = 1.0
    from_stack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ScenarioError("SwitchIfStalled watches version >= 1")
        if self.timeout <= 0.0:
            raise ScenarioError("SwitchIfStalled timeout must be > 0")


SwitchStep = Union[
    SwitchAt,
    SwitchAfterDeliveries,
    SwitchOnFault,
    SwitchAfterSwitch,
    SwitchIfStalled,
]


class SwitchPlan:
    """Arms a sequence of switch steps against a built system."""

    def __init__(self, steps: Sequence[SwitchStep]) -> None:
        self.steps = list(steps)
        #: Switches that actually fired: dicts with trigger/protocol/time.
        self.fired: List[Dict[str, Any]] = []

    def arm(self, gcs: Any, injector: FaultInjector) -> None:
        """Wire every step into *gcs* (a ``GroupCommSystem``)."""
        if not self.steps:
            return
        if gcs.manager is None:
            raise ScenarioError(
                "a switch plan needs the replacement layer (manager is None)"
            )
        sim = gcs.system.sim
        for step in self.steps:
            if isinstance(step, SwitchAt):
                sim.schedule_at(step.at, self._fire, gcs, step)
            elif isinstance(step, SwitchAfterDeliveries):
                self._arm_delivery_trigger(gcs, step)
            elif isinstance(step, SwitchOnFault):
                self._arm_fault_trigger(gcs, injector, step)
            elif isinstance(step, SwitchAfterSwitch):
                self._arm_version_trigger(gcs, step)
            elif isinstance(step, SwitchIfStalled):
                self._arm_stall_trigger(gcs, step)
            else:  # pragma: no cover - defensive
                raise ScenarioError(f"unknown switch step {step!r}")

    # ------------------------------------------------------------------ #
    # Trigger wiring
    # ------------------------------------------------------------------ #
    def _arm_delivery_trigger(self, gcs: Any, step: SwitchAfterDeliveries) -> None:
        """Fire *step* once its stack's Adelivery count reaches the target."""
        state = {"count": 0, "armed": True}

        def on_delivery(key: Any, stack_id: int, time: Time) -> None:
            if not state["armed"] or stack_id != step.on_stack:
                return
            state["count"] += 1
            if state["count"] >= step.count:
                state["armed"] = False
                # call_soon: never re-enter the stack from a delivery hook.
                gcs.system.sim.call_soon(self._fire, gcs, step)

        gcs.log.on_delivery.append(on_delivery)

    def _arm_fault_trigger(
        self, gcs: Any, injector: FaultInjector, step: SwitchOnFault
    ) -> None:
        """Fire *step* a fixed delay after its designated fault fires."""
        def on_fault(index: int, record: FaultRecord) -> None:
            if index == step.fault_index:
                gcs.system.sim.schedule(step.delay, self._fire, gcs, step)

        injector.on_fault.append(on_fault)

    def _arm_version_trigger(self, gcs: Any, step: SwitchAfterSwitch) -> None:
        """Fire *step* once switch *version* reaches the requested phase.

        The chained request defaults to the stack that reached the phase
        (the one whose ``seq_number`` provably matches the new version);
        an explicit ``from_stack`` overrides that — including the
        deliberately-stale case.  Each trigger fires at most once.
        """
        manager = gcs.manager
        state = {"armed": True}

        def fire_from(stack_id: Optional[int]) -> None:
            if not state["armed"]:
                return
            state["armed"] = False
            from_stack = step.from_stack if step.from_stack is not None else stack_id
            # from_stack may still be None ("closed" has no phase stack);
            # _fire then resolves it to the lowest-ranked alive stack.
            gcs.system.sim.schedule(step.delay, self._fire, gcs, step, from_stack)

        if step.phase == "started":
            manager.on_version_started.append(
                lambda version, prot, stack_id, at: (
                    fire_from(stack_id) if version == step.version else None
                )
            )
        elif step.phase == "completed":
            manager.on_version_first_complete.append(
                lambda version, prot, stack_id, at: (
                    fire_from(stack_id) if version == step.version else None
                )
            )
        else:  # "closed"
            manager.on_version_closed.append(
                lambda version, prot, at: (
                    fire_from(None) if version == step.version else None
                )
            )

    def _arm_stall_trigger(self, gcs: Any, step: SwitchIfStalled) -> None:
        """Fire *step* iff version *step.version* is still open after the
        timeout (the chain-level "convergence time exceeds X" predicate).

        Armed off ``on_version_started`` so the timeout measures the
        version's own convergence time, not absolute simulation time.
        """
        manager = gcs.manager
        state = {"armed": True}

        def check() -> None:
            if not state["armed"]:
                return
            state["armed"] = False
            if manager.replacement_complete(step.version):
                return  # converged within the budget: predicate false
            self._fire(gcs, step, step.from_stack)

        def on_started(version: int, prot: str, stack_id: int, at: Time) -> None:
            if version == step.version and state["armed"]:
                gcs.system.sim.schedule_at(at + step.timeout, check)

        manager.on_version_started.append(on_started)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def _fire(self, gcs: Any, step: SwitchStep, from_stack: Optional[int] = None) -> None:
        """Request the change (from a fallback stack if the requester died)."""
        if from_stack is None:
            from_stack = getattr(step, "from_stack", None)
        if from_stack is None or gcs.system.machine(from_stack).crashed:
            alive = gcs.system.alive_ids()
            if not alive:
                return  # nobody left to request the switch
            from_stack = alive[0]
        gcs.manager.request_change(step.protocol, from_stack=from_stack)
        record = {
            "trigger": type(step).__name__,
            "protocol": step.protocol,
            "from_stack": from_stack,
            "time": gcs.system.sim.now,
        }
        if isinstance(step, SwitchAfterSwitch):
            record["after_version"] = step.version
            record["phase"] = step.phase
        elif isinstance(step, SwitchIfStalled):
            record["stalled_version"] = step.version
            record["timeout"] = step.timeout
        self.fired.append(record)
