"""Switch plans: when and how a scenario replaces its protocol.

The paper's experiments trigger ``changeABcast`` at a fixed instant "in
the middle of the experiment".  The scenario space needs richer triggers,
so a plan is a sequence of *steps*, each one switch with its own firing
condition:

* :class:`SwitchAt` — at absolute simulated time *at*;
* :class:`SwitchAfterDeliveries` — once a designated stack has Adelivered
  *count* messages (load-coupled switching);
* :class:`SwitchOnFault` — a fixed *delay* after the *fault_index*-th
  injected fault fires (switch-on-fault-detection: the operator reacting
  to trouble by moving to a sturdier protocol).

:class:`SwitchPlan` arms the steps against a built system: it wires the
time/delivery/fault sources, falls back to the lowest-ranked alive stack
when the requesting stack is down at firing time, and records every
switch that actually fired for the campaign report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Union

from ..errors import ScenarioError
from ..sim.clock import Duration, Time
from ..sim.faults import FaultInjector, FaultRecord

__all__ = ["SwitchAt", "SwitchAfterDeliveries", "SwitchOnFault", "SwitchStep", "SwitchPlan"]


@dataclass(frozen=True)
class SwitchAt:
    """Switch to *protocol* at absolute instant *at*."""

    protocol: str
    at: Time
    from_stack: int = 0


@dataclass(frozen=True)
class SwitchAfterDeliveries:
    """Switch to *protocol* once *on_stack* has Adelivered *count* messages."""

    protocol: str
    count: int
    on_stack: int = 0
    from_stack: int = 0


@dataclass(frozen=True)
class SwitchOnFault:
    """Switch to *protocol* a *delay* after the *fault_index*-th fault fires."""

    protocol: str
    fault_index: int = 0
    delay: Duration = 0.05
    from_stack: int = 0


SwitchStep = Union[SwitchAt, SwitchAfterDeliveries, SwitchOnFault]


class SwitchPlan:
    """Arms a sequence of switch steps against a built system."""

    def __init__(self, steps: Sequence[SwitchStep]) -> None:
        self.steps = list(steps)
        #: Switches that actually fired: dicts with trigger/protocol/time.
        self.fired: List[Dict[str, Any]] = []

    def arm(self, gcs: Any, injector: FaultInjector) -> None:
        """Wire every step into *gcs* (a ``GroupCommSystem``)."""
        if not self.steps:
            return
        if gcs.manager is None:
            raise ScenarioError(
                "a switch plan needs the replacement layer (manager is None)"
            )
        sim = gcs.system.sim
        for step in self.steps:
            if isinstance(step, SwitchAt):
                sim.schedule_at(step.at, self._fire, gcs, step)
            elif isinstance(step, SwitchAfterDeliveries):
                self._arm_delivery_trigger(gcs, step)
            elif isinstance(step, SwitchOnFault):
                self._arm_fault_trigger(gcs, injector, step)
            else:  # pragma: no cover - defensive
                raise ScenarioError(f"unknown switch step {step!r}")

    # ------------------------------------------------------------------ #
    # Trigger wiring
    # ------------------------------------------------------------------ #
    def _arm_delivery_trigger(self, gcs: Any, step: SwitchAfterDeliveries) -> None:
        """Fire *step* once its stack's Adelivery count reaches the target."""
        state = {"count": 0, "armed": True}

        def on_delivery(key: Any, stack_id: int, time: Time) -> None:
            if not state["armed"] or stack_id != step.on_stack:
                return
            state["count"] += 1
            if state["count"] >= step.count:
                state["armed"] = False
                # call_soon: never re-enter the stack from a delivery hook.
                gcs.system.sim.call_soon(self._fire, gcs, step)

        gcs.log.on_delivery.append(on_delivery)

    def _arm_fault_trigger(
        self, gcs: Any, injector: FaultInjector, step: SwitchOnFault
    ) -> None:
        """Fire *step* a fixed delay after its designated fault fires."""
        def on_fault(index: int, record: FaultRecord) -> None:
            if index == step.fault_index:
                gcs.system.sim.schedule(step.delay, self._fire, gcs, step)

        injector.on_fault.append(on_fault)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def _fire(self, gcs: Any, step: SwitchStep) -> None:
        """Request the change (from a fallback stack if the requester died)."""
        from_stack = step.from_stack
        if gcs.system.machine(from_stack).crashed:
            alive = gcs.system.alive_ids()
            if not alive:
                return  # nobody left to request the switch
            from_stack = alive[0]
        gcs.manager.request_change(step.protocol, from_stack=from_stack)
        self.fired.append(
            {
                "trigger": type(step).__name__,
                "protocol": step.protocol,
                "from_stack": from_stack,
                "time": gcs.system.sim.now,
            }
        )
