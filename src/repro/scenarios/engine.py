"""The campaign engine: run scenarios, check properties, emit JSON.

:func:`run_scenario` is a pure function ``(spec, seed) → ScenarioResult``:
it builds the paper's Figure 4 stack, arms the fault schedule on a
:class:`~repro.sim.faults.FaultInjector` and the switch plan on a
:class:`~repro.scenarios.switchplan.SwitchPlan`, runs the workload for
``spec.duration`` simulated seconds, drains to quiescence, and then runs
every property checker the repo has:

* the four ABcast properties across replacements (Section 5.2.2), with
  the usual exemptions for faulty machines and their in-flight sends;
* weak stack-well-formedness (Section 3);
* weak protocol-operationability for every protocol the scenario binds.

:func:`run_campaign` maps a :class:`Campaign` (a named set of scenarios)
across a seed matrix.  Everything serialises to **deterministic JSON**
(sorted keys, no wall-clock timestamps): the same ``(campaign, seeds)``
pair produces byte-identical output, which CI exploits as a regression
gate — any diff in the report is a real behavioural change.

Campaign runs default to the ``structural`` kernel-trace depth: only the
record kinds the property checkers consume are kept, so full-stack runs
skip the per-call trace firehose entirely while reports stay
byte-identical to ``trace="full"`` (pinned by
``tests/integration/test_trace_modes.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dpu.abcast_checker import (
    check_all_abcast_properties,
    check_corruption_containment,
    check_recovery_liveness,
    is_post_rejoin_send,
)
from ..dpu.properties import (
    check_chain_agreement,
    check_weak_protocol_operationability,
    check_weak_stack_well_formedness,
)
from ..errors import ScenarioError
from ..experiments.common import TRACE_MODES, GroupCommConfig, build_group_comm_system
from ..kernel.service import WellKnown
from ..metrics import mean_latency
from ..sim.faults import FaultInjector
from .spec import ScenarioSpec
from .switchplan import SwitchPlan

__all__ = [
    "ScenarioResult",
    "Campaign",
    "CampaignResult",
    "run_scenario",
    "run_campaign",
    "result_from_dict",
    "compare_reports",
]


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Everything one scenario run produced, JSON-ready."""

    name: str
    seed: int
    n: int
    sim_time_end: float
    events_processed: int
    sent_total: int
    delivered_per_stack: Dict[int, int]
    #: Distinct keys Adelivered by every correct stack (the totally
    #: ordered common prefix the checkers certified).
    ordered_common: int
    mean_latency_s: Optional[float]
    faults: List[Dict[str, Any]]
    switches_fired: List[Dict[str, Any]]
    switch_windows: List[Dict[str, Any]]
    #: Chain-level replacement metrics: convergence instant/time,
    #: per-version window overlaps, per-stack protocol trajectories and
    #: the multi-version stale-discard classification.
    switch_chain: Dict[str, Any]
    final_protocols: Dict[int, str]
    crashed: Dict[int, float]
    #: Stacks whose crash-recovery re-join handshake completed (and that
    #: stayed up): ``stack -> re-join completion instant``.  Their
    #: liveness exemption is narrowed back from that instant on.
    rejoined: Dict[int, float]
    correct_stacks: List[int]
    violations: Dict[str, List[str]]
    network: Dict[str, int]

    @property
    def ok(self) -> bool:
        """No property checker reported a violation."""
        return all(not v for v in self.violations.values())

    @property
    def violations_total(self) -> int:
        """Total violation count across all property checkers."""
        return sum(len(v) for v in self.violations.values())

    def to_dict(self) -> Dict[str, Any]:
        """A plain, deterministically-serialisable dict."""
        return {
            "name": self.name,
            "seed": self.seed,
            "n": self.n,
            "ok": self.ok,
            "sim_time_end": self.sim_time_end,
            "events_processed": self.events_processed,
            "sent_total": self.sent_total,
            "delivered_per_stack": {
                str(k): v for k, v in sorted(self.delivered_per_stack.items())
            },
            "ordered_common": self.ordered_common,
            "mean_latency_s": self.mean_latency_s,
            "faults": self.faults,
            "switches_fired": self.switches_fired,
            "switch_windows": self.switch_windows,
            "switch_chain": self.switch_chain,
            "final_protocols": {
                str(k): v for k, v in sorted(self.final_protocols.items())
            },
            "crashed": {str(k): v for k, v in sorted(self.crashed.items())},
            "rejoined": {str(k): v for k, v in sorted(self.rejoined.items())},
            "correct_stacks": list(self.correct_stacks),
            "violations": {k: list(v) for k, v in sorted(self.violations.items())},
            "network": {k: v for k, v in sorted(self.network.items())},
        }


@dataclass(frozen=True)
class Campaign:
    """A named set of scenarios run as one unit across a seed matrix."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ScenarioError(f"campaign {self.name!r} has no scenarios")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ScenarioError(f"campaign {self.name!r} has duplicate scenario names")


@dataclass
class CampaignResult:
    """All results of one campaign run, with a deterministic JSON form."""

    campaign: str
    seeds: List[int]
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every run of the campaign was violation-free."""
        return all(r.ok for r in self.results)

    @property
    def violations_total(self) -> int:
        """Total violation count across all runs."""
        return sum(r.violations_total for r in self.results)

    def to_dict(self) -> Dict[str, Any]:
        """A plain, deterministically-serialisable dict of every run."""
        return {
            "campaign": self.campaign,
            "seeds": list(self.seeds),
            "ok": self.ok,
            "violations_total": self.violations_total,
            "runs": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        """Byte-identical for identical (campaign, seeds) inputs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary_rows(self) -> List[Tuple[Any, ...]]:
        """``(scenario, seed, ok, sent, ordered, violations)`` per run."""
        return [
            (
                r.name,
                r.seed,
                "ok" if r.ok else "FAIL",
                r.sent_total,
                r.ordered_common,
                r.violations_total,
            )
            for r in self.results
        ]


# --------------------------------------------------------------------------- #
# Running one scenario
# --------------------------------------------------------------------------- #
def _collect_rejoined(gcs: Any, kernel_marker: bool = False) -> Dict[int, float]:
    """Stacks whose re-join completed for the incarnation that is still
    up: ``stack -> re-join completion instant``.

    The GM re-join handshake is the primary signal; stale handshakes are
    discarded (a stack that crashed again after re-joining only counts
    once its *current* incarnation completed the handshake).  With
    *kernel_marker*, stacks lacking a GM handshake fall back to the
    kernel's "restart complete" marker — the instant every module
    re-armed in the new incarnation — so bare (no-GM) scenarios get the
    narrowed recovery-liveness obligations too.  Without either signal a
    recovered stack keeps the wide ever-crashed exemption.
    """
    out: Dict[int, float] = {}
    for stack in gcs.system.stacks:
        machine = stack.machine
        if machine.crashed or not machine.ever_crashed:
            continue
        gm = stack.bound_module(WellKnown.GM)
        if (
            gm is not None
            and getattr(gm, "rejoined_at", None) is not None
            and gm.rejoined_epoch == machine.epoch
        ):
            out[stack.stack_id] = gm.rejoined_at
        elif kernel_marker and stack.restart_completed_epoch == machine.epoch:
            out[stack.stack_id] = stack.restart_completed_at
    return out


def _config_for(spec: ScenarioSpec, seed: int, trace: str = "full") -> GroupCommConfig:
    """The builder config for one ``(spec, seed)`` cell at *trace* depth."""
    return GroupCommConfig(
        n=spec.n,
        seed=seed,
        trace=trace,
        load_msgs_per_sec=spec.load_msgs_per_sec,
        payload_bytes=spec.payload_bytes,
        load_stop=spec.duration,
        load_jitter=spec.load_jitter,
        load_burst=spec.load_burst,
        initial_protocol=spec.initial_protocol,
        with_gm=spec.with_gm,
        loss_rate=spec.loss_rate,
        duplicate_rate=spec.duplicate_rate,
        corrupt_rate=spec.corrupt_rate,
        checksum=spec.checksum,
        guard_change_sn=spec.guard_change_sn,
        reissue_policy=spec.reissue_policy,
        creation_cost=spec.creation_cost,
    )


def run_scenario(
    spec: ScenarioSpec, seed: int = 0, trace: str = "structural"
) -> ScenarioResult:
    """Run one scenario at one seed; never raises on property violations
    (they are returned in the result, so a campaign always completes).

    *trace* selects the kernel trace depth.  The default,
    ``"structural"``, records exactly the kinds the property checkers
    consume — module add/remove, bind/unbind, blocked/unblocked calls,
    crash/recover — and skips the per-call/per-response firehose, so the
    report is **byte-identical** to a ``"full"`` run at a fraction of the
    dispatch cost.  ``"off"`` records nothing (pure speed; the
    trace-based checkers then trivially pass, so only use it when the
    report's violation fields are not the point of the run).
    """
    if trace not in TRACE_MODES:
        raise ScenarioError(
            f"unknown trace mode {trace!r}; expected one of {TRACE_MODES}"
        )
    gcs = build_group_comm_system(_config_for(spec, seed, trace))
    system = gcs.system
    injector = FaultInjector(
        system.sim, system.machines, network=gcs.network, name=spec.name
    )
    for action in spec.faults:
        action.schedule(injector)
    plan = SwitchPlan(spec.switches)
    plan.arm(gcs, injector)

    system.run(until=spec.duration)
    declared = set(spec.declared_faulty())
    gcs.run_to_quiescence(
        extra=spec.quiescence_extra,
        step=spec.quiescence_step,
        exempt=declared | set(injector.crashed_ever()),
        rejoined=lambda: _collect_rejoined(gcs, spec.kernel_rejoin_marker),
    )

    # ----- fault/crash accounting ------------------------------------- #
    crashed: Dict[int, float] = dict(injector.crashed_ever())
    for machine_id in spec.expected_faulty:
        crashed.setdefault(machine_id, spec.duration)
    stacks = list(range(spec.n))
    correct = [s for s in stacks if s not in crashed]
    # Stacks that recovered AND completed the GM re-join handshake are
    # correct again from their re-join instant: their post-re-join sends
    # leave the in-flight exemption (everyone must deliver them) and the
    # recovery-liveness checker holds the rejoined stack itself to every
    # post-re-join message.
    rejoined = _collect_rejoined(gcs, spec.kernel_rejoin_marker)
    in_flight = {
        key
        for key, (sender, t_send) in gcs.log.sends.items()
        if sender in crashed and not is_post_rejoin_send(sender, t_send, rejoined)
    }

    # ----- property checks -------------------------------------------- #
    violations = check_all_abcast_properties(
        gcs.log, crashed, stacks, in_flight_ok=in_flight
    )
    violations["recovery liveness"] = check_recovery_liveness(
        gcs.log, rejoined, crashed
    )
    violations["weak stack-well-formedness"] = check_weak_stack_well_formedness(
        system.trace
    )
    violations["chain agreement"] = check_chain_agreement(
        system.trace, stacks, crashed=crashed
    )
    if spec.uses_corruption():
        # Key added only for corruption-armed scenarios: corruption-free
        # campaign reports (and the pinned goldens) keep their shape.
        violations["corruption containment"] = check_corruption_containment(
            gcs.network.stats(), checksum=spec.checksum
        )
    protocols_bound = {spec.initial_protocol}
    protocols_bound.update(step.protocol for step in spec.switches)
    for protocol in sorted(protocols_bound):
        violations[f"weak operationability[{protocol}]"] = (
            check_weak_protocol_operationability(system.trace, protocol, stacks)
        )

    # ----- metrics ----------------------------------------------------- #
    common: Optional[set] = None
    for stack_id in correct:
        delivered = gcs.log.delivered_set(stack_id)
        common = delivered if common is None else (common & delivered)
    windows = []
    switch_chain: Dict[str, Any] = {}
    if gcs.manager is not None:
        for version in sorted(gcs.manager.windows):
            window = gcs.manager.windows[version]
            windows.append(
                {
                    "version": window.version,
                    "protocol": window.protocol,
                    "start": window.start,
                    "end": window.end,
                    "duration": window.duration,
                    "stacks_completed": len(window.completed),
                    "overlap_with_previous": window.overlap_with_prev,
                }
            )
        switch_chain = gcs.manager.chain_metrics()
        switch_chain["trajectories"] = {
            str(sid): [[version, prot] for version, prot in traj]
            for sid, traj in sorted(gcs.manager.protocol_trajectories().items())
        }
        switch_chain["stale_discards"] = gcs.manager.stale_classification()
    latency = mean_latency(gcs.log, stacks=correct) if correct else None

    return ScenarioResult(
        name=spec.name,
        seed=seed,
        n=spec.n,
        sim_time_end=system.sim.now,
        events_processed=system.sim.events_processed,
        sent_total=len(gcs.log.sends),
        delivered_per_stack={s: gcs.log.delivered_count(s) for s in stacks},
        ordered_common=len(common or ()),
        mean_latency_s=latency,
        faults=[record.to_dict() for record in injector.records],
        switches_fired=list(plan.fired),
        switch_windows=windows,
        switch_chain=switch_chain,
        final_protocols=(
            gcs.manager.current_protocols() if gcs.manager is not None else {}
        ),
        crashed=crashed,
        rejoined=rejoined,
        correct_stacks=correct,
        violations=violations,
        network=gcs.network.stats(),
    )


# --------------------------------------------------------------------------- #
# Running a campaign
# --------------------------------------------------------------------------- #
def result_from_dict(data: Dict[str, Any]) -> ScenarioResult:
    """Rebuild a :class:`ScenarioResult` from its :meth:`~ScenarioResult.to_dict` form.

    The exact inverse of ``to_dict`` (integer-keyed maps are restored
    from their stringified JSON shape; the derived ``ok`` key is
    ignored), so a result that round-trips through compact worker JSON
    re-serialises **byte-identically** — the property the warm pool's
    fragment merge relies on, pinned by
    ``tests/integration/test_warm_pool.py``.
    """
    return ScenarioResult(
        name=data["name"],
        seed=data["seed"],
        n=data["n"],
        sim_time_end=data["sim_time_end"],
        events_processed=data["events_processed"],
        sent_total=data["sent_total"],
        delivered_per_stack={
            int(k): v for k, v in data["delivered_per_stack"].items()
        },
        ordered_common=data["ordered_common"],
        mean_latency_s=data["mean_latency_s"],
        faults=list(data["faults"]),
        switches_fired=list(data["switches_fired"]),
        switch_windows=list(data["switch_windows"]),
        switch_chain=dict(data["switch_chain"]),
        final_protocols={int(k): v for k, v in data["final_protocols"].items()},
        crashed={int(k): v for k, v in data["crashed"].items()},
        rejoined={int(k): v for k, v in data["rejoined"].items()},
        correct_stacks=list(data["correct_stacks"]),
        violations={k: list(v) for k, v in data["violations"].items()},
        network=dict(data["network"]),
    )


def run_campaign(
    campaign: Campaign,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    trace: str = "structural",
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Run every scenario of *campaign* at every seed, in a fixed order.

    ``jobs`` fans the ``(spec, seed)`` matrix over the process-wide
    **warm worker pool** (:mod:`repro.parallel`; ``jobs=0`` means one
    worker per CPU).  Workers import the engine once and stay alive
    across campaigns, cells ship in chunks of ``chunk_size`` (``None``
    picks a size amortising IPC over ~4 rounds per worker), and workers
    reply with compact pre-serialised JSON fragments that the parent
    merges **by cell index** — so the report is **byte-identical** for
    any ``jobs`` × ``chunk_size`` combination; only the wall-clock
    changes.  Each cell is a pure function of its arguments (every run
    owns a private simulator and RNG registry), which is what makes the
    fan-out sound.  ``trace`` is the per-cell kernel trace depth (see
    :func:`run_scenario`); reports are byte-identical between
    ``"structural"`` and ``"full"``.

    A cell that raises in a worker fails the campaign with a
    :class:`~repro.errors.ScenarioError` naming the scenario and seed;
    the pool survives and the next campaign reuses it.
    """
    if jobs < 0:
        raise ScenarioError(f"jobs must be >= 0, got {jobs}")
    if chunk_size is not None and chunk_size < 1:
        raise ScenarioError(f"chunk_size must be >= 1, got {chunk_size}")
    tasks = [(spec, seed, trace) for spec in campaign.scenarios for seed in seeds]
    result = CampaignResult(campaign=campaign.name, seeds=list(seeds))
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs == 1 or len(tasks) <= 1:
        result.results.extend(
            run_scenario(spec, seed=seed, trace=trace) for spec, seed, trace in tasks
        )
        return result
    from ..parallel import get_pool  # deferred: workers import this module

    pool = get_pool(min(jobs, len(tasks)))
    fragments = pool.run_cells(tasks, chunk_size=chunk_size, max_workers=jobs)
    result.results.extend(result_from_dict(json.loads(f)) for f in fragments)
    return result


# --------------------------------------------------------------------------- #
# Report comparison (regression gate)
# --------------------------------------------------------------------------- #
def compare_reports(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> List[str]:
    """Diff two deterministic campaign-report dicts (``to_dict`` shape).

    Returns human-readable drift lines, empty when the reports agree.
    Campaign reports are deterministic functions of ``(campaign, seeds)``
    and the code, so *any* per-run field drift is a real behavioural
    change; property/checker drift (``ok``/``violations``) is flagged
    first and most loudly.
    """
    drift: List[str] = []
    if baseline.get("campaign") != current.get("campaign"):
        drift.append(
            f"campaign name: baseline {baseline.get('campaign')!r} "
            f"!= current {current.get('campaign')!r}"
        )
    if baseline.get("seeds") != current.get("seeds"):
        drift.append(
            f"seed matrix: baseline {baseline.get('seeds')!r} "
            f"!= current {current.get('seeds')!r}"
        )

    def key(run: Dict[str, Any]) -> Tuple[str, int]:
        return (str(run.get("name")), int(run.get("seed", 0)))

    base_runs = {key(r): r for r in baseline.get("runs", [])}
    cur_runs = {key(r): r for r in current.get("runs", [])}
    for name, seed in sorted(set(base_runs) - set(cur_runs)):
        drift.append(f"run [{name} seed={seed}]: present in baseline only")
    for name, seed in sorted(set(cur_runs) - set(base_runs)):
        drift.append(f"run [{name} seed={seed}]: present in current only")

    for run_key in sorted(set(base_runs) & set(cur_runs)):
        name, seed = run_key
        base, cur = base_runs[run_key], cur_runs[run_key]
        # Property/checker drift first: the signal CI cares most about.
        for field_name in ("ok", "violations"):
            if base.get(field_name) != cur.get(field_name):
                drift.append(
                    f"run [{name} seed={seed}] {field_name}: "
                    f"baseline {base.get(field_name)!r} -> "
                    f"current {cur.get(field_name)!r}"
                )
        for field_name in sorted(set(base) | set(cur)):
            if field_name in ("ok", "violations"):
                continue
            if base.get(field_name) != cur.get(field_name):
                drift.append(
                    f"run [{name} seed={seed}] {field_name}: "
                    f"baseline {base.get(field_name)!r} -> "
                    f"current {cur.get(field_name)!r}"
                )
    return drift
