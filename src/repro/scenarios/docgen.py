"""Generate the ``docs/scenarios.md`` catalogue from the live library.

The scenario tables in the docs are **generated, not hand-written**: every
registered :class:`~repro.scenarios.spec.ScenarioSpec` renders one row
with its full fault schedule and switch plan (not just names), and every
campaign renders its member list.  ``docs/scenarios.md`` embeds the
output between ``BEGIN GENERATED`` / ``END GENERATED`` markers;
``tests/unit/test_docs_sync.py`` asserts the embedded block is
byte-identical to :func:`generated_block`, so registering, renaming or
even re-tuning a scenario without regenerating the docs fails the build.

Regenerate in place::

    python -m repro.scenarios --write-docs            # docs/scenarios.md
    python -m repro.scenarios --write-docs path.md    # elsewhere
"""

from __future__ import annotations

import pathlib
from typing import List

from ..errors import ScenarioError
from .spec import (
    Churn,
    Crash,
    FaultAction,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    RandomCrashes,
    Recover,
    ScenarioSpec,
)
from .switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
    SwitchStep,
)

__all__ = [
    "describe_fault",
    "describe_switch",
    "generated_block",
    "update_doc",
    "BEGIN_MARKER",
    "END_MARKER",
]

BEGIN_MARKER = (
    "<!-- BEGIN GENERATED: scenario catalogue "
    "(regenerate: python -m repro.scenarios --write-docs) -->"
)
END_MARKER = "<!-- END GENERATED: scenario catalogue -->"


def _groups(groups) -> str:
    return "\\|".join(",".join(str(m) for m in g) for g in groups)


def describe_fault(action: FaultAction) -> str:
    """One human-readable cell for a fault action (schedule included)."""
    if isinstance(action, Crash):
        return f"crash m{action.machine} at t={action.at:g}"
    if isinstance(action, Recover):
        return f"recover m{action.machine} at t={action.at:g}"
    if isinstance(action, Partition):
        return f"partition {_groups(action.groups)} at t={action.at:g}"
    if isinstance(action, PartitionOneWay):
        return (
            f"one-way partition {_groups((action.src,))}→{_groups((action.dst,))} "
            f"at t={action.at:g}"
        )
    if isinstance(action, Heal):
        return f"heal at t={action.at:g}"
    if isinstance(action, ImpairLink):
        parts = []
        if action.loss_rate:
            parts.append(f"{action.loss_rate:.0%} loss")
        if action.duplicate_rate:
            parts.append(f"{action.duplicate_rate:.0%} dup")
        if action.reorder_rate:
            parts.append(
                f"{action.reorder_rate:.0%} reorder (+{action.reorder_delay * 1e3:g} ms)"
            )
        if action.extra_latency:
            parts.append(f"+{action.extra_latency * 1e3:g} ms latency")
        if action.corrupt_rate:
            parts.append(f"{action.corrupt_rate:.0%} corrupt")
        until = f"–{action.until:g}" if action.until is not None else ""
        return (
            f"link {action.src}→{action.dst} {' '.join(parts)} "
            f"(t={action.at:g}{until})"
        )
    if isinstance(action, LatencySpike):
        dur = f" for {action.duration:g} s" if action.duration is not None else ""
        return f"+{action.extra * 1e3:g} ms latency spike at t={action.at:g}{dur}"
    if isinstance(action, Churn):
        machines = ",".join(f"m{m}" for m in action.machines)
        return (
            f"churn {machines}: {action.cycles}× crash→recover "
            f"(period {action.period:g} s, down {action.downtime:g} s) "
            f"from t={action.start:g}"
        )
    if isinstance(action, RandomCrashes):
        pool = (
            ",".join(f"m{m}" for m in action.candidates)
            if action.candidates is not None
            else "any"
        )
        rec = (
            f", recover +{action.recover_after:g} s"
            if action.recover_after is not None
            else ""
        )
        return (
            f"{action.count} seeded-random crashes in "
            f"[t={action.start:g}, +{action.window:g} s) of {pool}{rec}"
        )
    raise ScenarioError(f"undocumentable fault action {action!r}")  # pragma: no cover


def describe_switch(step: SwitchStep) -> str:
    """One human-readable cell for a switch step (trigger included)."""
    if isinstance(step, SwitchAt):
        return f"→`{step.protocol}` at t={step.at:g} (m{step.from_stack})"
    if isinstance(step, SwitchAfterDeliveries):
        return (
            f"→`{step.protocol}` after {step.count} deliveries on "
            f"m{step.on_stack} (m{step.from_stack})"
        )
    if isinstance(step, SwitchOnFault):
        return (
            f"→`{step.protocol}` {step.delay * 1e3:g} ms after fault "
            f"#{step.fault_index} (m{step.from_stack})"
        )
    if isinstance(step, SwitchAfterSwitch):
        delay = f" +{step.delay * 1e3:g} ms" if step.delay else ""
        if step.from_stack is not None:
            src = f"m{step.from_stack}"
        elif step.phase == "closed":
            src = "lowest alive"
        else:
            src = "phase stack"
        return f"→`{step.protocol}` once v{step.version} {step.phase}{delay} ({src})"
    if isinstance(step, SwitchIfStalled):
        src = f"m{step.from_stack}" if step.from_stack is not None else "lowest alive"
        return (
            f"→`{step.protocol}` if v{step.version} still open "
            f"{step.timeout:g} s after start ({src})"
        )
    raise ScenarioError(f"undocumentable switch step {step!r}")  # pragma: no cover


def _spec_extras(spec: ScenarioSpec) -> List[str]:
    """Non-default build knobs worth a mention in the faults cell."""
    extras = []
    if spec.loss_rate:
        extras.append(f"{spec.loss_rate:.0%} LAN loss")
    if spec.duplicate_rate:
        extras.append(f"{spec.duplicate_rate:.0%} LAN dup")
    if spec.corrupt_rate:
        extras.append(f"{spec.corrupt_rate:.0%} LAN corrupt")
    if not spec.checksum:
        extras.append("checksum off")
    if spec.load_burst > 1 or spec.load_jitter:
        extras.append(
            f"bursty load (burst={spec.load_burst}, jitter={spec.load_jitter:g})"
        )
    if not spec.guard_change_sn:
        extras.append("paper-literal (sn guard off)")
    if spec.reissue_policy != "drop":
        extras.append(f"reissue policy `{spec.reissue_policy}`")
    default_creation = ScenarioSpec.__dataclass_fields__["creation_cost"].default
    if spec.creation_cost != default_creation:
        extras.append(f"creation cost {spec.creation_cost * 1e3:g} ms")
    if spec.expected_faulty:
        extras.append(
            "expected-faulty " + ",".join(f"m{m}" for m in spec.expected_faulty)
        )
    return extras


def _scenario_row(spec: ScenarioSpec, campaigns: List[str]) -> str:
    faults = "; ".join(
        [describe_fault(a) for a in spec.faults] + _spec_extras(spec)
    ) or "—"
    switches = "; ".join(describe_switch(s) for s in spec.switches) or "—"
    flags = []
    if spec.with_gm:
        flags.append("GM")
    if spec.initial_protocol != ScenarioSpec.__dataclass_fields__["initial_protocol"].default:
        flags.append(f"init `{spec.initial_protocol}`")
    extras = f" ({', '.join(flags)})" if flags else ""
    campaign_cell = ", ".join(f"`{c}`" for c in campaigns) or "—"
    return (
        f"| `{spec.name}` | {spec.n}{extras} | {faults} | {switches} | "
        f"{campaign_cell} |"
    )


def generated_block() -> str:
    """The full generated catalogue (scenario + campaign tables)."""
    from .library import CAMPAIGNS, SCENARIOS  # late: library registers at import

    lines = [
        "## Scenarios",
        "",
        "| Scenario | n | Faults injected | Switch plan | Campaigns |",
        "|---|---|---|---|---|",
    ]
    membership = {
        name: [
            c.name
            for c in CAMPAIGNS.values()
            if c.name != "full" and any(s.name == name for s in c.scenarios)
        ]
        for name in SCENARIOS
    }
    for name in SCENARIOS:  # registration order, like the library source
        lines.append(_scenario_row(SCENARIOS[name], membership[name]))
    lines += [
        "",
        "## Campaigns",
        "",
        "| Campaign | Scenarios | Description |",
        "|---|---|---|",
    ]
    for name, campaign in CAMPAIGNS.items():
        members = (
            "every registered scenario"
            if name == "full"
            else ", ".join(f"`{s.name}`" for s in campaign.scenarios)
        )
        lines.append(f"| `{name}` | {members} | {campaign.description} |")
    return "\n".join(lines)


def update_doc(path: pathlib.Path) -> bool:
    """Replace the generated block inside *path*; returns True on change."""
    text = path.read_text(encoding="utf-8")
    try:
        head, rest = text.split(BEGIN_MARKER, 1)
        _, tail = rest.split(END_MARKER, 1)
    except ValueError:
        raise ScenarioError(
            f"{path} has no generated-catalogue markers; add "
            f"{BEGIN_MARKER!r} and {END_MARKER!r} first"
        ) from None
    new = head + BEGIN_MARKER + "\n" + generated_block() + "\n" + END_MARKER + tail
    if new == text:
        return False
    path.write_text(new, encoding="utf-8")
    return True
