"""Fault-injection scenarios and campaigns.

This package is the repo's *adversarial schedule space* made first-class:

* :mod:`~repro.scenarios.spec` — declarative :class:`ScenarioSpec` values
  composing a protocol stack, a workload, a switch plan, and a fault
  schedule (crashes/recoveries, partitions, link impairments, latency
  spikes, churn);
* :mod:`~repro.scenarios.switchplan` — when to replace the protocol:
  at a time, after N deliveries, or on fault detection;
* :mod:`~repro.scenarios.engine` — ``run_scenario`` / ``run_campaign``
  with every property checker applied and deterministic JSON reports;
* :mod:`~repro.scenarios.library` — ~10 predefined scenarios and the
  named campaigns (``smoke`` is the CI gate);
* ``python -m repro.scenarios`` — the CLI (see ``--help``).
"""

from .engine import (
    Campaign,
    CampaignResult,
    ScenarioResult,
    compare_reports,
    run_campaign,
    run_scenario,
)
from .library import (
    CAMPAIGNS,
    SCENARIOS,
    get_campaign,
    get_scenario,
    register_campaign,
    register_scenario,
)
from .spec import (
    Churn,
    Crash,
    FaultAction,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    RandomCrashes,
    Recover,
    ScenarioSpec,
)
from .serde import spec_from_dict, spec_from_json, spec_to_dict, spec_to_json
from .switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
    SwitchPlan,
    SwitchStep,
)

__all__ = [
    "ScenarioSpec",
    "FaultAction",
    "Crash",
    "Recover",
    "Partition",
    "PartitionOneWay",
    "Heal",
    "ImpairLink",
    "LatencySpike",
    "Churn",
    "RandomCrashes",
    "SwitchAt",
    "SwitchAfterDeliveries",
    "SwitchOnFault",
    "SwitchAfterSwitch",
    "SwitchIfStalled",
    "SwitchStep",
    "SwitchPlan",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
    "ScenarioResult",
    "Campaign",
    "CampaignResult",
    "run_scenario",
    "run_campaign",
    "compare_reports",
    "SCENARIOS",
    "CAMPAIGNS",
    "register_scenario",
    "register_campaign",
    "get_scenario",
    "get_campaign",
]
