"""repro: reproduction of "Structural and Algorithmic Issues of Dynamic
Protocol Update" (Rütti, Wojciechowski, Schiper; IPDPS 2006).

The library implements the paper's dynamic-protocol-update (DPU) solution
— a replacement module adding a level of indirection between service
callers and providers, plus the atomic-broadcast replacement algorithm —
together with every substrate it runs on: a deterministic discrete-event
simulator standing in for the paper's 7-PC cluster, a SAMOA-like protocol
kernel, a group-communication stack (UDP, reliable point-to-point,
failure detector, Chandra–Toueg consensus, atomic broadcast, group
membership), property checkers for the paper's correctness properties,
and the Maestro-style / Graceful-Adaptation-style baselines it compares
against.

Quickstart
----------
>>> from repro.experiments import build_group_comm_system   # doctest: +SKIP
>>> system = build_group_comm_system(n=3, seed=1)           # doctest: +SKIP

See ``examples/quickstart.py`` and DESIGN.md for the full tour.
"""

from .errors import (
    KernelError,
    NetworkError,
    PropertyViolation,
    ReplacementError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "KernelError",
    "NetworkError",
    "ReplacementError",
    "PropertyViolation",
]

# The canonical public API lives in the subpackages
# (repro.sim, repro.kernel, repro.net, repro.fd, repro.consensus,
#  repro.abcast, repro.gm, repro.dpu, repro.baselines, repro.metrics,
#  repro.workload, repro.experiments, repro.viz).
