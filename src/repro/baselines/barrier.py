"""Distributed barrier synchronisation (substrate for Graceful Adaptation).

The Graceful Adaptation baseline needs barrier synchronisation between
its phases — the very mechanism whose "implementation complexity in an
asynchronous network" the paper argues should be avoided.  This is the
classic coordinator barrier: everyone sends ``arrive`` to the
coordinator (lowest rank); once all arrived, the coordinator sends
``release`` to everyone.

Service vocabulary (service ``barrier``):

* call ``enter(barrier_id)``;
* response ``passed(barrier_id)``.

Cost per barrier: ``2(n-1)`` RP2P messages plus two message latencies —
these are the extra rounds the baseline-comparison benchmark charges to
Graceful Adaptation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set, Tuple

from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["BarrierModule", "BARRIER_SERVICE"]

BARRIER_SERVICE = "barrier"
_ARRIVE = "bar.arrive"
_RELEASE = "bar.release"
_BAR_BYTES = 16


class BarrierModule(Module):
    """Coordinator-based distributed barrier over RP2P."""

    PROVIDES = (BARRIER_SERVICE,)
    REQUIRES = (WellKnown.RP2P,)
    PROTOCOL = "barrier"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.group: Tuple[int, ...] = tuple(sorted(set(group)))
        self.coordinator = self.group[0]
        self.counters = Counter()
        #: Coordinator bookkeeping: barrier_id -> set of arrived ranks.
        self._arrived: Dict[Any, Set[int]] = {}
        self._released: Set[Any] = set()
        self.export_call(BARRIER_SERVICE, "enter", self._enter)
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)

    @property
    def is_coordinator(self) -> bool:
        return self.stack_id == self.coordinator

    # ------------------------------------------------------------------ #
    # Entering
    # ------------------------------------------------------------------ #
    def _enter(self, barrier_id: Any) -> None:
        self.counters.incr("entered")
        self.call(
            WellKnown.RP2P,
            "send",
            self.coordinator,
            (_ARRIVE, barrier_id, self.stack_id),
            _BAR_BYTES,
        )

    # ------------------------------------------------------------------ #
    # Coordinator + release path
    # ------------------------------------------------------------------ #
    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload):
            return NOT_MINE
        if payload[0] == _ARRIVE:
            if not self.is_coordinator:
                return None  # stale routing; claimed but ignored
            _, barrier_id, rank = payload
            if barrier_id in self._released:
                return None
            arrived = self._arrived.setdefault(barrier_id, set())
            arrived.add(rank)
            if arrived >= set(self.group):
                self._released.add(barrier_id)
                del self._arrived[barrier_id]
                self.counters.incr("released")
                for dst in self.group:
                    self.call(
                        WellKnown.RP2P, "send", dst, (_RELEASE, barrier_id), _BAR_BYTES
                    )
            return None
        if payload[0] == _RELEASE:
            _, barrier_id = payload
            self.respond(BARRIER_SERVICE, "passed", barrier_id)
            return None
        return NOT_MINE
