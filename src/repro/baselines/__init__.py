"""Baseline DPU solutions the paper compares against (Section 4.2/5.3).

Both provide the same ``r-abcast`` interface as the paper's Repl module,
so every workload, probe and benchmark runs unchanged on top of either —
the comparison experiments just swap the indirection layer.
"""

from .barrier import BARRIER_SERVICE, BarrierModule
from .graceful import GracefulAdaptorModule
from .maestro import MaestroSwitchModule
from .switchbase import DrainingSwitchModule

__all__ = [
    "BarrierModule",
    "BARRIER_SERVICE",
    "DrainingSwitchModule",
    "MaestroSwitchModule",
    "GracefulAdaptorModule",
]
