"""Shared drain-and-switch machinery for the baseline DPU solutions.

Both baselines the paper compares against (Maestro [20] and Graceful
Adaptation [6]) stop the old protocol *cleanly* before starting the new
one, instead of letting the two overlap as Algorithm 1 does.  The common
core is a **flush drain**:

1. on entering the draining phase, new application ABcasts are buffered
   (this is where the baselines block the application);
2. each stack ABcasts a *flush marker* through the old protocol;
3. total order guarantees that once a stack has Adelivered the markers of
   every group member, it has Adelivered everything any member sent
   before draining began — the old protocol is then locally quiescent;
4. when the solution-specific coordination layer learns that *all*
   stacks are quiescent, each stack unbinds the old module, creates the
   new one, rebinds, and replays its buffered messages.

Because nothing is ordered by the old protocol after the markers, no old
delivery can trail into the new protocol's epoch: total order across the
switch holds by construction.  The price — and the measured difference
from Algorithm 1 — is the application-visible blocking between steps 1
and 4.

Subclasses implement the coordination (who triggers the drain, how
"everyone is quiescent" is learned) by overriding the hooks at the
bottom.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..kernel.module import Module, NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, Time, ms
from ..sim.monitors import Counter

__all__ = ["DrainingSwitchModule"]

_NORMAL = "r.b.msg"
_FLUSH = "r.b.flush"
#: Wire overhead of the baseline indirection layer.
_HDR = 18


class DrainingSwitchModule(Module):
    """Base class of the Maestro-style and Graceful-style switch modules.

    Provides the same ``r-abcast`` interface as the paper's Repl module,
    so workloads, GM, probes and benchmarks are agnostic about which DPU
    solution runs underneath.
    """

    PROVIDES = (WellKnown.R_ABCAST,)
    REQUIRES = (WellKnown.ABCAST,)
    PROTOCOL = "baseline-switch"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        group: Sequence[int],
        initial_protocol: str,
        creation_cost: Duration = ms(5.0),
        name: Optional[str] = None,
        requires_extra: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(
            stack,
            name=name,
            requires=(WellKnown.ABCAST,) + tuple(requires_extra),
        )
        self.registry = registry
        self.group: Tuple[int, ...] = tuple(sorted(set(group)))
        self.current_protocol = initial_protocol
        self.creation_cost = creation_cost
        self.counters = Counter()
        self._epoch = 0
        self._next_rid = 0
        self._draining = False
        self._buffered: List[Tuple[Any, int]] = []
        self._blocked_since: Optional[Time] = None
        #: Total seconds the application spent blocked (buffered) here.
        self.app_blocked_total: Duration = 0.0
        self._flush_seen: Set[int] = set()
        self._switch_protocol: Optional[str] = None
        #: Hooks fired as ``hook(stack_id, epoch, prot, duration)``.
        self.on_switch_complete: List[Callable[..., None]] = []
        self._switch_started_at: Optional[Time] = None
        #: Deadline of an in-flight creation timer (survives crashes so
        #: ``on_restart`` can re-arm it; ``None`` when no switch is mid-creation).
        self._creation_due: Optional[Time] = None

        self.export_call(WellKnown.R_ABCAST, "abcast", self._rabcast)
        self.export_call(WellKnown.R_ABCAST, "change_protocol", self.request_change)
        self.export_query(WellKnown.R_ABCAST, "status", self._status)
        self.subscribe(WellKnown.ABCAST, "adeliver", self._on_adeliver)

    # ------------------------------------------------------------------ #
    # Application path
    # ------------------------------------------------------------------ #
    def _rabcast(self, m: Any, size_bytes: int) -> None:
        self.counters.incr("rabcasts")
        if self._draining:
            # *** The application is blocked here — the measured cost of
            # the drain-first baselines (paper, Section 5.3). ***
            if self._blocked_since is None:
                self._blocked_since = self.now
            self._buffered.append((m, size_bytes))
            self.counters.incr("app_calls_buffered")
            return
        self._forward(m, size_bytes)

    def _forward(self, m: Any, size_bytes: int) -> None:
        self.call(
            WellKnown.ABCAST,
            "abcast",
            (_NORMAL, self._epoch, m, size_bytes),
            size_bytes + _HDR,
        )

    def _on_adeliver(self, origin: int, frame: Any, size_bytes: int):
        if not (isinstance(frame, tuple) and frame and frame[0] in (_NORMAL, _FLUSH)):
            return NOT_MINE
        if frame[0] == _NORMAL:
            _, epoch, m, m_size = frame
            self.counters.incr("radelivers")
            self.respond(WellKnown.R_ABCAST, "adeliver", origin, m, m_size)
            return None
        _, epoch, rank = frame
        self._flush_seen.add(rank)
        if self._flush_seen >= set(self.group):
            self._on_locally_quiescent()
        return None

    # ------------------------------------------------------------------ #
    # The drain
    # ------------------------------------------------------------------ #
    def _begin_drain(self, prot: str) -> None:
        """Stop forwarding, emit the flush marker (idempotent per epoch)."""
        if self._draining:
            return
        self._draining = True
        self._switch_protocol = prot
        self._flush_seen = set()
        if self._switch_started_at is None:
            self._switch_started_at = self.now
        self.counters.incr("drains")
        self.call(
            WellKnown.ABCAST,
            "abcast",
            (_FLUSH, self._epoch, self.stack_id),
            _HDR,
        )

    def _perform_switch(self) -> None:
        """Unbind old, create new, rebind, replay the buffer."""
        prot = self._switch_protocol
        assert prot is not None
        self._epoch += 1
        self.stack.unbind(WellKnown.ABCAST)
        # Elapsed-time creation, matching the Repl module's model (see
        # repro.dpu.repl): classloading yields the CPU.
        cost = self.creation_cost * self.modules_replaced_factor()
        if cost > 0:
            self._creation_due = self.now + cost
            self.set_timer(cost, self._complete_switch, prot)
        else:
            self._complete_switch(prot)

    def on_restart(self) -> None:
        # A creation timer armed before the crash belongs to the dead
        # incarnation; if a switch was mid-creation (old module unbound,
        # new one not yet created) the stack would otherwise drain
        # forever.  Re-arm the remaining creation time from the surviving
        # deadline, mirroring repro.dpu.repl's restart resume.
        if self._creation_due is not None and self._switch_protocol is not None:
            self.set_timer(
                max(0.0, self._creation_due - self.now),
                self._complete_switch,
                self._switch_protocol,
            )

    def _complete_switch(self, prot: str) -> None:
        tag = f"{prot}/{type(self).__name__}/e{self._epoch}"
        self.registry.create_module(
            self.stack, prot, bind=True, factory_kwargs={"instance_tag": tag}
        )
        self.current_protocol = prot
        self._draining = False
        self._switch_protocol = None
        self._creation_due = None
        self.counters.incr("switches")
        if self._blocked_since is not None:
            self.app_blocked_total += self.now - self._blocked_since
            self._blocked_since = None
        backlog, self._buffered = self._buffered, []
        for m, size_bytes in backlog:
            self.counters.incr("buffered_replayed")
            self._forward(m, size_bytes)
        started = self._switch_started_at
        self._switch_started_at = None
        for hook in self.on_switch_complete:
            hook(
                self.stack_id,
                self._epoch,
                prot,
                (self.now - started) if started is not None else 0.0,
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        return {
            "epoch": self._epoch,
            "current_protocol": self.current_protocol,
            "draining": self._draining,
            "buffered": len(self._buffered),
            "app_blocked_total": self.app_blocked_total,
        }

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def request_change(self, prot: str) -> None:
        """Trigger a replacement to *prot* (solution-specific)."""
        raise NotImplementedError

    def _on_locally_quiescent(self) -> None:
        """All flush markers Adelivered here (solution-specific follow-up)."""
        raise NotImplementedError

    def modules_replaced_factor(self) -> int:
        """How many modules' worth of creation cost a switch pays."""
        return 1
