"""Maestro-style whole-stack replacement (baseline, after [20]).

The paper's reading of Maestro (Sections 4.2, 5.3):

* "Maestro supports only the replacement of complete protocol stacks" —
  to replace one protocol the whole stack containing it is replaced;
* a per-machine *stack switch* (SS) module finalises the local old stack
  and coordinates the start of the new stack;
* protocol modules must be extended with a ``finalize`` method — the DPU
  logic depends on the updateable protocols (poor modularity);
* "the application on top of the stack is blocked, which is not the
  case in [the paper's] solution".

This rendering keeps those measurable characteristics:

* the application is blocked from the moment the switch announcement
  arrives until the new stack is running (``app_blocked_total``);
* the whole updateable stack is re-created:
  :meth:`modules_replaced_factor` charges creation cost for the ABcast
  module *and* its substrate (consensus + rbcast-equivalent), defaulting
  to 3 modules' worth;
* coordination uses a group-wide announcement plus per-stack readiness
  messages over RP2P (2(n-1)+n extra messages per switch), the flush
  drain providing the "finalize" semantics.

Sequence: the initiator announces ``(switch_id, prot)`` to every stack;
each stack begins draining (application blocked, flush markers through
the old protocol); when a stack has Adelivered everyone's markers it
reports ``ready`` to the initiator; once the initiator has everyone's
``ready`` it broadcasts ``go``; every stack then replaces the stack and
unblocks the application.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set

from ..kernel.module import NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from .switchbase import DrainingSwitchModule

__all__ = ["MaestroSwitchModule"]

_ANNOUNCE = "ss.announce"
_READY = "ss.ready"
_GO = "ss.go"
_SS_BYTES = 32


class MaestroSwitchModule(DrainingSwitchModule):
    """The SS (stack switch) module of the Maestro-style baseline."""

    PROTOCOL = "maestro-ss"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        group: Sequence[int],
        initial_protocol: str,
        creation_cost: Duration = ms(5.0),
        whole_stack_modules: int = 3,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            stack,
            registry,
            group,
            initial_protocol,
            creation_cost=creation_cost,
            name=name,
            requires_extra=(WellKnown.RP2P,),
        )
        self.whole_stack_modules = whole_stack_modules
        self._switch_seq = 0
        self._current_switch: Optional[int] = None
        #: Initiator bookkeeping: switch_id -> ranks that reported ready.
        self._ready_from: Dict[int, Set[int]] = {}
        self._go_sent: Set[int] = set()
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)

    def modules_replaced_factor(self) -> int:
        # Whole-stack replacement: the ABcast module and its substrate are
        # all re-created (the paper's criticism of Maestro).
        return self.whole_stack_modules

    # ------------------------------------------------------------------ #
    # Coordination
    # ------------------------------------------------------------------ #
    def request_change(self, prot: str) -> None:
        self.registry.info(prot)  # fail fast
        self._switch_seq += 1
        switch_id = (self.stack_id << 20) | self._switch_seq
        self.counters.incr("change_requests")
        for dst in self.group:
            self.call(
                WellKnown.RP2P, "send", dst, (_ANNOUNCE, switch_id, prot), _SS_BYTES
            )

    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload):
            return NOT_MINE
        tag = payload[0]
        if tag == _ANNOUNCE:
            _, switch_id, prot = payload
            if self._current_switch is None:
                self._current_switch = switch_id
                self._switch_initiator = src
                self._begin_drain(prot)
            return None
        if tag == _READY:
            _, switch_id, rank = payload
            ready = self._ready_from.setdefault(switch_id, set())
            ready.add(rank)
            if ready >= set(self.group) and switch_id not in self._go_sent:
                self._go_sent.add(switch_id)
                for dst in self.group:
                    self.call(
                        WellKnown.RP2P, "send", dst, (_GO, switch_id), _SS_BYTES
                    )
            return None
        if tag == _GO:
            _, switch_id = payload
            if self._current_switch == switch_id:
                self._current_switch = None
                self._perform_switch()
            return None
        return NOT_MINE

    def _on_locally_quiescent(self) -> None:
        # Old stack finalised locally: report readiness to the initiator.
        self.counters.incr("ready_sent")
        self.call(
            WellKnown.RP2P,
            "send",
            self._switch_initiator,
            (_READY, self._current_switch, self.stack_id),
            _SS_BYTES,
        )
