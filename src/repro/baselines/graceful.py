"""Graceful-Adaptation-style component adaptation (baseline, after [6]).

The paper's reading of Graceful Adaptation (Sections 4.2, 5.3):

* each updateable module hosts Adaptation-Aware Components (AACs), the
  alternative implementations; a Component Adaptor (CA) coordinates
  (1) *prepare*, (2) *deactivate old AAC*, (3) *activate new AAC*;
* the phases are synchronised with **barrier synchronisation** — the
  mechanism the paper argues against for asynchronous networks;
* "each AAC in a module m can only use the services required by m",
  which **limits the possible replacements** — the structural
  restriction the paper's own solution removes.

This rendering keeps those measurable/behavioural characteristics:

* three barrier rounds per adaptation (prepare, deactivated, activated),
  each costing 2(n-1) RP2P messages plus two latencies;
* the application is blocked only between *deactivate* and *activate*
  (shorter than Maestro's announcement-to-go window, but non-zero —
  unlike Algorithm 1);
* :meth:`request_change` **refuses protocols whose requirements exceed
  the hosting module's service set** (:class:`RequirementError`) —
  experiment X2 demonstrates that switching the sequencer ABcast to the
  consensus-based one fails here while the paper's solution performs it.

Sequence: the initiator announces the adaptation over RP2P; every stack
enters barrier *prepare*; after passing it, every stack begins the flush
drain (deactivation of the old AAC — application blocked); when locally
quiescent it enters barrier *deactivated*; after passing that barrier it
performs the switch and enters barrier *activated*; when the final
barrier passes the adaptation is complete (the switch itself finished at
activation; the last barrier is the CA's completion bookkeeping).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Set, Tuple

from ..errors import RequirementError
from ..kernel.module import NOT_MINE
from ..kernel.registry import ProtocolRegistry
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from .barrier import BARRIER_SERVICE
from .switchbase import DrainingSwitchModule

__all__ = ["GracefulAdaptorModule"]

_ANNOUNCE = "ca.announce"
_CA_BYTES = 32


class GracefulAdaptorModule(DrainingSwitchModule):
    """The CA (component adaptor) of the Graceful-Adaptation baseline."""

    PROTOCOL = "graceful-ca"

    def __init__(
        self,
        stack: Stack,
        registry: ProtocolRegistry,
        group: Sequence[int],
        initial_protocol: str,
        allowed_services: Sequence[str],
        creation_cost: Duration = ms(5.0),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            stack,
            registry,
            group,
            initial_protocol,
            creation_cost=creation_cost,
            name=name,
            requires_extra=(WellKnown.RP2P, BARRIER_SERVICE),
        )
        #: The services the hosting module requires: an AAC may use these
        #: and nothing else (the paper's Section 4.2 restriction).
        self.allowed_services: Set[str] = set(allowed_services)
        self._adaptation_seq = 0
        self._phase: Optional[str] = None  # None | prepare | deactivating | activating
        self._adaptation_id: Optional[Tuple[int, int]] = None
        self._target: Optional[str] = None
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)
        self.subscribe(BARRIER_SERVICE, "passed", self._on_barrier_passed)

    # ------------------------------------------------------------------ #
    # Coordination
    # ------------------------------------------------------------------ #
    def request_change(self, prot: str) -> None:
        info = self.registry.info(prot)
        excess = set(info.requires) - self.allowed_services
        if excess:
            # The defining restriction of this baseline: an AAC cannot
            # require services its hosting module does not already use.
            raise RequirementError(
                f"Graceful Adaptation cannot install {prot!r}: it requires "
                f"{sorted(excess)} outside the hosting module's services "
                f"{sorted(self.allowed_services)}"
            )
        self._adaptation_seq += 1
        adaptation_id = (self.stack_id, self._adaptation_seq)
        self.counters.incr("change_requests")
        for dst in self.group:
            self.call(
                WellKnown.RP2P, "send", dst, (_ANNOUNCE, adaptation_id, prot), _CA_BYTES
            )

    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _ANNOUNCE):
            return NOT_MINE
        _, adaptation_id, prot = payload
        if self._phase is not None:
            return None  # one adaptation at a time
        self._phase = "prepare"
        self._adaptation_id = adaptation_id
        self._target = prot
        self.counters.incr("adaptations_started")
        self.call(BARRIER_SERVICE, "enter", ("prepare", adaptation_id))
        return None

    def _on_barrier_passed(self, barrier_id: Any) -> None:
        phase, adaptation_id = barrier_id
        if adaptation_id != self._adaptation_id:
            return
        if phase == "prepare" and self._phase == "prepare":
            # Phase 2: deactivate the old AAC — drain it; the application
            # blocks from here until activation.
            self._phase = "deactivating"
            assert self._target is not None
            self._begin_drain(self._target)
        elif phase == "deactivated" and self._phase == "deactivating":
            # Phase 3: activate the new AAC.
            self._phase = "activating"
            self._perform_switch()
            self.call(BARRIER_SERVICE, "enter", ("activated", adaptation_id))
        elif phase == "activated" and self._phase == "activating":
            self._phase = None
            self._adaptation_id = None
            self._target = None
            self.counters.incr("adaptations_completed")

    def _on_locally_quiescent(self) -> None:
        # Old AAC drained locally: synchronise deactivation group-wide.
        self.call(BARRIER_SERVICE, "enter", ("deactivated", self._adaptation_id))
