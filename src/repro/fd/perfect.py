"""A perfect failure detector (simulation-only oracle).

Reads crash state straight from the simulated machines: suspects exactly
the crashed peers, after a configurable detection delay, and never makes
a mistake.  Real systems cannot build this (it is strictly stronger than
◊S); it exists here to

* isolate protocol logic from FD noise in unit tests, and
* measure how much of an experiment's behaviour is attributable to
  detector quality (swap :class:`HeartbeatFd` ↔ :class:`PerfectFd` and
  compare — an ablation the paper's testbed could not run).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, TYPE_CHECKING

from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from .base import FdModuleBase

if TYPE_CHECKING:  # R1 seam purity: the sim oracle is typing-only here
    from ..sim.process import Machine

__all__ = ["PerfectFd"]


class PerfectFd(FdModuleBase):
    """Suspects exactly the crashed machines, ``detection_delay`` late."""

    REQUIRES = ()
    PROTOCOL = "fd-perfect"

    def __init__(
        self,
        stack: Stack,
        machines: Sequence[Machine],
        detection_delay: Duration = ms(10.0),
        poll_period: Duration = ms(5.0),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, [m.machine_id for m in machines], name=name)
        self._machines: Dict[int, Machine] = {
            m.machine_id: m for m in machines if m.machine_id != stack.stack_id
        }
        self.detection_delay = detection_delay
        self.poll_period = poll_period

    def on_start(self) -> None:
        self._poll()

    def on_restart(self) -> None:
        # The poll timer died with the old incarnation; re-arm it.
        self._poll()

    def _poll(self) -> None:
        now = self.now
        for rank, machine in self._machines.items():
            if (
                machine.crashed
                and machine.crashed_at is not None
                and now >= machine.crashed_at + self.detection_delay
            ):
                self._mark_suspected(rank)
            elif not machine.crashed and rank in self._suspected:
                # The machine recovered (crash-recovery runs): the oracle
                # sees it immediately and lifts the suspicion.
                self._mark_restored(rank)
        # The wheel re-arms itself and is never cancelled: fast path.
        self.set_timer_fast(self.poll_period, self._poll)
