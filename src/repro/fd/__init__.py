"""Failure detectors.

``HeartbeatFd`` is the realistic adaptive ◊S detector of the paper's FD
module; ``PerfectFd`` and ``OracleFd`` are simulation-only instruments for
tests and ablations.  All three provide the kernel service ``fd``.
"""

from .base import FdModuleBase
from .heartbeat import HeartbeatFd
from .oracle import OracleFd
from .perfect import PerfectFd

__all__ = ["FdModuleBase", "HeartbeatFd", "PerfectFd", "OracleFd"]
