"""A scripted failure detector for adversarial tests.

:class:`OracleFd` does nothing on its own: tests drive it explicitly with
:meth:`inject_suspicion` / :meth:`inject_restore`, or schedule scripted
(time, action, rank) steps.  Property-based tests use it to explore
arbitrary ◊S-compatible suspicion patterns — including pathological ones
(suspect everyone, flap forever, suspect the coordinator at the worst
instant) — while the simulated machines stay up.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..kernel.stack import Stack
from ..sim.clock import Time
from .base import FdModuleBase

__all__ = ["OracleFd"]

#: A scripted step: (absolute time, "suspect" | "restore", rank).
Script = Iterable[Tuple[Time, str, int]]


class OracleFd(FdModuleBase):
    """A test-controlled failure detector."""

    REQUIRES = ()
    PROTOCOL = "fd-oracle"

    def __init__(
        self,
        stack: Stack,
        peers: Sequence[int],
        script: Optional[Script] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, peers, name=name)
        self._script = sorted(script) if script is not None else []

    def on_start(self) -> None:
        self._arm_script(from_time=None)

    def on_restart(self) -> None:
        # Timers armed before the crash died with the old incarnation;
        # re-arm the not-yet-due tail of the script (steps whose instant
        # already passed stay consumed, matching what an external driver
        # of a real oracle would observe).
        self._arm_script(from_time=self.now)

    def _arm_script(self, from_time: Optional[float]) -> None:
        for time, action, rank in self._script:
            if action not in ("suspect", "restore"):
                raise ValueError(f"unknown oracle action {action!r}")
            if from_time is not None and time <= from_time:
                continue
            delay = max(0.0, time - self.now)
            if action == "suspect":
                self.set_timer(delay, self.inject_suspicion, rank)
            else:
                self.set_timer(delay, self.inject_restore, rank)

    # ------------------------------------------------------------------ #
    # Test hooks
    # ------------------------------------------------------------------ #
    def inject_suspicion(self, rank: int) -> None:
        """Make this detector suspect *rank* right now."""
        self._mark_suspected(rank)

    def inject_restore(self, rank: int) -> None:
        """Make this detector trust *rank* again right now."""
        self._mark_restored(rank)
