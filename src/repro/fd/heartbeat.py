"""Heartbeat failure detector (the realistic ◊S implementation).

Every process sends a small heartbeat datagram to every peer each
``period``; a peer unheard-from for ``timeout`` seconds is suspected.
When a heartbeat arrives from a suspected peer the suspicion is dropped
**and that peer's timeout is increased** (multiplied by ``backoff``, up to
``max_timeout``) — the standard adaptive trick that yields the ◊S
*eventual* accuracy property in partially synchronous runs: after finitely
many false suspicions the timeout exceeds the real message delay and the
peer is never wrongly suspected again.

Heartbeats ride raw UDP (not RP2P): a retransmitted heartbeat would be
worse than a missed one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..kernel.module import NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from .base import FdModuleBase

__all__ = ["HeartbeatFd"]

_HB = "fd.hb"
#: Wire size of a heartbeat datagram payload (rank + epoch).
_HB_BYTES = 12

#: Defaults tuned for the simulated LAN: sub-ms delays, so 50 ms períod /
#: 200 ms initial timeout keeps FD traffic negligible next to the load.
DEFAULT_PERIOD: Duration = ms(50.0)
DEFAULT_TIMEOUT: Duration = ms(200.0)
DEFAULT_MAX_TIMEOUT: Duration = ms(2000.0)


class HeartbeatFd(FdModuleBase):
    """Adaptive heartbeat ◊S failure detector over UDP."""

    REQUIRES = (WellKnown.UDP,)
    PROTOCOL = "fd-heartbeat"

    def __init__(
        self,
        stack: Stack,
        peers: Sequence[int],
        period: Duration = DEFAULT_PERIOD,
        timeout: Duration = DEFAULT_TIMEOUT,
        backoff: float = 1.5,
        max_timeout: Duration = DEFAULT_MAX_TIMEOUT,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, peers, name=name)
        if period <= 0 or timeout <= 0:
            raise ValueError("period and timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.period = period
        self.backoff = backoff
        self.max_timeout = max_timeout
        self._timeout: Dict[int, Duration] = {p: timeout for p in self.peers}
        self._last_heard: Dict[int, float] = {}
        self.false_suspicions = 0
        self.subscribe(WellKnown.UDP, "deliver", self._on_udp)

    def on_start(self) -> None:
        now = self.now
        for p in self.peers:
            self._last_heard[p] = now
        self._tick()

    # ------------------------------------------------------------------ #
    # Periodic work: send heartbeats, check timeouts
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        for p in self.peers:
            self.call(WellKnown.UDP, "send", p, (_HB, self.stack_id), _HB_BYTES)
        now = self.now
        for p in self.peers:
            if p in self._suspected:
                continue
            if now - self._last_heard[p] > self._timeout[p]:
                self._mark_suspected(p)
        self.set_timer(self.period, self._tick)

    # ------------------------------------------------------------------ #
    # Heartbeat receipt
    # ------------------------------------------------------------------ #
    def _on_udp(self, src: int, payload, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _HB):
            return NOT_MINE
        sender = payload[1]
        self._last_heard[sender] = self.now
        if sender in self._suspected:
            # False suspicion: repent and adapt the timeout upward.
            self.false_suspicions += 1
            self._timeout[sender] = min(
                self._timeout[sender] * self.backoff, self.max_timeout
            )
            self._mark_restored(sender)

    def current_timeout(self, rank: int) -> Duration:
        """The adaptive timeout currently applied to *rank*."""
        return self._timeout[rank]
