"""Heartbeat failure detector (the realistic ◊S implementation).

Every process sends a small heartbeat datagram to every peer each
``period``; a peer unheard-from for ``timeout`` seconds is suspected.
When a heartbeat arrives from a suspected peer the suspicion is dropped
**and that peer's timeout is increased** (multiplied by ``backoff``, up to
``max_timeout``) — the standard adaptive trick that yields the ◊S
*eventual* accuracy property in partially synchronous runs: after finitely
many false suspicions the timeout exceeds the real message delay and the
peer is never wrongly suspected again.

Crash-recovery support:

* the heartbeat payload carries the sender's **incarnation epoch**
  (``(tag, rank, epoch)``; the documented rank + epoch wire format of
  ``_HB_BYTES``).  A heartbeat from an epoch *older* than the highest one
  seen from that peer is a straggler from a dead incarnation — e.g.
  delayed by a latency spike or reorder burst — and is dropped instead
  of falsely refreshing the peer's liveness;
* a heartbeat from a *newer* epoch announces a restarted peer: the
  suspicion is lifted **without** the false-suspicion penalty (the
  suspicion was correct — the peer really was down) and the adaptive
  timeout resets to its initial value for the new incarnation;
* :meth:`on_restart` re-arms the tick wheel when this detector's own
  machine recovers, and grants every peer a fresh grace period so stale
  pre-crash ``_last_heard`` values do not trigger an instant suspicion
  storm;
* peers may be added after construction (:meth:`watch`) — GM re-join
  admits members dynamically — and heartbeats from a not-yet-watched
  rank auto-register it, so no per-peer table ever raises ``KeyError``.

Heartbeats ride raw UDP (not RP2P): a retransmitted heartbeat would be
worse than a missed one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..kernel.module import NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from .base import FdModuleBase

__all__ = ["HeartbeatFd"]

_HB = "fd.hb"
#: Wire size of a heartbeat datagram payload (rank + epoch).
_HB_BYTES = 12

#: Defaults tuned for the simulated LAN: sub-ms delays, so 50 ms period /
#: 200 ms initial timeout keeps FD traffic negligible next to the load.
DEFAULT_PERIOD: Duration = ms(50.0)
DEFAULT_TIMEOUT: Duration = ms(200.0)
DEFAULT_MAX_TIMEOUT: Duration = ms(2000.0)


class HeartbeatFd(FdModuleBase):
    """Adaptive heartbeat ◊S failure detector over UDP."""

    REQUIRES = (WellKnown.UDP,)
    PROTOCOL = "fd-heartbeat"

    def __init__(
        self,
        stack: Stack,
        peers: Sequence[int],
        period: Duration = DEFAULT_PERIOD,
        timeout: Duration = DEFAULT_TIMEOUT,
        backoff: float = 1.5,
        max_timeout: Duration = DEFAULT_MAX_TIMEOUT,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, peers, name=name)
        if period <= 0 or timeout <= 0:
            raise ValueError("period and timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.period = period
        self.initial_timeout = timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self._timeout: Dict[int, Duration] = {p: timeout for p in self.peers}
        self._last_heard: Dict[int, float] = {}
        #: Highest incarnation epoch seen per peer (absent = never heard).
        self._peer_epoch: Dict[int, int] = {}
        self.false_suspicions = 0
        #: Heartbeats dropped because they came from a dead incarnation.
        self.stale_heartbeats_dropped = 0
        #: Peer restarts observed (epoch advanced in a heartbeat).
        self.restarts_observed = 0
        self.subscribe(WellKnown.UDP, "deliver", self._on_udp)

    def on_start(self) -> None:
        now = self.now
        for p in self.peers:
            self._last_heard[p] = now
        self._tick()

    def on_restart(self) -> None:
        # The tick timer died with the old incarnation.  Reset every
        # peer's deadline to "heard just now" — the surviving
        # ``_last_heard`` values predate the outage and would otherwise
        # suspect every peer on the first post-recovery tick — then
        # re-arm the wheel (the immediate tick also announces our new
        # epoch to the group, which is what lifts their suspicion of us).
        now = self.now
        for p in self.peers:
            self._last_heard[p] = now
        self._tick()

    # ------------------------------------------------------------------ #
    # Dynamic peers
    # ------------------------------------------------------------------ #
    def watch(self, rank: int) -> None:
        """Start monitoring *rank* (a peer admitted after construction).

        Idempotent; grants the new peer a full fresh timeout before the
        first suspicion check.
        """
        if rank == self.stack_id or rank in self._timeout:
            return
        if rank not in self.peers:
            self.peers = tuple(sorted((*self.peers, rank)))
        self._timeout[rank] = self.initial_timeout
        self._last_heard[rank] = self.now

    # ------------------------------------------------------------------ #
    # Periodic work: send heartbeats, check timeouts
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        epoch = self.stack.machine.epoch
        for p in self.peers:
            self.call(WellKnown.UDP, "send", p, (_HB, self.stack_id, epoch), _HB_BYTES)
        now = self.now
        for p in self.peers:
            if p in self._suspected:
                continue
            last = self._last_heard.setdefault(p, now)
            if now - last > self._timeout.setdefault(p, self.initial_timeout):
                self._mark_suspected(p)
        # The wheel re-arms itself and is never cancelled: fast path.
        self.set_timer_fast(self.period, self._tick)

    # ------------------------------------------------------------------ #
    # Heartbeat receipt
    # ------------------------------------------------------------------ #
    def _on_udp(self, src: int, payload, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _HB):
            return NOT_MINE
        _, sender, epoch = payload
        known = self._peer_epoch.get(sender)
        if known is not None and epoch < known:
            # Straggler from a dead incarnation: it must not restore a
            # (correctly) suspected peer nor refresh its liveness.
            self.stale_heartbeats_dropped += 1
            return None
        self.watch(sender)  # first sight of a dynamically joined peer
        restarted = known is not None and epoch > known
        self._peer_epoch[sender] = epoch
        self._last_heard[sender] = self.now
        if restarted:
            # The peer really was down and came back: reset its adaptive
            # timeout for the new incarnation and lift the suspicion
            # without the false-suspicion penalty.
            self.restarts_observed += 1
            self._timeout[sender] = self.initial_timeout
            self._mark_restored(sender)
        elif sender in self._suspected:
            # False suspicion: repent and adapt the timeout upward.
            self.false_suspicions += 1
            self._timeout[sender] = min(
                self._timeout[sender] * self.backoff, self.max_timeout
            )
            self._mark_restored(sender)
        return None

    def current_timeout(self, rank: int) -> Duration:
        """The adaptive timeout currently applied to *rank*."""
        return self._timeout.get(rank, self.initial_timeout)
