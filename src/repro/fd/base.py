"""Failure-detector service contract.

The paper's FD module "implements a failure detector; we assume that it
ensures the properties of the ◊S failure detector" — eventually-strong:

* **strong completeness** — every crashed process is eventually suspected
  by every correct process, permanently;
* **eventual weak accuracy** — eventually some correct process is never
  suspected by any correct process.

Service vocabulary (service name ``fd``):

* query ``suspects()`` → frozenset of currently suspected ranks;
* query ``is_suspected(rank)`` → bool;
* response ``suspect(rank)`` — rank newly added to the suspect list;
* response ``restore(rank)`` — rank removed from the suspect list
  (◊S detectors may wrongly suspect and later repent).

:class:`FdModuleBase` implements the bookkeeping shared by all detectors;
concrete detectors decide *when* to call :meth:`_mark_suspected` /
:meth:`_mark_restored`.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Set

from ..kernel.module import Module
from ..kernel.service import WellKnown
from ..kernel.stack import Stack

__all__ = ["FdModuleBase"]


class FdModuleBase(Module):
    """Shared machinery of the failure detectors (suspect-set + events)."""

    PROVIDES = (WellKnown.FD,)
    PROTOCOL = "fd-base"

    def __init__(
        self,
        stack: Stack,
        peers: Sequence[int],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        #: All ranks this detector monitors (excluding self).
        self.peers: tuple = tuple(p for p in peers if p != stack.stack_id)
        self._suspected: Set[int] = set()
        self.export_query(WellKnown.FD, "suspects", self.suspects)
        self.export_query(WellKnown.FD, "is_suspected", self.is_suspected)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def suspects(self) -> FrozenSet[int]:
        """The current suspect set (a snapshot)."""
        return frozenset(self._suspected)

    def is_suspected(self, rank: int) -> bool:
        """Whether *rank* is currently suspected."""
        return rank in self._suspected

    # ------------------------------------------------------------------ #
    # State transitions (for subclasses)
    # ------------------------------------------------------------------ #
    def _mark_suspected(self, rank: int) -> None:
        """Add *rank* to the suspect set, emitting ``suspect`` on change."""
        if rank in self._suspected or rank == self.stack_id:
            return
        self._suspected.add(rank)
        self.respond(WellKnown.FD, "suspect", rank)

    def _mark_restored(self, rank: int) -> None:
        """Remove *rank* from the suspect set, emitting ``restore`` on change."""
        if rank not in self._suspected:
            return
        self._suspected.discard(rank)
        self.respond(WellKnown.FD, "restore", rank)
