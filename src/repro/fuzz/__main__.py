"""CLI: fuzz the schedule space, shrink the hits, explore the model.

Examples
--------
Fuzz a fixed-seed budget through the guarded replacement layer (the CI
smoke shape: expected clean)::

    python -m repro.fuzz --seed 11 --budget 40 --jobs 4

Same budget through the paper-literal layer (``--unguarded``): the known
anomalies surface, each violating schedule is ddmin-shrunk, and the
minimal reproducers land in ``--shrunk-dir`` as replayable spec JSON::

    python -m repro.fuzz --seed 11 --budget 40 --unguarded --shrunk-dir out/

Replay a shrunk reproducer (no generator in the loop)::

    python -m repro.fuzz --replay out/fuzz-11-17.json

Exhaustively explore the switch-chain model (every interleaving, chain
agreement checked on each)::

    python -m repro.fuzz --explore --stacks 2 --versions 2
    python -m repro.fuzz --explore --stacks 2 --versions 2 --bug stack0_skips_guard

Exit status: 0 = clean; 1 = violations found (fuzz) or violating
interleavings (explorer); 2 = usage error; 4 = a violation did not
reproduce on replay (the engine is deterministic, so this means the
fuzz harness itself is broken — CI treats it as its own failure class).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from ..errors import ReproError, ScenarioError
from ..scenarios.engine import run_scenario
from ..scenarios.serde import spec_from_json, spec_to_json
from ..viz import render_table
from .campaign import run_fuzz
from .explorer import ExplorerConfig, explore
from .generator import FuzzConfig

#: Exit code for violations that fail to reproduce on replay.
EXIT_UNSHRINKABLE = 4


def _cmd_explore(args: argparse.Namespace) -> int:
    """Exhaustive model exploration (see :mod:`~repro.fuzz.explorer`)."""
    try:
        config = ExplorerConfig(
            stacks=args.stacks,
            versions=args.versions,
            guard=not args.unguarded,
            bug=args.bug,
        )
        result = explore(config)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_table(
        ["stacks", "versions", "guard", "bug", "interleavings", "violating",
         "outcomes", "states"],
        [(config.stacks, config.versions, config.guard, config.bug or "—",
          result.interleavings, result.violating, len(result.outcomes),
          result.states)],
        title="Exhaustive switch-chain exploration",
    ))
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    if result.violating:
        for trace in result.counterexamples[:3]:
            print(f"COUNTEREXAMPLE {' '.join(trace)}", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay one serde spec JSON file through ``run_scenario``."""
    try:
        spec = spec_from_json(pathlib.Path(args.replay).read_text(encoding="utf-8"))
        result = run_scenario(spec, seed=args.run_seed, trace=args.trace)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdict = "ok" if result.ok else "FAIL"
    print(f"{spec.name}: {verdict} ({result.violations_total} violation(s))")
    for prop, violations in sorted(result.violations.items()):
        for violation in violations[:3]:
            print(f"VIOLATION {prop}: {violation}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """The main fuzz loop: generate, run, replay-confirm, shrink."""
    try:
        config = FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            run_seed=args.run_seed,
            guard_change_sn=not args.unguarded,
        )
        report = run_fuzz(
            config, jobs=args.jobs, trace=args.trace, shrink=not args.no_shrink,
            chunk_size=args.chunk_size,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        (run["index"], run["name"], run["n"],
         "ok" if run["ok"] else "FAIL", run["violations_total"])
        for run in report.runs
    ]
    print(render_table(
        ["#", "spec", "n", "verdict", "violations"],
        rows,
        title=(
            f"Fuzz seed {config.seed}, budget {config.budget} "
            f"({'guarded' if config.guard_change_sn else 'PAPER-LITERAL'})"
        ),
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.out}")
    if args.json:
        print(report.to_json())
    if args.shrunk_dir and report.reproducers:
        shrunk_dir = pathlib.Path(args.shrunk_dir)
        shrunk_dir.mkdir(parents=True, exist_ok=True)
        from ..scenarios.serde import spec_from_dict

        for rep in report.reproducers:
            if not rep["reproducible"]:
                continue
            path = shrunk_dir / f"{rep['name']}.json"
            path.write_text(
                spec_to_json(spec_from_dict(rep["spec"])) + "\n", encoding="utf-8"
            )
            print(f"shrunk reproducer written to {path}")
    for rep in report.reproducers:
        if rep["reproducible"]:
            orig, shrunk = rep["original_size"], rep["shrunk_size"]
            print(
                f"REPRODUCER [{rep['name']}] {sorted(rep['violated'])}: "
                f"faults {orig['faults']}->{shrunk['faults']}, "
                f"switches {orig['switches']}->{shrunk['switches']}, "
                f"n {orig['n']}->{shrunk['n']}",
                file=sys.stderr,
            )
        else:
            print(
                f"UNSHRINKABLE [{rep['name']}]: violation did not reproduce "
                f"on replay — fuzz harness determinism is broken",
                file=sys.stderr,
            )
    if report.unshrinkable:
        return EXIT_UNSHRINKABLE
    if not report.ok:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status (see module doc)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Fuzz the fault×switch schedule space with shrinking, or "
            "exhaustively explore the small-scope switch-chain model."
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--explore", action="store_true",
                      help="exhaustively enumerate the switch-chain model "
                           "instead of fuzzing")
    mode.add_argument("--replay", default=None, metavar="SPEC_JSON",
                      help="replay one serde spec JSON file and exit")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed: names the schedule family "
                             "(default: 0)")
    parser.add_argument("--budget", type=int, default=50, metavar="N",
                        help="how many schedules to generate (default: 50)")
    parser.add_argument("--run-seed", type=int, default=0, metavar="N",
                        help="simulation seed every schedule runs at "
                             "(default: 0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the budget over N warm worker processes "
                             "(0 = one per CPU; default: 1). The report is "
                             "byte-identical for any N")
    parser.add_argument("--chunk-size", type=int, default=None, metavar="N",
                        help="cells per worker chunk (default: auto). The "
                             "report is byte-identical for any chunk size")
    parser.add_argument("--trace", choices=("structural", "full", "off"),
                        default="structural",
                        help="kernel trace depth per run (default: structural)")
    parser.add_argument("--unguarded", action="store_true",
                        help="fuzz the paper-literal replacement layer "
                             "(guard_change_sn=False); for --explore, drop "
                             "the model's delivery-time guard")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip ddmin shrinking of violating schedules")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON fuzz report here")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report to stdout")
    parser.add_argument("--shrunk-dir", default=None, metavar="DIR",
                        help="write each shrunk reproducer as replayable "
                             "spec JSON into DIR")
    parser.add_argument("--stacks", type=int, default=2,
                        help="[--explore] model stacks (2..3; default: 2)")
    parser.add_argument("--versions", type=int, default=2,
                        help="[--explore] model versions (2..3; default: 2)")
    parser.add_argument("--bug", default=None, choices=("stack0_skips_guard",),
                        help="[--explore] seed a known model bug (checker-"
                             "teeth demonstration)")
    args = parser.parse_args(argv)

    if args.budget < 1:
        parser.error("--budget must be >= 1")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.explore:
        return _cmd_explore(args)
    if args.replay:
        return _cmd_replay(args)
    return _cmd_fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
