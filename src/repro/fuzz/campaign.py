"""Run a fuzz budget through the campaign engine and shrink the hits.

:func:`run_fuzz` is the fuzzer's whole loop as a pure function:

1. generate the budget of specs for the seed (:mod:`~repro.fuzz.generator`);
2. run them as one campaign through the deterministic engine —
   ``--jobs`` fan-out and trace depth come for free, and the merge order
   is fixed, so the report is independent of parallelism;
3. replay every violating spec once (a violation that does not
   reproduce on replay is flagged **unshrinkable** — with a
   deterministic engine that means the harness itself is broken, and
   the CLI turns it into a distinct exit code);
4. ddmin-shrink each reproducing violator (serially, in index order)
   and embed the minimal spec as replayable serde JSON.

The resulting :class:`FuzzReport` serialises to byte-identical JSON for
identical ``(config, trace)`` inputs — the fuzz analogue of the campaign
goldens, pinned across reruns and ``--jobs`` values by the integration
tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..scenarios.engine import Campaign, run_campaign
from ..scenarios.serde import spec_to_dict
from .generator import FuzzConfig, generate_specs
from .shrink import guard_sensitivity_predicate, shrink_spec, violation_predicate

__all__ = ["FuzzReport", "run_fuzz"]


@dataclass
class FuzzReport:
    """Everything one fuzz run produced, JSON-ready and deterministic."""

    config: FuzzConfig
    trace: str
    #: One summary row per generated spec, in index order.
    runs: List[Dict[str, Any]] = field(default_factory=list)
    #: One entry per violating spec: original/shrunk sizes + serde JSON.
    reproducers: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The whole budget ran violation-free."""
        return all(run["ok"] for run in self.runs)

    @property
    def violating(self) -> int:
        """How many generated specs violated at least one property."""
        return sum(1 for run in self.runs if not run["ok"])

    @property
    def unshrinkable(self) -> int:
        """Violations that did not reproduce on replay (harness bug)."""
        return sum(1 for rep in self.reproducers if not rep["reproducible"])

    def to_dict(self) -> Dict[str, Any]:
        """A plain, deterministically-serialisable dict."""
        return {
            # Note: the trace depth is deliberately NOT part of the report
            # (mirroring campaign reports), so the structural/off
            # byte-identity pin holds for violation-free budgets.
            "fuzz": {
                "generator_seed": self.config.seed,
                "budget": self.config.budget,
                "run_seed": self.config.run_seed,
                "guard_change_sn": self.config.guard_change_sn,
            },
            "ok": self.ok,
            "violating": self.violating,
            "unshrinkable": self.unshrinkable,
            "runs": self.runs,
            "reproducers": self.reproducers,
        }

    def to_json(self, indent: int = 2) -> str:
        """Byte-identical for identical ``(config, trace)`` inputs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_fuzz(
    config: FuzzConfig,
    jobs: int = 1,
    trace: str = "structural",
    shrink: bool = True,
    chunk_size: Optional[int] = None,
) -> FuzzReport:
    """Fuzz one budget: generate, run, replay-confirm, shrink.

    The bulk run fans out over *jobs* warm workers via the campaign
    engine (:mod:`repro.parallel` — the pool is shared with scenario
    campaigns and stays alive between budgets); shrinking runs serially
    in index order (each ddmin step depends on the previous verdict), so
    the report stays byte-identical for any *jobs* × *chunk_size*
    combination.
    """
    specs = generate_specs(config)
    campaign = Campaign(
        name=f"{config.name_prefix}-seed{config.seed}",
        scenarios=tuple(specs),
        description=f"fuzz budget {config.budget} of generator seed {config.seed}",
    )
    bulk = run_campaign(
        campaign,
        seeds=(config.run_seed,),
        jobs=jobs,
        trace=trace,
        chunk_size=chunk_size,
    )

    report = FuzzReport(config=config, trace=trace)
    predicate = violation_predicate(seed=config.run_seed, trace=trace)
    for index, (spec, result) in enumerate(zip(specs, bulk.results)):
        report.runs.append(
            {
                "index": index,
                "name": result.name,
                "n": result.n,
                "ok": result.ok,
                "violations_total": result.violations_total,
                "violated": sorted(
                    prop for prop, items in result.violations.items() if items
                ),
            }
        )
        if result.ok:
            continue
        if not predicate(spec):
            # A deterministic engine should always reproduce: reaching
            # this branch means the fuzz harness itself is broken.
            report.reproducers.append(
                {
                    "index": index,
                    "name": spec.name,
                    "reproducible": False,
                    "violated": report.runs[-1]["violated"],
                }
            )
            continue
        # A violation on a paper-literal (unguarded) spec whose guarded
        # twin is clean is *guard-sensitive* — the finding class this
        # fuzzer exists for.  Shrink those under the sensitivity-
        # preserving predicate so ddmin cannot trade the anomaly for an
        # unrelated (guard-indifferent) failure while minimising.
        guard_sensitive = not spec.guard_change_sn and not predicate(
            replace(spec, guard_change_sn=True)
        )
        shrink_pred = (
            guard_sensitivity_predicate(predicate) if guard_sensitive else predicate
        )
        shrunk = shrink_spec(spec, shrink_pred) if shrink else spec
        report.reproducers.append(
            {
                "index": index,
                "name": spec.name,
                "reproducible": True,
                "shrunk": shrink,
                "guard_sensitive": guard_sensitive,
                "violated": report.runs[-1]["violated"],
                "original_size": {
                    "faults": len(spec.faults),
                    "switches": len(spec.switches),
                    "n": spec.n,
                },
                "shrunk_size": {
                    "faults": len(shrunk.faults),
                    "switches": len(shrunk.switches),
                    "n": shrunk.n,
                },
                "spec": spec_to_dict(shrunk),
            }
        )
    return report
