"""Seeded random :class:`ScenarioSpec` generation.

The generator draws from a schedule family built around the repo's known
hazard geometry rather than uniform noise:

* every spec gets a **pipelined switch chain** — an anchor trigger
  (``SwitchAt`` / ``SwitchOnFault`` / ``SwitchAfterDeliveries``) followed
  by 1–2 ``SwitchAfterSwitch`` links on random phases, issued from
  random stacks, so chained changes routinely originate from stacks that
  are behind (partitioned away or still switching) — the stale-sn
  surface DESIGN.md §4 guards;
* the fault core is one of four shapes: a symmetric partition (even or
  lopsided split) healed before the workload ends, a crash (with an
  optional recovery), or a one-way partition — all survivable by the
  initial CT protocol, so a *guarded* run is expected to be clean and
  any violation is a real finding;
* optional embellishments ride on top with fixed probabilities: a lossy
  /duplicating/reordering link burst, *tolerated* wire corruption
  (checksum stays on — the containment checker must stay quiet), a
  latency spike, a stall-escape ``SwitchIfStalled`` step, and (for
  non-crash shapes) GM-attached churn of the highest-ranked machine.

Determinism: spec *i* of seed *s* is a pure function of ``(s, i)`` —
``numpy.random.default_rng([s, i])`` seeds an independent stream per
index, so a budget can be regenerated, sliced or resumed without
replaying the draws of earlier indices.

Protocols are CT-only by design: the sequencer dies with rank 0 and the
token ring stalls on any unrecovered crash, so mixing them in would bury
the guard-sensitive anomalies under expected liveness stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ScenarioError
from ..experiments.common import PROTOCOL_CT
from ..scenarios.spec import (
    Churn,
    Crash,
    FaultAction,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    Recover,
    ScenarioSpec,
)
from ..scenarios.switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
    SwitchStep,
)

__all__ = ["FuzzConfig", "generate_spec", "generate_specs"]

#: Chainable window phases, in the order the generator indexes them.
_PHASES = ("started", "completed", "closed")


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run: the generator seed, the budget, and the run knobs.

    ``seed`` names the *schedule family* (which specs get generated);
    ``run_seed`` is the simulation seed every generated spec runs at.
    ``guard_change_sn=False`` runs the whole budget through the
    paper-literal replacement layer — the teeth configuration.
    """

    seed: int = 0
    budget: int = 50
    run_seed: int = 0
    guard_change_sn: bool = True
    name_prefix: str = "fuzz"

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ScenarioError(f"fuzz budget must be >= 1, got {self.budget}")


def generate_spec(config: FuzzConfig, index: int) -> ScenarioSpec:
    """Spec *index* of *config*'s schedule family (pure in ``(config, index)``)."""
    if not 0 <= index:
        raise ScenarioError(f"fuzz spec index must be >= 0, got {index}")
    rng = np.random.default_rng([config.seed, index])
    n = int(rng.integers(3, 6))
    faults: List[FaultAction] = []
    shape = int(rng.integers(0, 4))
    t0 = round(1.8 + rng.random() * 0.4, 3)
    if shape in (0, 1):
        # Symmetric split, even (0) or lopsided (1), healed before the end.
        ids = list(range(n))
        k = max(1, n // 2 - (1 if shape == 1 else 0))
        faults.append(Partition(at=t0, groups=(tuple(ids[:k]), tuple(ids[k:]))))
        faults.append(Heal(at=round(t0 + 0.4 + rng.random() * 0.8, 3)))
    elif shape == 2:
        # One crash; CT tolerates a minority down, so no heal needed.
        machine = int(rng.integers(0, n))
        faults.append(Crash(at=round(t0 + rng.random() * 0.5, 3), machine=machine))
        if rng.random() < 0.5:
            faults.append(
                Recover(at=round(t0 + 1.2 + rng.random() * 0.5, 3), machine=machine)
            )
    else:
        # One-way partition: one stack's frames vanish while it still hears
        # the group — the asymmetric stale-issuer shape.
        src = (int(rng.integers(0, n)),)
        dst = tuple(x for x in range(n) if x not in src)
        faults.append(PartitionOneWay(at=t0, src=src, dst=dst))
        faults.append(Heal(at=round(t0 + 0.4 + rng.random() * 0.8, 3)))

    # ----- switch chain ------------------------------------------------ #
    switches: List[SwitchStep] = [
        SwitchAt(
            protocol=PROTOCOL_CT,
            at=round(t0 + rng.random() * 0.4, 3),
            from_stack=int(rng.integers(0, n)),
        )
    ]
    for version in range(1, 1 + int(rng.integers(1, 3))):
        switches.append(
            SwitchAfterSwitch(
                protocol=PROTOCOL_CT,
                version=version,
                phase=_PHASES[int(rng.integers(0, 2))],
                delay=round(float(rng.random() * 0.05), 4),
                from_stack=int(rng.integers(0, n)),
            )
        )
    if rng.random() < 0.15:
        # Strict back-to-back tail: chain one more change off the *close*
        # of the last version, so all three window phases get exercised.
        switches.append(
            SwitchAfterSwitch(
                protocol=PROTOCOL_CT,
                version=len(switches),
                phase="closed",
                delay=round(float(rng.random() * 0.05), 4),
                from_stack=int(rng.integers(0, n)),
            )
        )

    # ----- embellishments (independent coin flips, drawn in a fixed
    # order so every (seed, index) replays identically) ----------------- #
    corrupt_rate = 0.0
    if rng.random() < 0.25:
        # Lossy/duplicating/reordering burst on one link across the window.
        src_m = int(rng.integers(0, n))
        dst_m = int(rng.integers(0, n - 1))
        if dst_m >= src_m:
            dst_m += 1
        kind = int(rng.integers(0, 3))
        impair = dict.fromkeys(
            ("loss_rate", "duplicate_rate", "reorder_rate"), 0.0
        )
        if kind == 0:
            impair["loss_rate"] = round(0.02 + rng.random() * 0.04, 3)
        elif kind == 1:
            impair["duplicate_rate"] = round(0.1 + rng.random() * 0.2, 3)
        else:
            impair["reorder_rate"] = round(0.2 + rng.random() * 0.3, 3)
        faults.append(
            ImpairLink(
                at=round(max(0.1, t0 - 0.5), 3),
                src=src_m,
                dst=dst_m,
                loss_rate=impair["loss_rate"],
                duplicate_rate=impair["duplicate_rate"],
                reorder_rate=impair["reorder_rate"],
                reorder_delay=0.004 if impair["reorder_rate"] else 0.0,
                until=round(t0 + 1.5, 3),
            )
        )
    if rng.random() < 0.25:
        # Tolerated corruption: checksum stays ON, so the NIC detects and
        # drops mangled frames and retransmission recovers.  The
        # containment checker runs on these specs and must stay quiet.
        if rng.random() < 0.5:
            corrupt_rate = round(0.005 + rng.random() * 0.015, 4)
        else:
            src_m = int(rng.integers(0, n))
            dst_m = int(rng.integers(0, n - 1))
            if dst_m >= src_m:
                dst_m += 1
            faults.append(
                ImpairLink(
                    at=round(max(0.1, t0 - 0.3), 3),
                    src=src_m,
                    dst=dst_m,
                    corrupt_rate=round(0.05 + rng.random() * 0.1, 3),
                    until=round(t0 + 1.2, 3),
                )
            )
    if rng.random() < 0.15:
        faults.append(
            LatencySpike(
                at=round(t0 + rng.random(), 3),
                extra=round(0.002 + rng.random() * 0.004, 4),
                duration=0.8,
            )
        )
    with_gm = False
    if shape != 2 and rng.random() < 0.10:
        # Membership churn of the highest-ranked machine (GM attached so
        # the outage is a proper leave/re-join, not a silent crash).
        with_gm = True
        faults.append(
            Churn(
                start=round(t0 + 0.2, 3),
                machines=(n - 1,),
                period=2.0,
                downtime=0.6,
                cycles=1,
            )
        )
    if rng.random() < 0.20:
        # Stall escape hatch: fires only if v1's window drags.
        switches.append(
            SwitchIfStalled(
                protocol=PROTOCOL_CT,
                version=1,
                timeout=round(0.5 + rng.random(), 3),
            )
        )
    anchor_kind = rng.random()
    if anchor_kind >= 0.85:
        # Occasionally re-anchor the chain off a non-time trigger.
        switches[0] = SwitchOnFault(
            protocol=PROTOCOL_CT,
            fault_index=0,
            delay=round(0.02 + rng.random() * 0.2, 3),
            from_stack=int(rng.integers(0, n)),
        )
    elif anchor_kind >= 0.70:
        switches[0] = SwitchAfterDeliveries(
            protocol=PROTOCOL_CT,
            count=int(rng.integers(60, 140)),
            on_stack=int(rng.integers(0, n)),
            from_stack=int(rng.integers(0, n)),
        )

    return ScenarioSpec(
        name=f"{config.name_prefix}-{config.seed}-{index}",
        description=(
            f"generated schedule {index} of seed {config.seed} "
            f"(shape {shape}, n={n})"
        ),
        n=n,
        duration=4.0,
        load_msgs_per_sec=60.0,
        with_gm=with_gm,
        corrupt_rate=corrupt_rate,
        guard_change_sn=config.guard_change_sn,
        creation_cost=round(0.01 + rng.random() * 0.05, 3),
        faults=tuple(faults),
        switches=tuple(switches),
        quiescence_extra=14.0,
    )


def generate_specs(config: FuzzConfig) -> List[ScenarioSpec]:
    """The whole budget of *config*, in index order."""
    return [generate_spec(config, i) for i in range(config.budget)]
