"""Delta-debugging shrinker for violating scenario specs.

A fuzzer finding is only useful once it is *small*: a 5-machine schedule
with six fault actions and a four-link switch chain says "something is
wrong somewhere"; the same violation on 3 machines with one partition
and one chained switch names the mechanism.  :func:`shrink_spec`
minimises a violating spec along three axes, to a fixpoint:

1. **fault actions** — classic ddmin (Zeller & Hildebrandt) over the
   ``faults`` tuple;
2. **chain entries** — ddmin over the ``switches`` tuple;
3. **member count** — try each smaller ``n`` (smallest first), skipping
   candidates whose schedule references machines that would no longer
   exist.

The predicate is "``run_scenario`` still reports a violation"; candidate
specs that fail to *run* (invalid schedule, simulation error) count as
not-reproducing, so shrinking never trades a property violation for a
crash.  Everything is deterministic: same input spec + same predicate ⇒
same minimal spec, and a spec that does not violate passes through
untouched.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Sequence, TypeVar

from ..errors import ReproError
from ..scenarios.spec import (
    Churn,
    Crash,
    ImpairLink,
    Partition,
    PartitionOneWay,
    RandomCrashes,
    Recover,
    ScenarioSpec,
)

__all__ = [
    "ddmin",
    "shrink_spec",
    "violation_predicate",
    "guard_sensitivity_predicate",
]

T = TypeVar("T")


# --------------------------------------------------------------------------- #
# Classic ddmin over a sequence
# --------------------------------------------------------------------------- #
def ddmin(items: Sequence[T], test: Callable[[List[T]], bool]) -> List[T]:
    """Minimise *items* such that ``test`` still holds (1-minimal result).

    ``test(candidate)`` returns True when the candidate still exhibits
    the failure.  The result is 1-minimal: removing any single element
    makes ``test`` fail.  Deterministic for a deterministic ``test``.
    """
    items = list(items)
    if not items or test([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = (len(items) + granularity - 1) // granularity
        chunks = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        # Reduce to subset: some chunk alone still fails.
        for piece in chunks:
            if len(piece) < len(items) and test(list(piece)):
                items = list(piece)
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # Reduce to complement: dropping some chunk still fails.
        for i in range(len(chunks)):
            candidate = [x for j, c in enumerate(chunks) for x in c if j != i]
            if len(candidate) < len(items) and test(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(items):
            break  # singleton granularity and nothing removable: 1-minimal
        granularity = min(len(items), granularity * 2)
    return items


# --------------------------------------------------------------------------- #
# Spec-level shrinking
# --------------------------------------------------------------------------- #
def _max_machine_ref(spec: ScenarioSpec) -> int:
    """The highest machine rank the schedule mentions (-1 if none)."""
    refs = set(spec.expected_faulty)
    for action in spec.faults:
        if isinstance(action, (Crash, Recover)):
            refs.add(action.machine)
        elif isinstance(action, Partition):
            for group in action.groups:
                refs.update(group)
        elif isinstance(action, PartitionOneWay):
            refs.update(action.src)
            refs.update(action.dst)
        elif isinstance(action, ImpairLink):
            refs.update((action.src, action.dst))
        elif isinstance(action, Churn):
            refs.update(action.machines)
        elif isinstance(action, RandomCrashes) and action.candidates is not None:
            refs.update(action.candidates)
    for step in spec.switches:
        for attr in ("from_stack", "on_stack"):
            value = getattr(step, attr, None)
            if value is not None:
                refs.add(value)
    return max(refs) if refs else -1


def violation_predicate(
    seed: int = 0, trace: str = "structural"
) -> Callable[[ScenarioSpec], bool]:
    """A shrink predicate: "this spec still violates some property".

    Candidate specs that cannot even run (schedule validation or
    simulation errors) return False — a shrink step must preserve the
    *violation*, not merely some failure.
    """
    from ..scenarios.engine import run_scenario  # late: avoid import cycle

    def predicate(spec: ScenarioSpec) -> bool:
        try:
            return not run_scenario(spec, seed=seed, trace=trace).ok
        except ReproError:
            return False

    return predicate


def guard_sensitivity_predicate(
    predicate: Callable[[ScenarioSpec], bool],
) -> Callable[[ScenarioSpec], bool]:
    """Wrap *predicate* to preserve **guard sensitivity** while shrinking.

    Shrinking with a bare "still violates" predicate can wander into a
    *different* failure class: dropping the ``Heal`` of a partitioned
    schedule, say, leaves a permanently split group whose uniform-
    agreement violation has nothing to do with the sn guard (it fires
    guarded or not).  For an unguarded finding whose interest is exactly
    "the guard would have prevented this", the wrapped predicate demands
    both that the candidate still violates *and* that its guarded twin
    (``guard_change_sn=True``) is clean — so every ddmin step keeps the
    reproducer inside the guard-sensitive anomaly class.
    """

    def wrapped(spec: ScenarioSpec) -> bool:
        if spec.guard_change_sn:
            return False  # sensitivity is only defined for unguarded specs
        if not predicate(spec):
            return False
        return not predicate(replace(spec, guard_change_sn=True))

    return wrapped


def shrink_spec(
    spec: ScenarioSpec, predicate: Callable[[ScenarioSpec], bool]
) -> ScenarioSpec:
    """The minimal spec (faults, switches, then n; to a fixpoint) for
    which *predicate* still holds.  A non-violating *spec* (predicate
    already False) is returned unchanged — shrinking is only defined
    relative to a reproducing failure.
    """
    if not predicate(spec):
        return spec
    changed = True
    while changed:
        changed = False
        kept_faults = ddmin(
            spec.faults, lambda fs: predicate(replace(spec, faults=tuple(fs)))
        )
        if len(kept_faults) < len(spec.faults):
            spec = replace(spec, faults=tuple(kept_faults))
            changed = True
        kept_switches = ddmin(
            spec.switches, lambda ss: predicate(replace(spec, switches=tuple(ss)))
        )
        if len(kept_switches) < len(spec.switches):
            spec = replace(spec, switches=tuple(kept_switches))
            changed = True
        floor = max(1, _max_machine_ref(spec) + 1)
        for smaller in range(floor, spec.n):
            candidate = replace(spec, n=smaller)
            if predicate(candidate):
                spec = candidate
                changed = True
                break
    return spec
