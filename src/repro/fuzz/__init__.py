"""Adversarial schedule search: fuzzing + small-scope model checking.

The ~30 handwritten scenarios in :mod:`repro.scenarios.library` explore a
sliver of the fault × switch-plan space.  This package searches the rest
of it, two ways:

* :mod:`~repro.fuzz.generator` + :mod:`~repro.fuzz.campaign` — a
  **seeded fault-schedule fuzzer**: random :class:`ScenarioSpec` values
  (crash/recover, symmetric and one-way partitions, loss/dup/reorder
  bursts, latency spikes, churn, wire corruption) composed with random
  pipelined switch chains (``SwitchAfterSwitch`` on all three phases,
  plus the chain-predicate ``SwitchIfStalled`` trigger), run in bulk
  through the deterministic campaign engine.  Same seed ⇒ byte-identical
  fuzz report, identical across ``--jobs``.
* :mod:`~repro.fuzz.shrink` — **delta-debugging** (ddmin) over fault
  actions, chain entries and member count: any violating schedule is
  minimised to a 1-minimal reproducer and emitted as replayable JSON
  (:mod:`repro.scenarios.serde`).
* :mod:`~repro.fuzz.explorer` — a **small-scope exhaustive explorer**
  (the DyNetKAT style of model checking for dynamic updates): every
  interleaving of the abstract ``SwitchTask`` state machine for 2–3
  stacks × 2–3 versions, with chain agreement checked on every branch.

CLI: ``python -m repro.fuzz --help``.
"""

from .campaign import FuzzReport, run_fuzz
from .explorer import ExplorerConfig, ExplorationResult, explore
from .generator import FuzzConfig, generate_spec, generate_specs
from .shrink import ddmin, shrink_spec

__all__ = [
    "FuzzConfig",
    "generate_spec",
    "generate_specs",
    "ddmin",
    "shrink_spec",
    "FuzzReport",
    "run_fuzz",
    "ExplorerConfig",
    "ExplorationResult",
    "explore",
]
