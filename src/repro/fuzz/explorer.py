"""Small-scope exhaustive exploration of the switch-chain state machine.

The fuzzer samples the schedule space; this module *enumerates* a small
corner of it.  The model abstracts each stack's replacement layer to the
state the chain-agreement argument actually depends on:

* a global totally-ordered log of issued changes (ABcast gives every
  stack the same delivery order — that part is assumed, not modelled);
* per stack: a delivery pointer into the log, a sequence number, the
  chain of completed switches, the module creation in progress (the
  ``SwitchTask`` analogue) and its FIFO queue of changes accepted while
  a creation is still running (the pipelined-window case).

Three event types interleave freely: *issue* (the next change is stamped
with its issuer's **current** sequence number and appended to the log),
*deliver* (one stack consumes the next log entry: guard-check the stamp,
then start or queue a creation) and *complete* (one stack finishes its
running creation and appends to its chain).  :func:`explore` walks
**every** interleaving for K stacks × V versions, checking chain
agreement on every leaf.

The stamp-at-issue / guard-at-delivery split is the paper's §5
``changeABcast`` mechanism in miniature: an issuer that lags behind the
log stamps a stale sequence number, and only the guard keeps that stale
change from being applied by *some* stacks and not others.  With the
guard on, every interleaving converges to an agreed chain; seed the
model with the ``stack0_skips_guard`` bug (one stack applies stale
changes) and the explorer exhibits the violating branches.

State counting uses a memoised DP over the (acyclic) state graph, so the
leaf/violation counts cover the full interleaving tree even where paths
reconverge; counts are exact and independent of visit order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..dpu.abcast_checker import chain_agreement_violations
from ..errors import ScenarioError

__all__ = ["ExplorerConfig", "ExplorationResult", "explore"]

#: Known seedable model bugs (for checker-teeth tests).
BUGS = ("stack0_skips_guard",)

#: Per-stack model state: (log pointer, sequence number, completed chain,
#: creation in progress (or None), FIFO queue of accepted changes).
_StackState = Tuple[int, int, Tuple[int, ...], Optional[int], Tuple[int, ...]]
#: Global model state: (issued log of (stamp, change) pairs, stack states).
_State = Tuple[Tuple[Tuple[int, int], ...], Tuple[_StackState, ...]]
#: Chains of every stack at a leaf, as one canonical outcome value.
_Outcome = Tuple[Tuple[str, ...], ...]


@dataclass(frozen=True)
class ExplorerConfig:
    """The model size and its guard/bug knobs.

    ``issuers[v]`` is the stack whose sequence number stamps change *v*
    at issue time (default: stack 0 issues everything — the single-
    operator shape).  ``bug`` seeds a known defect into the model so
    tests can prove the checker has teeth on exhaustive branches too.
    """

    stacks: int = 2
    versions: int = 2
    guard: bool = True
    bug: Optional[str] = None
    issuers: Optional[Tuple[int, ...]] = None
    max_states: int = 2_000_000

    def __post_init__(self) -> None:
        if not 1 <= self.stacks <= 4:
            raise ScenarioError("explorer is small-scope: stacks must be 1..4")
        if not 1 <= self.versions <= 4:
            raise ScenarioError("explorer is small-scope: versions must be 1..4")
        if self.bug is not None and self.bug not in BUGS:
            raise ScenarioError(
                f"unknown seeded bug {self.bug!r}; known: {', '.join(BUGS)}"
            )
        if self.issuers is not None:
            if len(self.issuers) != self.versions:
                raise ScenarioError("issuers must name one stack per version")
            for stack in self.issuers:
                if not 0 <= stack < self.stacks:
                    raise ScenarioError(f"issuer stack {stack} out of range")


@dataclass
class ExplorationResult:
    """Exhaustive counts plus the distinct outcomes and counterexamples."""

    config: ExplorerConfig
    interleavings: int
    violating: int
    states: int
    #: Every distinct leaf outcome: per-stack protocol chains.
    outcomes: List[_Outcome] = field(default_factory=list)
    #: One event trace per distinct *violating* outcome (capped).
    counterexamples: List[List[str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Chain agreement held on every interleaving."""
        return self.violating == 0

    def to_dict(self) -> Dict[str, Any]:
        """A plain, deterministically-serialisable dict."""
        return {
            "stacks": self.config.stacks,
            "versions": self.config.versions,
            "guard": self.config.guard,
            "bug": self.config.bug,
            "ok": self.ok,
            "interleavings": self.interleavings,
            "violating": self.violating,
            "states": self.states,
            "distinct_outcomes": len(self.outcomes),
            "outcomes": [[list(chain) for chain in out] for out in self.outcomes],
            "counterexamples": [list(trace) for trace in self.counterexamples],
        }


# --------------------------------------------------------------------------- #
# Model semantics
# --------------------------------------------------------------------------- #
def _enabled(state: _State, versions: int) -> List[Tuple[str, int]]:
    """Every event enabled in *state*, in a fixed deterministic order."""
    issued, stacks = state
    events: List[Tuple[str, int]] = []
    if len(issued) < versions:
        events.append(("issue", len(issued)))
    for i, (pointer, _seq, _chain, creating, _queue) in enumerate(stacks):
        if pointer < len(issued):
            events.append(("deliver", i))
        if creating is not None:
            events.append(("complete", i))
    return events


def _apply(state: _State, event: Tuple[str, int], config: ExplorerConfig) -> _State:
    """The successor of *state* under *event* (pure)."""
    issued, stacks = state
    kind, target = event
    issuers = config.issuers or tuple([0] * config.versions)
    if kind == "issue":
        # Stamped with the *issuer's current* sequence number: an issuer
        # whose delivery pointer lags the log stamps a stale sn.
        stamp = stacks[issuers[target]][1]
        return (issued + ((stamp, target),), stacks)
    pointer, seq, chain, creating, queue = stacks[target]
    if kind == "deliver":
        stamp, change = issued[pointer]
        guarded = config.guard and not (
            config.bug == "stack0_skips_guard" and target == 0
        )
        if guarded and stamp != seq:
            # Stale change: discarded, pointer advances, seq untouched.
            new: _StackState = (pointer + 1, seq, chain, creating, queue)
        elif creating is None:
            new = (pointer + 1, seq + 1, chain, change, queue)
        else:
            # Pipelined window: accepted while an earlier creation runs.
            new = (pointer + 1, seq + 1, chain, creating, queue + (change,))
    else:  # complete
        assert creating is not None
        done = chain + (creating,)
        if queue:
            new = (pointer, seq, done, queue[0], queue[1:])
        else:
            new = (pointer, seq, done, None, ())
    return (issued, stacks[:target] + (new,) + stacks[target + 1 :])


def _leaf_outcome(state: _State, config: ExplorerConfig) -> _Outcome:
    """Per-stack protocol chains at a leaf (``init`` plus ``p<k+1>``…)."""
    _issued, stacks = state
    return tuple(
        ("init",) + tuple(f"p{change + 1}" for change in chain)
        for (_p, _s, chain, _c, _q) in stacks
    )


def _violates(outcome: _Outcome) -> bool:
    """Chain agreement on one leaf, via the repo's real checker."""
    chains = {i: list(chain) for i, chain in enumerate(outcome)}
    return bool(chain_agreement_violations(chains, crashed={}))


# --------------------------------------------------------------------------- #
# Exhaustive walk
# --------------------------------------------------------------------------- #
def explore(config: ExplorerConfig) -> ExplorationResult:
    """Enumerate every interleaving of the model under *config*.

    Counts come from a memoised DP over the state DAG: each distinct
    state is expanded once, and ``(leaves, violating, outcomes)`` of a
    state is the sum/union over its successors.  The interleaving count
    is therefore the exact number of *paths* through the tree even
    though the walk visits shared states once.
    """
    initial_stack: _StackState = (0, 0, (), None, ())
    initial: _State = ((), tuple([initial_stack] * config.stacks))
    # state -> (paths-to-leaves, violating paths, distinct outcomes)
    memo: Dict[_State, Tuple[int, int, FrozenSet[_Outcome]]] = {}
    # One representative event trace per distinct violating outcome.
    traces: Dict[_Outcome, List[str]] = {}

    def walk(state: _State, path: List[str]) -> Tuple[int, int, FrozenSet[_Outcome]]:
        cached = memo.get(state)
        if cached is not None:
            return cached
        if len(memo) >= config.max_states:
            raise ScenarioError(
                f"explorer exceeded max_states={config.max_states}; "
                f"shrink the model (stacks/versions) or raise the cap"
            )
        events = _enabled(state, config.versions)
        if not events:
            outcome = _leaf_outcome(state, config)
            violating = 1 if _violates(outcome) else 0
            if violating and outcome not in traces:
                traces[outcome] = list(path)
            result = (1, violating, frozenset((outcome,)))
        else:
            leaves = 0
            violating = 0
            outcomes: FrozenSet[_Outcome] = frozenset()
            for event in events:
                path.append(f"{event[0]}:{event[1]}")
                sub = walk(_apply(state, event, config), path)
                path.pop()
                leaves += sub[0]
                violating += sub[1]
                outcomes |= sub[2]
            result = (leaves, violating, outcomes)
        memo[state] = result
        return result

    leaves, violating, outcomes = walk(initial, [])
    ordered = sorted(outcomes)
    return ExplorationResult(
        config=config,
        interleavings=leaves,
        violating=violating,
        states=len(memo),
        outcomes=ordered,
        counterexamples=[traces[o] for o in sorted(traces)][:8],
    )
