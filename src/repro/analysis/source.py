"""Parsed source files and inline suppression comments.

A :class:`SourceFile` bundles everything the rules need about one file:
its parsed AST, its dotted module name (derived from the ``__init__.py``
chain above it), its raw lines, and its ``# repro: ignore[...]``
suppression comments.

Suppression syntax
------------------
::

    something_flagged()  # repro: ignore[R2] -- justification text

* The bracket lists one or more rule codes (``ignore[R1,R4]``).
* The justification after ``--`` is **required**: a suppression without
  one is inert (the finding still fires) and is itself reported as a
  ``SUP`` hygiene finding.
* A suppression applies to findings on its own line, or — when written
  on a comment-only line — to findings on the next line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["Suppression", "SourceFile", "KNOWN_RULES"]

#: Rule codes accepted inside ``ignore[...]`` brackets.
KNOWN_RULES = ("R1", "R2", "R3", "R4", "R5", "R6")

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<codes>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)
_MARKER_RE = re.compile(r"#\s*repro:")


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment.

    Attributes
    ----------
    line:
        1-based line the comment sits on.
    codes:
        Rule codes listed in the brackets (normalised, upper-case).
    justification:
        Text after ``--`` (empty when missing — the suppression is then
        inert).
    own_line:
        Whether the comment is alone on its line (then it covers the
        *next* line as well).
    used:
        Set by the engine when the suppression silenced a finding.
    """

    line: int
    codes: Tuple[str, ...]
    justification: str
    own_line: bool
    used: bool = False

    @property
    def valid(self) -> bool:
        """Whether this suppression can silence findings at all."""
        return bool(self.justification) and all(c in KNOWN_RULES for c in self.codes)


@dataclass
class SourceFile:
    """One parsed file of the analysed project.

    Attributes
    ----------
    path:
        Absolute filesystem path.
    display_path:
        POSIX path used in findings: the CLI scan argument joined with
        the path relative to it (stable regardless of cwd).
    module:
        Dotted module name, e.g. ``repro.net.rp2p`` (derived from the
        ``__init__.py`` package chain on disk).
    text:
        Raw source.
    tree:
        Parsed AST (``None`` when the file failed to parse; the engine
        reports a parse error instead of running rules over it).
    """

    path: Path
    display_path: str
    module: str
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[str] = None
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    malformed_markers: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path, display_path: str, module: str) -> "SourceFile":
        """Read, parse, and scan *path* for suppression comments."""
        text = path.read_text(encoding="utf-8")
        tree: Optional[ast.AST] = None
        parse_error: Optional[str] = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - defensive
            parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        sf = cls(
            path=path,
            display_path=display_path,
            module=module,
            text=text,
            tree=tree,
            parse_error=parse_error,
            lines=text.splitlines(),
        )
        sf._scan_comments()
        return sf

    def _scan_comments(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if not _MARKER_RE.search(tok.string):
                continue
            lineno = tok.start[0]
            match = _IGNORE_RE.search(tok.string)
            if match is None:
                self.malformed_markers.append(lineno)
                continue
            codes = tuple(
                c.strip().upper() for c in match.group("codes").split(",") if c.strip()
            )
            why = (match.group("why") or "").strip()
            own_line = self.lines[lineno - 1].lstrip().startswith("#")
            self.suppressions[lineno] = Suppression(
                line=lineno, codes=codes, justification=why, own_line=own_line
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        """The valid suppression covering *rule* at *line*, if any.

        Checks the line itself, then a comment-only suppression on the
        immediately preceding line.
        """
        for candidate_line in (line, line - 1):
            sup = self.suppressions.get(candidate_line)
            if sup is None:
                continue
            if candidate_line == line - 1 and not sup.own_line:
                continue
            if rule in sup.codes and sup.valid:
                return sup
        return None

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-based *line* (empty if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """The dotted module name, split."""
        return tuple(self.module.split("."))

    def top_level_package(self) -> str:
        """Second component of the dotted name (``net`` in ``repro.net.udp``).

        This is the package the seam rule (R1) classifies files by; for
        single-segment modules it is the module name itself.
        """
        parts = self.package_parts
        return parts[1] if len(parts) > 1 else parts[0]
