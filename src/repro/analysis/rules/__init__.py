"""The contract rules, one visitor module per rule.

``ALL_RULES`` maps rule codes to ``(RuleInfo, run)`` pairs in catalogue
order; the engine and the docs generator both iterate it, so adding a
rule here is all it takes to wire it into the CLI, ``--list-rules``,
and ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..findings import Finding
from ..project import Project
from . import r1_seam, r2_determinism, r3_wire, r4_restart, r5_trace, r6_async
from .base import RuleInfo

__all__ = ["ALL_RULES", "RuleInfo"]

#: Rule code -> (metadata, entry point), in catalogue order.
ALL_RULES: Dict[str, Tuple[RuleInfo, Callable[[Project], List[Finding]]]] = {
    module.RULE.code: (module.RULE, module.run)
    for module in (r1_seam, r2_determinism, r3_wire, r4_restart, r5_trace, r6_async)
}
