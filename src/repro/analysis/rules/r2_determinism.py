"""R2 determinism: every run must be a pure function of its seed.

Campaign reports are byte-identical across reruns, ``--jobs`` fan-out
and trace modes — which only holds while no code path consults ambient
entropy.  This rule flags the four ways that property historically
breaks:

* **unseeded RNG construction** — ``random.Random()`` with no seed,
  the ``random`` module's global-state functions, numpy's legacy
  ``np.random.*`` globals, and ``default_rng()`` / ``SeedSequence()``
  without a seed (use ``RngRegistry`` named streams instead);
* **wall-clock reads** — ``time.time()``, ``time.monotonic()``,
  ``datetime.now()`` and friends (use ``self.now`` / the scheduler's
  time).  The realtime side of the seam (``repro.runtime.realtime``,
  ``repro.runtime.soak``) *is* the wall-clock implementation and is
  exempt by design;
* **``id()`` feeding keys or ordering** — CPython addresses differ per
  process, so anything keyed or ordered by ``id()`` diverges across
  runs;
* **iteration over ``set``/``frozenset`` values that feeds sends or
  scheduling** — set order is hash-table order; iterate a
  ``sorted(...)`` view before anything observable depends on it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..findings import Finding
from ..project import Project
from ..source import SourceFile
from .base import RuleInfo, dotted_name, make_finding

__all__ = ["RULE", "run"]

RULE = RuleInfo(
    code="R2",
    name="determinism",
    scope="all of src/repro (wall-clock checks exempt repro.runtime.{realtime,soak})",
    summary=(
        "No unseeded RNGs, wall-clock reads, id()-derived keys/ordering, "
        "or raw set iteration feeding sends/scheduling"
    ),
)

#: Modules allowed to read the wall clock: the realtime seam implementation.
WALL_CLOCK_EXEMPT = frozenset(("repro.runtime.realtime", "repro.runtime.soak"))

_WALL_CLOCK_CALLS = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    )
)

_ENTROPY_CALLS = frozenset(("os.urandom", "uuid.uuid1", "uuid.uuid4"))

_SEEDED_CTORS = frozenset(
    ("random.Random", "np.random.default_rng", "numpy.random.default_rng",
     "np.random.SeedSequence", "numpy.random.SeedSequence")
)

#: Attribute calls in a loop body that make iteration order observable.
SEND_ATTRS = frozenset(
    (
        "call",
        "respond",
        "send",
        "sendto",
        "send_datagram",
        "issue_call",
        "issue_response",
        "broadcast",
        "abcast",
        "schedule",
        "schedule_at",
        "schedule_fast",
        "schedule_at_fast",
        "set_timer",
        "set_timer_fast",
        "record",
        "deliver",
    )
)

_STR_CONTEXT_CALLS = frozenset(("repr", "str", "format", "print", "hex"))


def run(project: Project) -> List[Finding]:
    """Check every file for the four determinism hazards."""
    findings: List[Finding] = []
    for sf in project.files:
        if sf.tree is None:
            continue
        findings.extend(_check_rng(sf))
        if sf.module not in WALL_CLOCK_EXEMPT:
            findings.extend(_check_wall_clock(sf))
        findings.extend(_check_id_keys(sf))
        findings.extend(_check_set_iteration(sf))
    return findings


# --------------------------------------------------------------------- #
# Unseeded RNG construction
# --------------------------------------------------------------------- #
def _check_rng(sf: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    assert sf.tree is not None
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in _SEEDED_CTORS:
            if not node.args and not node.keywords:
                findings.append(
                    make_finding(
                        "R2",
                        sf,
                        node,
                        f"{name}() without a seed draws OS entropy; seed it "
                        "explicitly (RngRegistry named streams)",
                    )
                )
        elif name.startswith("random.") or name.startswith("np.random.") or name.startswith(
            "numpy.random."
        ):
            findings.append(
                make_finding(
                    "R2",
                    sf,
                    node,
                    f"{name}() uses global RNG state; draw from a seeded "
                    "per-component stream (RngRegistry) instead",
                )
            )
        elif name in _ENTROPY_CALLS:
            findings.append(
                make_finding(
                    "R2", sf, node, f"{name}() is an OS entropy source; runs must "
                    "be a pure function of their seed",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# Wall-clock reads
# --------------------------------------------------------------------- #
def _check_wall_clock(sf: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    assert sf.tree is not None
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            findings.append(
                make_finding(
                    "R2",
                    sf,
                    node,
                    f"{name}() reads the wall clock; use the scheduler's time "
                    "(self.now / sim.now) so runs stay seed-deterministic",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# id() feeding keys / ordering
# --------------------------------------------------------------------- #
def _check_id_keys(sf: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    assert sf.tree is not None
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(sf.tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent  # repro: ignore[R2] -- lint-time parent map, never ordered or persisted
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            if _in_string_context(node, parents):
                continue
            findings.append(
                make_finding(
                    "R2",
                    sf,
                    node,
                    "id() values differ across processes; keying or ordering by "
                    "them breaks run-to-run determinism",
                )
            )
    return findings


def _in_string_context(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    current: Optional[ast.AST] = node
    while current is not None:
        current = parents.get(id(current))  # repro: ignore[R2] -- lint-time parent lookup, never ordered or persisted
        if isinstance(current, ast.JoinedStr):
            return True
        if isinstance(current, ast.Call):
            name = dotted_name(current.func)
            if name in _STR_CONTEXT_CALLS:
                return True
        if isinstance(current, (ast.stmt,)):
            return False
    return False


# --------------------------------------------------------------------- #
# Set iteration feeding sends / scheduling
# --------------------------------------------------------------------- #
def _check_set_iteration(sf: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    assert sf.tree is not None
    for owner in ast.walk(sf.tree):
        if isinstance(owner, ast.ClassDef):
            attr_sets = _class_set_attrs(owner)
            for method in owner.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    findings.extend(_check_scope(sf, method, attr_sets))
        elif isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _inside_class(owner, sf.tree):
                findings.extend(_check_scope(sf, owner, set()))
    return findings


def _inside_class(func: ast.AST, tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and func in node.body:
            return True
    return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    name = dotted_name(target) or ""
    return name.split(".")[-1] in ("Set", "FrozenSet", "set", "frozenset")


def _class_set_attrs(cls: ast.ClassDef) -> Set[str]:
    """``self.x`` attributes assigned a set anywhere in the class body."""
    out: Set[str] = set()
    demoted: Set[str] = set()
    for node in ast.walk(cls):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        else:
            continue
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        if (value is not None and _is_set_expr(value)) or _is_set_annotation(annotation):
            out.add(target.attr)
        elif value is not None:
            demoted.add(target.attr)
    return out - demoted


def _local_set_names(func: ast.AST) -> Set[str]:
    out: Set[str] = set()
    demoted: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            (out if _is_set_expr(node.value) else demoted).add(node.targets[0].id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                out.add(node.target.id)
    return out - demoted


def _check_scope(
    sf: SourceFile, func: ast.AST, attr_sets: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    local_sets = _local_set_names(func)
    for node in ast.walk(func):
        if not isinstance(node, ast.For):
            continue
        iter_expr = node.iter
        is_set = _is_set_expr(iter_expr)
        if isinstance(iter_expr, ast.Name) and iter_expr.id in local_sets:
            is_set = True
        if (
            isinstance(iter_expr, ast.Attribute)
            and isinstance(iter_expr.value, ast.Name)
            and iter_expr.value.id == "self"
            and iter_expr.attr in attr_sets
        ):
            is_set = True
        if not is_set:
            continue
        if _body_sends(node):
            findings.append(
                make_finding(
                    "R2",
                    sf,
                    node,
                    "iteration over a set feeds sends/scheduling; iterate "
                    "sorted(...) so the observable order is deterministic",
                )
            )
    return findings


def _body_sends(loop: ast.For) -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SEND_ATTRS
            ):
                return True
    return False
