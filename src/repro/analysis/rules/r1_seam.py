"""R1 seam-purity: protocol packages reach the runtime only through the seam.

Protocol packages (``abcast``, ``consensus``, ``dpu``, ``fd``, ``gm``,
``net``, ``rbcast``, ``workload``, ``baselines``) implement distributed
algorithms that must run unchanged on the simulator *and* on the
realtime backend (PR 6's ``repro/runtime`` seam).  They therefore may
not:

* import the runtime-environment stdlib modules ``time``, ``random``,
  ``asyncio``, ``socket``, ``threading`` — time, randomness, scheduling
  and IO come from the ``Module`` API (``set_timer``, ``now``, seeded
  RNG streams) or ``stack.backend``;
* import ``repro.sim`` **engine internals** (``engine``, ``process``,
  ``events``, ``faults``) at runtime.  The sim's *value* modules —
  ``clock`` (time units), ``monitors`` (counters/logs), ``random``
  (seeded streams), ``latency`` (distribution models) — are shared
  vocabulary and stay importable; typing-only imports under
  ``if TYPE_CHECKING:`` are always fine.
"""

from __future__ import annotations

import ast
from typing import List

from ..findings import Finding
from ..project import Project
from ..source import SourceFile
from .base import RuleInfo, iter_imports, make_finding

__all__ = ["RULE", "run"]

RULE = RuleInfo(
    code="R1",
    name="seam-purity",
    scope="protocol packages (abcast, consensus, dpu, fd, gm, net, rbcast, workload, baselines)",
    summary=(
        "No direct time/random/asyncio/socket/threading imports and no "
        "repro.sim engine internals; reach the runtime only through the "
        "Module / stack.backend seam"
    ),
)

#: Packages under the root that hold seam-pure protocol code.
PROTOCOL_PACKAGES = frozenset(
    (
        "abcast",
        "consensus",
        "dpu",
        "fd",
        "gm",
        "net",
        "rbcast",
        "workload",
        "baselines",
    )
)

#: Stdlib modules that bypass the runtime seam.
FORBIDDEN_STDLIB = frozenset(("time", "random", "asyncio", "socket", "threading"))

#: ``repro.sim`` submodules that are engine internals (seam-opaque).
ENGINE_SUBMODULES = frozenset(("engine", "process", "events", "faults"))

#: Sim-root re-exports that belong to the engine internals.
ENGINE_NAMES = frozenset(
    ("Simulator", "Machine", "FaultInjector", "FaultRecord", "Event", "EventHandle")
)


def _sim_target(project: Project, sf: SourceFile, node: ast.ImportFrom) -> str:
    target = Project.resolve_from(sf, node)
    return target or ""


def run(project: Project) -> List[Finding]:
    """Check every protocol-package file for seam-bypassing imports."""
    findings: List[Finding] = []
    for sf in project.files:
        if sf.tree is None or sf.top_level_package() not in PROTOCOL_PACKAGES:
            continue
        for node, typing_only in iter_imports(sf.tree):
            if typing_only:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in FORBIDDEN_STDLIB:
                        findings.append(
                            make_finding(
                                "R1",
                                sf,
                                node,
                                f"protocol package imports {alias.name!r}: reach "
                                "time/scheduling/IO through the Module API or "
                                "stack.backend seam instead",
                            )
                        )
                    elif _is_sim_engine_module(alias.name):
                        findings.append(_sim_finding(sf, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                target = _sim_target(project, sf, node)
                top = target.split(".")[0] if target else ""
                if top in FORBIDDEN_STDLIB:
                    findings.append(
                        make_finding(
                            "R1",
                            sf,
                            node,
                            f"protocol package imports from {top!r}: reach "
                            "time/scheduling/IO through the Module API or "
                            "stack.backend seam instead",
                        )
                    )
                    continue
                if _is_sim_engine_module(target):
                    findings.append(_sim_finding(sf, node, target))
                    continue
                if _is_sim_root(target):
                    for alias in node.names:
                        if alias.name in ENGINE_NAMES:
                            findings.append(_sim_finding(sf, node, f"{target}.{alias.name}"))
    return findings


def _is_sim_root(target: str) -> bool:
    parts = target.split(".")
    return len(parts) >= 2 and parts[-1] == "sim"


def _is_sim_engine_module(target: str) -> bool:
    parts = target.split(".")
    for i, part in enumerate(parts[:-1]):
        if part == "sim" and parts[i + 1] in ENGINE_SUBMODULES:
            return True
    return False


def _sim_finding(sf: SourceFile, node: ast.stmt, target: str) -> Finding:
    return make_finding(
        "R1",
        sf,
        node,
        f"protocol package reaches sim engine internals ({target}): only the "
        "sim value modules (clock/monitors/random/latency) and the "
        "Module/stack.backend seam are allowed",
    )
