"""R6 async-blocking: no synchronous blocking calls inside ``async def``.

The realtime backend (``repro/runtime``) runs every node on one asyncio
event loop; a single blocking call inside a coroutine stalls *all*
nodes' timers and sockets at once — heartbeats miss, FDs suspect the
world, and the soak's latency percentiles record the hiccup as protocol
cost.  This rule flags calls to known-blocking APIs (``time.sleep``,
synchronous socket/DNS helpers, ``subprocess``/``os.system``) lexically
inside ``async def`` bodies in ``repro/runtime`` — use ``await
asyncio.sleep(...)`` and the loop's non-blocking equivalents instead.
Nested synchronous ``def`` bodies are not flagged (they may legitimately
run in executors).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..findings import Finding
from ..project import Project
from ..source import SourceFile
from .base import RuleInfo, dotted_name, make_finding

__all__ = ["RULE", "run"]

RULE = RuleInfo(
    code="R6",
    name="async-blocking",
    scope="repro.runtime (async def bodies)",
    summary=(
        "No blocking calls (time.sleep, sync socket/DNS, subprocess) inside "
        "async def — they stall every node on the shared event loop"
    ),
)

_BLOCKING_CALLS = frozenset(
    (
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    )
)


def _async_body_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically inside *func*, excluding nested sync ``def`` bodies."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef,)):
            continue  # sync helper: may run in an executor
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def run(project: Project) -> List[Finding]:
    """Flag blocking calls inside runtime coroutines."""
    findings: List[Finding] = []
    for sf in project.files:
        if sf.tree is None or not _in_runtime(sf):
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                name = dotted_name(call.func)
                if name in _BLOCKING_CALLS:
                    findings.append(
                        make_finding(
                            "R6",
                            sf,
                            call,
                            f"{name}() blocks the shared event loop inside "
                            f"async def {node.name}: every node's timers and "
                            "sockets stall (use the asyncio equivalent)",
                        )
                    )
    return findings


def _in_runtime(sf: SourceFile) -> bool:
    parts = sf.package_parts
    return "runtime" in parts[1:2] or (len(parts) == 1 and parts[0] == "runtime")
