"""R4 restart-safety: timer-arming modules must re-arm in ``on_restart``.

Timers armed before a crash belong to the dead incarnation and never
fire (see ``Module.on_restart``).  A ``Module`` subclass that arms
timers (``self.set_timer`` / ``self.set_timer_fast``) but never defines
``on_restart`` — in its own body or anywhere in its project ancestry
below the kernel ``Module`` — silently loses its wheel on the first
crash/recover: the passive-zombie bug class PR 3 spent a whole release
eradicating.  Purely message-driven modules (no timers) are exempt; a
module whose timers are genuinely incarnation-scoped can carry a
justified ``# repro: ignore[R4]`` on its class line.
"""

from __future__ import annotations

from typing import List

from ..findings import Finding
from ..project import Project
from .base import RuleInfo, make_finding

__all__ = ["RULE", "run"]

RULE = RuleInfo(
    code="R4",
    name="restart-safety",
    scope="every kernel Module subclass in the project",
    summary=(
        "A Module subclass that arms set_timer/set_timer_fast must define "
        "on_restart (itself or via a project ancestor)"
    ),
)


def run(project: Project) -> List[Finding]:
    """Flag timer-arming Module subclasses with no ``on_restart`` in reach."""
    findings: List[Finding] = []
    for infos in project.classes.values():
        for info in infos:
            if not project.is_module_subclass(info):
                continue
            chain = project.ancestry(info)
            uses_timers = any(c.uses_timers for c in chain)
            has_restart = any("on_restart" in c.defined for c in chain)
            if uses_timers and not has_restart:
                armer = next(c for c in chain if c.uses_timers)
                where = (
                    "arms timers"
                    if armer is info
                    else f"inherits timer use from {armer.name}"
                )
                findings.append(
                    make_finding(
                        "R4",
                        info.file,
                        info.node,
                        f"Module subclass {info.name} {where} but defines no "
                        "on_restart: its wheel dies with the first crashed "
                        "incarnation (re-arm in on_restart)",
                        scope=f"{info.module}.{info.name}",
                    )
                )
    return findings
