"""R5 trace discipline: declared kinds only; checkers stay structural.

Two checks over the ``TraceKind`` enum the project declares (parsed
statically from wherever ``class TraceKind`` is defined):

* **declared members only** — any ``TraceKind.X`` where ``X`` is not a
  declared member is a typo that would raise ``AttributeError`` at
  runtime (or worse, a kind the checkers silently never see);
* **checkers consume only structural kinds** — property-checker modules
  (final path component ``properties`` or containing ``checker``) may
  reference only members of ``STRUCTURAL_TRACE_KINDS``: campaigns run
  with the per-call firehose (``CALL``, ``CALL_DISPATCHED``,
  ``RESPONSE``, ``RESPONSE_BUFFERED``) filtered out, so a checker that
  consumes one of those kinds silently loses its teeth exactly when it
  matters.
"""

from __future__ import annotations

import ast
from typing import List

from ..findings import Finding
from ..project import Project
from ..source import SourceFile
from .base import RuleInfo, make_finding

__all__ = ["RULE", "run", "is_checker_module"]

RULE = RuleInfo(
    code="R5",
    name="trace-discipline",
    scope="all of src/repro; checker restriction on *properties*/*checker* modules",
    summary=(
        "Only declared TraceKind members may be referenced; checker modules "
        "may consume only STRUCTURAL_TRACE_KINDS"
    ),
)


def is_checker_module(module: str) -> bool:
    """Whether dotted *module* is property-checker code (R5's narrow scope)."""
    last = module.split(".")[-1]
    return last == "properties" or "checker" in last


def run(project: Project) -> List[Finding]:
    """Check TraceKind references against the declared/structural member sets."""
    members = project.trace_kind_members
    if members is None:
        return []  # project declares no TraceKind: nothing to enforce
    structural = project.structural_trace_kinds
    findings: List[Finding] = []
    for sf in project.files:
        if sf.tree is None:
            continue
        checker = is_checker_module(sf.module)
        for node in ast.walk(sf.tree):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "TraceKind"
            ):
                continue
            if node.attr.startswith("__") or not node.attr.isupper():
                continue  # dunder / enum-API access, not a member reference
            if node.attr not in members:
                findings.append(_undeclared(sf, node))
            elif checker and structural is not None and node.attr not in structural:
                findings.append(
                    make_finding(
                        "R5",
                        sf,
                        node,
                        f"checker consumes non-structural TraceKind.{node.attr}: "
                        "campaigns filter the per-call firehose out, so this "
                        "checker loses its teeth under structural tracing "
                        "(consume STRUCTURAL_TRACE_KINDS only)",
                    )
                )
    return findings


def _undeclared(sf: SourceFile, node: ast.Attribute) -> Finding:
    return make_finding(
        "R5",
        sf,
        node,
        f"TraceKind.{node.attr} is not a declared member of the TraceKind "
        "enum: emit only declared kinds",
    )
