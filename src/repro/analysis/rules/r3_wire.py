"""R3 wire-safety: everything on the datagram path encodes without pickle.

Two checks:

* **no pickle, anywhere** — any import of the pickle family (``pickle``,
  ``cPickle``, ``_pickle``, ``dill``, ``cloudpickle``, ``shelve``) under
  the analysed tree is an error: the realtime wire is the safe codec
  (``repro.runtime.codec``), and a pickle import is one refactor away
  from executing hostile datagram bytes;
* **registered wire types bottom out in codec tags** — for every
  ``register_wire_type(name, Cls, pack, unpack)`` call whose ``pack``
  is a field-tuple lambda (``lambda m: (m.a, m.b, ...)``), each packed
  field's class-level annotation must recursively reduce to types the
  codec encodes: ``None``/``bool``/``int``/``float``/``str``/``bytes``,
  ``tuple``/``list``/``set``/``frozenset``/``dict`` (and their
  ``typing`` spellings) of supported types, ``Optional``/``Union`` of
  supported types, ``Any`` (deferred to the codec's runtime check), or
  another registered wire class.

The static type model lives in :func:`annotation_supported`;
``tests/unit/test_wire_drift.py`` pins it against what
``repro.runtime.codec`` actually accepts at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..findings import Finding
from ..project import ClassInfo, Project
from ..source import SourceFile
from .base import RuleInfo, dotted_name, iter_imports, make_finding

__all__ = [
    "RULE",
    "run",
    "Registration",
    "collect_registrations",
    "annotation_supported",
    "SUPPORTED_LEAF_TYPES",
    "SUPPORTED_CONTAINER_TYPES",
]

RULE = RuleInfo(
    code="R3",
    name="wire-safety",
    scope="all of src/repro",
    summary=(
        "No pickle-family imports; every register_wire_type class's packed "
        "fields recursively bottom out in codec-supported tags"
    ),
)

#: Import names that deserialise by executing code.
PICKLE_FAMILY = frozenset(
    ("pickle", "cPickle", "_pickle", "dill", "cloudpickle", "shelve")
)

#: Leaf annotation names the codec encodes directly (tag bytes).
SUPPORTED_LEAF_TYPES = frozenset(
    ("None", "bool", "int", "float", "str", "bytes", "Any", "Hashable")
)

#: Container annotation names the codec encodes (element-wise).
SUPPORTED_CONTAINER_TYPES = frozenset(
    (
        "tuple",
        "list",
        "set",
        "frozenset",
        "dict",
        "Tuple",
        "List",
        "Set",
        "FrozenSet",
        "Dict",
        "Sequence",
        "Mapping",
        "Optional",
        "Union",
    )
)


@dataclass
class Registration:
    """One statically discovered ``register_wire_type`` call."""

    wire_name: str
    class_name: str
    file: SourceFile
    node: ast.Call
    #: ``pack``-lambda field attribute names, in tuple order (``None``
    #: when the pack callable was not a plain field-tuple lambda).
    packed_fields: Optional[Tuple[str, ...]]


def collect_registrations(project: Project) -> List[Registration]:
    """Find every ``register_wire_type(...)`` call in the project."""
    out: List[Registration] = []
    for sf in project.files:
        if sf.tree is None:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func) or ""
            if func_name.split(".")[-1] != "register_wire_type":
                continue
            if len(node.args) < 4:
                continue
            name_arg, cls_arg, pack_arg = node.args[0], node.args[1], node.args[2]
            wire_name = (
                name_arg.value
                if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
                else "<dynamic>"
            )
            class_name = dotted_name(cls_arg) or "<dynamic>"
            out.append(
                Registration(
                    wire_name=wire_name,
                    class_name=class_name.split(".")[-1],
                    file=sf,
                    node=node,
                    packed_fields=_pack_fields(pack_arg),
                )
            )
    return out


def _pack_fields(pack: ast.expr) -> Optional[Tuple[str, ...]]:
    """Field names of a ``lambda m: (m.a, m.b, ...)`` pack callable."""
    if not isinstance(pack, ast.Lambda) or len(pack.args.args) != 1:
        return None
    param = pack.args.args[0].arg
    body = pack.body
    if not isinstance(body, ast.Tuple):
        return None
    fields: List[str] = []
    for element in body.elts:
        if (
            isinstance(element, ast.Attribute)
            and isinstance(element.value, ast.Name)
            and element.value.id == param
        ):
            fields.append(element.attr)
        else:
            return None
    return tuple(fields)


def annotation_supported(
    node: Optional[ast.expr], registered_classes: frozenset
) -> Tuple[bool, str]:
    """Whether annotation *node* bottoms out in codec-supported tags.

    Returns ``(ok, offending_name)`` — *offending_name* names the first
    unsupported leaf when *ok* is ``False``.
    """
    if node is None:
        return True, ""  # unannotated: deferred to the codec's runtime check
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return True, ""
        if isinstance(node.value, str):  # string annotation: re-parse
            try:
                return annotation_supported(
                    ast.parse(node.value, mode="eval").body, registered_classes
                )
            except SyntaxError:
                return False, repr(node.value)
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value) or ""
        leaf = base.split(".")[-1]
        if leaf not in SUPPORTED_CONTAINER_TYPES:
            return False, leaf or "<subscript>"
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            ok, offender = annotation_supported(element, registered_classes)
            if not ok:
                return False, offender
        return True, ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # X | Y
        for side in (node.left, node.right):
            ok, offender = annotation_supported(side, registered_classes)
            if not ok:
                return False, offender
        return True, ""
    name = dotted_name(node)
    if name is not None:
        leaf = name.split(".")[-1]
        if (
            leaf in SUPPORTED_LEAF_TYPES
            or leaf in SUPPORTED_CONTAINER_TYPES
            or leaf in registered_classes
        ):
            return True, ""
        return False, leaf
    return False, ast.dump(node)[:40]


def _class_annotations(info: ClassInfo) -> Dict[str, Optional[ast.expr]]:
    out: Dict[str, Optional[ast.expr]] = {}
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out[stmt.target.id] = stmt.annotation
    return out


def run(project: Project) -> List[Finding]:
    """Check pickle imports and registered wire-type field models."""
    findings: List[Finding] = []
    for sf in project.files:
        if sf.tree is None:
            continue
        for node, _typing_only in iter_imports(sf.tree):
            names: List[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                names = [node.module.split(".")[0]]
            for name in names:
                if name in PICKLE_FAMILY:
                    findings.append(
                        make_finding(
                            "R3",
                            sf,
                            node,
                            f"{name!r} import on a codebase with a datagram "
                            "path: the wire is repro.runtime.codec (no "
                            "code-executing deserialisation anywhere)",
                        )
                    )
    registrations = collect_registrations(project)
    registered = frozenset(r.class_name for r in registrations)
    for reg in registrations:
        info = project.lookup_class(reg.class_name)
        if info is None or reg.packed_fields is None:
            continue  # dynamic registration: deferred to the runtime drift test
        annotations = _class_annotations(info)
        for field_name in reg.packed_fields:
            ok, offender = annotation_supported(
                annotations.get(field_name), registered
            )
            if not ok:
                findings.append(
                    make_finding(
                        "R3",
                        reg.file,
                        reg.node,
                        f"wire type {reg.wire_name!r}: field "
                        f"{reg.class_name}.{field_name} is annotated with "
                        f"unsupported type {offender!r} — the codec only "
                        "encodes its tag types and registered wire classes",
                    )
                )
    return findings
