"""Shared rule infrastructure: metadata and AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..findings import Finding
from ..source import SourceFile

__all__ = [
    "RuleInfo",
    "make_finding",
    "dotted_name",
    "iter_imports",
    "enclosing_scope",
]


@dataclass(frozen=True)
class RuleInfo:
    """Metadata describing one rule (rendered into ``docs/analysis.md``).

    Attributes
    ----------
    code:
        Short code (``"R1"``), also the ``ignore[...]`` key.
    name:
        Kebab-case rule name.
    scope:
        One-line description of which files the rule examines.
    summary:
        One-line statement of the enforced contract.
    """

    code: str
    name: str
    scope: str
    summary: str


def make_finding(
    rule: str, sf: SourceFile, node: ast.AST, message: str, scope: str = ""
) -> Finding:
    """Build a :class:`Finding` anchored at *node* in *sf*."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=rule,
        path=sf.display_path,
        line=line,
        col=col,
        message=message,
        scope=scope or sf.module,
        snippet=sf.snippet(line),
    )


def dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
    )


def iter_imports(
    tree: ast.AST,
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Yield every import statement with a *typing_only* flag.

    The flag is ``True`` for imports inside an ``if TYPE_CHECKING:``
    block — those never execute at runtime and are exempt from the seam
    rule (annotations are an acceptable way to reference engine types).
    """

    def walk(node: ast.AST, typing_only: bool) -> Iterator[Tuple[ast.stmt, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, typing_only
            elif isinstance(child, ast.If):
                flag = typing_only or _is_type_checking_test(child.test)
                for stmt in child.body:
                    yield from walk_stmt(stmt, flag)
                for stmt in child.orelse:
                    yield from walk_stmt(stmt, typing_only)
            else:
                yield from walk(child, typing_only)

    def walk_stmt(stmt: ast.stmt, typing_only: bool) -> Iterator[Tuple[ast.stmt, bool]]:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt, typing_only
        else:
            yield from walk(stmt, typing_only)

    yield from walk(tree, False)


def enclosing_scope(tree: ast.AST, target: ast.AST) -> str:
    """Qualified name of the class/function enclosing *target* (best effort)."""
    path: List[str] = []

    def visit(node: ast.AST, names: List[str]) -> bool:
        if node is target:
            path.extend(names)
            return True
        for child in ast.iter_child_nodes(node):
            child_names = names
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                child_names = names + [child.name]
            if visit(child, child_names):
                return True
        return False

    visit(tree, [])
    return ".".join(path)
