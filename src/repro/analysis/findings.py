"""Finding records produced by the contract linter.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects with a deterministic sort order (path, line, column,
rule code, message) and a stable :attr:`~Finding.fingerprint` used by the
baseline file to grandfather pre-existing violations without pinning
line numbers (which drift on every edit).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule code (``"R1"`` .. ``"R6"``, or ``"SUP"`` for suppression
        hygiene).
    path:
        Display path of the file, POSIX-style, stable for a given CLI
        invocation (the scan argument joined with the relative subpath).
    line / col:
        1-based line and 0-based column of the violation.
    message:
        Human-readable description of the violation.
    scope:
        Dotted name of the enclosing module (plus class/function
        qualname when known) — part of the baseline fingerprint so the
        same violation is recognised across unrelated line drift.
    snippet:
        The stripped source line the finding points at.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    scope: str = ""
    snippet: str = ""

    #: Deterministic sort key.
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Key ordering findings by (path, line, col, rule, message)."""
        return (self.path, self.line, self.col, self.rule, self.message)

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Hashes the rule, path, enclosing scope, and the stripped source
        line — but not the line *number*, so unrelated edits above a
        grandfathered finding do not un-baseline it.
        """
        raw = "|".join((self.rule, self.path, self.scope, self.snippet))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:24]

    def render(self) -> str:
        """One-line ``path:line:col: CODE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable mapping for ``--json`` output."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
