"""The checked-in baseline of grandfathered findings.

A baseline entry matches findings by :attr:`~repro.analysis.findings.Finding.fingerprint`
(rule + path + scope + source line, no line numbers), so grandfathered
findings survive unrelated edits but die with the code they point at.
The repo's baseline (``analysis-baseline.json``) is **seeded empty** and
is expected to stay that way: new violations are fixed or suppressed
with a justification, not baselined.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set

from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints: Set[str] = set(fingerprints)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(
            entry["fingerprint"] for entry in data.get("findings", ())
        )

    @staticmethod
    def write(path: Path, findings: List[Finding]) -> None:
        """Write *findings* as the new baseline (sorted, stable)."""
        entries = [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "scope": f.scope,
                "snippet": f.snippet,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        path.write_text(
            json.dumps({"version": _VERSION, "findings": entries}, indent=2,
                       sort_keys=True)
            + "\n",
            encoding="utf-8",
        )

    def stale_entries(self, findings: List[Finding]) -> Set[str]:
        """Baseline fingerprints no finding matched (dead grandfathers)."""
        live = {f.fingerprint for f in findings}
        return self.fingerprints - live
