"""``python -m repro.analysis``: the contract linter CLI.

Usage::

    python -m repro.analysis src/repro --strict
    python -m repro.analysis src/repro --json
    python -m repro.analysis src/repro --json-out findings.json
    python -m repro.analysis src/repro --baseline analysis-baseline.json
    python -m repro.analysis src/repro --write-baseline
    python -m repro.analysis --list-rules
    python -m repro.analysis --write-docs

Exit codes: **0** clean, **1** active findings, **2** usage or internal
error.  Output ordering is deterministic (path, line, col, rule), so CI
diffs and the JSON artifact are stable across runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from .baseline import Baseline
from .docgen import update_doc
from .engine import analyze
from .rules import ALL_RULES

__all__ = ["main"]

#: Default baseline file, resolved relative to the working directory.
DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based contract linter: statically enforces the runtime-seam, "
            "determinism, wire-safety, restart-safety, trace-discipline and "
            "async-blocking invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyse (e.g. src/repro)"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also flag unused suppressions (suppression hygiene)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )
    parser.add_argument(
        "--json-out", metavar="PATH", help="also write the JSON report to PATH"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--write-docs",
        nargs="?",
        const="docs/analysis.md",
        metavar="PATH",
        help="regenerate the rule table in docs/analysis.md (or PATH) and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, (info, _runner) in ALL_RULES.items():
            print(f"{code}  {info.name:<18} {info.summary}")
        return 0

    if args.write_docs is not None:
        path = pathlib.Path(args.write_docs)
        changed = update_doc(path)
        print(f"{'updated' if changed else 'unchanged'}: {path}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src/repro)")

    rules = None
    if args.rules:
        rules = [code.strip().upper() for code in args.rules.split(",") if code.strip()]
    try:
        baseline = Baseline.load(pathlib.Path(args.baseline))
        result = analyze(
            args.paths, rules=rules, baseline=baseline, strict=args.strict
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.write(pathlib.Path(args.baseline), result.findings)
        print(
            f"baseline written: {args.baseline} "
            f"({len(result.findings)} grandfathered finding(s))"
        )
        return 0

    report = {
        "version": 1,
        "paths": list(args.paths),
        "strict": bool(args.strict),
        "rules": rules or list(ALL_RULES),
        "findings": [f.to_json() for f in result.findings],
        "counts": result.counts,
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline_entries": result.stale_baseline,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{len(result.findings)} finding(s)"
            f" | {len(result.suppressed)} suppressed"
            f" | {len(result.baselined)} baselined"
        )
        if result.stale_baseline:
            summary += f" | {len(result.stale_baseline)} stale baseline entr(y/ies)"
        print(summary)
    return 1 if result.findings else 0
