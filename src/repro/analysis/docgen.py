"""Generate the rule catalogue table in ``docs/analysis.md``.

Mirrors :mod:`repro.scenarios.docgen`: the rule table in the docs is
generated from the live :data:`~repro.analysis.rules.ALL_RULES`
registry, embedded between ``BEGIN GENERATED`` / ``END GENERATED``
markers, and pinned byte-identical by ``tests/unit/test_docs_sync.py``.
Regenerate in place::

    python -m repro.analysis --write-docs            # docs/analysis.md
    python -m repro.analysis --write-docs path.md    # elsewhere
"""

from __future__ import annotations

import pathlib
from typing import List

from .rules import ALL_RULES

__all__ = ["generated_block", "update_doc", "BEGIN_MARKER", "END_MARKER"]

BEGIN_MARKER = (
    "<!-- BEGIN GENERATED: analysis rule catalogue "
    "(regenerate: python -m repro.analysis --write-docs) -->"
)
END_MARKER = "<!-- END GENERATED: analysis rule catalogue -->"


def generated_block() -> str:
    """The rule table, rendered from the live registry."""
    lines: List[str] = [
        "| Code | Rule | Scope | Contract |",
        "| --- | --- | --- | --- |",
    ]
    for code, (info, _runner) in ALL_RULES.items():
        lines.append(
            f"| `{code}` | {info.name} | {info.scope} | {info.summary} |"
        )
    return "\n".join(lines)


def update_doc(path: pathlib.Path) -> bool:
    """Replace the generated block in *path*; returns True when changed."""
    text = path.read_text(encoding="utf-8")
    begin = text.index(BEGIN_MARKER)
    end = text.index(END_MARKER)
    new_text = (
        text[: begin + len(BEGIN_MARKER)]
        + "\n\n"
        + generated_block()
        + "\n\n"
        + text[end:]
    )
    if new_text != text:
        path.write_text(new_text, encoding="utf-8")
        return True
    return False
