"""Whole-project model shared by the contract rules.

Loads every ``.py`` file under the scanned paths into
:class:`~repro.analysis.source.SourceFile` objects and builds the
cross-file indexes the rules need:

* per-file **import bindings** (local name → absolute dotted target,
  with relative imports resolved against the file's package);
* a project-wide **class index** (unqualified class name → definitions)
  with transitive :meth:`Project.is_module_subclass` resolution against
  the kernel ``Module`` base;
* the **TraceKind member table** and the statically evaluated
  ``STRUCTURAL_TRACE_KINDS`` set, parsed from wherever the project
  defines them (``repro/kernel/events.py`` in this repo, a fixture twin
  in the plant-and-catch tests).

Everything here is pure ``ast`` — the analysed project is never
imported, so a broken or hostile tree cannot execute code at lint time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .source import SourceFile

__all__ = ["ClassInfo", "Project"]


@dataclass
class ClassInfo:
    """One class definition found in the project."""

    name: str
    module: str
    file: SourceFile
    node: ast.ClassDef
    base_names: Tuple[str, ...]
    #: Names of methods/attributes defined directly in the class body.
    defined: Set[str] = field(default_factory=set)
    #: Whether a ``self.set_timer`` / ``self.set_timer_fast`` reference
    #: appears anywhere inside the class body.
    uses_timers: bool = False

    @property
    def qualname(self) -> str:
        """``module.ClassName`` of this definition."""
        return f"{self.module}.{self.name}"


def _base_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a base expression (``a.b.C`` → ``C``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class Project:
    """All source files under the scanned paths, plus cross-file indexes.

    Parameters
    ----------
    paths:
        Files or directories to analyse.  Directory scans are recursive
        and deterministic (sorted).  Display paths in findings are the
        given path strings joined with the relative subpath, so output
        is independent of the working directory.
    """

    def __init__(self, paths: Sequence[str]) -> None:
        self.files: List[SourceFile] = []
        self._load(paths)
        self.import_bindings: Dict[str, Dict[str, str]] = {
            sf.module: self._bindings_for(sf) for sf in self.files if sf.tree
        }
        self.classes: Dict[str, List[ClassInfo]] = {}
        self._index_classes()
        self.trace_kind_members: Optional[Set[str]] = None
        self.structural_trace_kinds: Optional[Set[str]] = None
        self._index_trace_kinds()
        self._module_subclass_cache: Dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _load(self, paths: Sequence[str]) -> None:
        seen: Set[Path] = set()
        for raw in paths:
            root = Path(raw)
            if root.is_file():
                targets = [(root, raw)]
            else:
                targets = [
                    (p, str(Path(raw) / p.relative_to(root)))
                    for p in sorted(root.rglob("*.py"))
                ]
            for path, display in targets:
                resolved = path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                self.files.append(
                    SourceFile.load(
                        path,
                        Path(display).as_posix(),
                        self._module_name(resolved),
                    )
                )
        self.files.sort(key=lambda sf: sf.display_path)

    @staticmethod
    def _module_name(path: Path) -> str:
        """Dotted module name from the on-disk ``__init__.py`` chain."""
        parts = [path.stem] if path.stem != "__init__" else []
        parent = path.parent
        while (parent / "__init__.py").exists():
            parts.insert(0, parent.name)
            parent = parent.parent
        return ".".join(parts) if parts else path.stem

    # ------------------------------------------------------------------ #
    # Import resolution
    # ------------------------------------------------------------------ #
    def _bindings_for(self, sf: SourceFile) -> Dict[str, str]:
        """Map local names to absolute dotted import targets for *sf*."""
        bindings: Dict[str, str] = {}
        assert sf.tree is not None
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bindings[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_from(sf, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{base}.{alias.name}" if base else alias.name
        return bindings

    @staticmethod
    def resolve_from(sf: SourceFile, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted module a ``from ... import`` pulls from.

        Resolves relative imports against the file's package; returns
        ``None`` when the relative level climbs past the package root.
        """
        if node.level == 0:
            return node.module or ""
        parts = list(sf.package_parts)
        is_package = sf.path.name == "__init__.py"
        # The package a relative import is resolved against.
        package = parts if is_package else parts[:-1]
        if node.level - 1 > len(package):
            return None
        base = package[: len(package) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def binding(self, module: str, name: str) -> Optional[str]:
        """The absolute dotted target *name* is bound to in *module*."""
        return self.import_bindings.get(module, {}).get(name)

    # ------------------------------------------------------------------ #
    # Class index / Module-subclass resolution
    # ------------------------------------------------------------------ #
    def _index_classes(self) -> None:
        for sf in self.files:
            if sf.tree is None:
                continue
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = ClassInfo(
                    name=node.name,
                    module=sf.module,
                    file=sf,
                    node=node,
                    base_names=tuple(
                        n for n in (_base_name(b) for b in node.bases) if n
                    ),
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.defined.add(stmt.name)
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                info.defined.add(target.id)
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        info.defined.add(stmt.target.id)
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in ("set_timer", "set_timer_fast")
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        info.uses_timers = True
                        break
                self.classes.setdefault(node.name, []).append(info)

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        """The unique project class called *name* (``None`` if absent/ambiguous)."""
        infos = self.classes.get(name)
        if infos and len(infos) == 1:
            return infos[0]
        return None

    def _is_kernel_module_root(self, info: ClassInfo) -> bool:
        return info.name == "Module" and ".kernel" in f".{info.module}"

    def is_module_subclass(self, info: ClassInfo) -> bool:
        """Whether *info* transitively subclasses the kernel ``Module``."""
        cached = self._module_subclass_cache.get(info.qualname)
        if cached is not None:
            return cached
        self._module_subclass_cache[info.qualname] = False  # cycle guard
        result = False
        for base in info.base_names:
            if base == "Module":
                target = self.binding(info.module, base)
                base_info = self.lookup_class(base)
                if target is None or ".kernel" in f".{target}" or (
                    base_info is not None and self._is_kernel_module_root(base_info)
                ):
                    result = True
                    break
            base_info = self.lookup_class(base)
            if base_info is not None and self.is_module_subclass(base_info):
                result = True
                break
        self._module_subclass_cache[info.qualname] = result
        return result

    def ancestry(self, info: ClassInfo) -> List[ClassInfo]:
        """*info* plus its resolvable project ancestors (kernel root excluded)."""
        chain: List[ClassInfo] = []
        stack, visited = [info], {info.qualname}
        while stack:
            current = stack.pop()
            if self._is_kernel_module_root(current):
                continue
            chain.append(current)
            for base in current.base_names:
                base_info = self.lookup_class(base)
                if base_info is not None and base_info.qualname not in visited:
                    visited.add(base_info.qualname)
                    stack.append(base_info)
        return chain

    # ------------------------------------------------------------------ #
    # TraceKind index
    # ------------------------------------------------------------------ #
    def _index_trace_kinds(self) -> None:
        for sf in self.files:
            if sf.tree is None:
                continue
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ClassDef) and node.name == "TraceKind":
                    members = {
                        target.id
                        for stmt in node.body
                        if isinstance(stmt, ast.Assign)
                        for target in stmt.targets
                        if isinstance(target, ast.Name)
                    }
                    if members:
                        self.trace_kind_members = members
            if self.trace_kind_members is not None:
                self._eval_structural(sf)
                if self.structural_trace_kinds is not None:
                    return

    def _eval_structural(self, sf: SourceFile) -> None:
        """Statically evaluate ``STRUCTURAL_TRACE_KINDS = frozenset(TraceKind) - frozenset((...))``."""
        assert sf.tree is not None
        for node in ast.walk(sf.tree):
            if not (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "STRUCTURAL_TRACE_KINDS"
                    for t in node.targets
                )
            ):
                continue
            value = node.value
            if not (isinstance(value, ast.BinOp) and isinstance(value.op, ast.Sub)):
                continue
            removed: Set[str] = set()
            right = value.right
            if isinstance(right, ast.Call) and right.args:
                seq = right.args[0]
                if isinstance(seq, (ast.Tuple, ast.List, ast.Set)):
                    for element in seq.elts:
                        if (
                            isinstance(element, ast.Attribute)
                            and isinstance(element.value, ast.Name)
                            and element.value.id == "TraceKind"
                        ):
                            removed.add(element.attr)
            if self.trace_kind_members is not None:
                self.structural_trace_kinds = self.trace_kind_members - removed
