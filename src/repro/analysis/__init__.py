"""Static contract linter for the repro codebase (``python -m repro.analysis``).

The codebase rests on invariants that runtime tests only catch when a
schedule happens to trip over a violation; this package enforces them at
**analysis time**, over the AST, before any simulation runs:

* **R1 seam-purity** — protocol packages reach time/scheduling/IO only
  through the ``repro/runtime`` seam;
* **R2 determinism** — no unseeded RNGs, wall-clock reads, ``id()``
  keys, or raw set iteration feeding sends;
* **R3 wire-safety** — registered wire types bottom out in codec tags;
  no pickle anywhere;
* **R4 restart-safety** — timer-arming modules define ``on_restart``;
* **R5 trace-discipline** — declared ``TraceKind`` members only;
  checkers consume only structural kinds;
* **R6 async-blocking** — no blocking calls in runtime coroutines.

See ``docs/analysis.md`` for the rule catalogue and suppression policy.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import AnalysisResult, analyze
from .findings import Finding
from .project import Project
from .rules import ALL_RULES, RuleInfo

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Baseline",
    "Finding",
    "Project",
    "RuleInfo",
    "analyze",
]
