"""The analysis engine: run rules, apply suppressions and the baseline.

:func:`analyze` is the library entry point the CLI, CI, and the test
suite all share.  The pipeline per run:

1. load the project (:class:`~repro.analysis.project.Project`) — pure
   ``ast``, nothing is imported;
2. run every requested rule, dedupe, and sort findings
   deterministically (path, line, col, rule, message);
3. drop findings covered by a *valid* inline suppression
   (``# repro: ignore[RULE] -- justification``), marking it used;
4. drop findings whose fingerprint is grandfathered in the baseline;
5. add suppression-hygiene findings (rule ``SUP``): malformed
   ``# repro:`` markers, suppressions missing a justification, unknown
   rule codes always; unused suppressions in ``--strict`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import Baseline
from .findings import Finding
from .project import Project
from .rules import ALL_RULES
from .source import KNOWN_RULES

__all__ = ["AnalysisResult", "analyze"]


@dataclass
class AnalysisResult:
    """Outcome of one :func:`analyze` run.

    Attributes
    ----------
    findings:
        Active findings (not suppressed, not baselined), sorted.
    suppressed:
        Findings silenced by a valid inline suppression.
    baselined:
        Findings matched by the baseline file.
    stale_baseline:
        Baseline fingerprints that matched nothing (safe to prune).
    project:
        The loaded project (exposed for tests and tooling).
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    project: Optional[Project] = None

    @property
    def counts(self) -> Dict[str, int]:
        """Active finding count per rule code (sorted keys)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    @property
    def clean(self) -> bool:
        """Whether the run produced zero active findings."""
        return not self.findings


def analyze(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    strict: bool = False,
) -> AnalysisResult:
    """Run the contract rules over *paths*.

    Parameters
    ----------
    paths:
        Files or directories to scan (recursive, deterministic order).
    rules:
        Rule codes to run (default: all).
    baseline:
        Grandfathered findings (default: empty).
    strict:
        Also flag unused suppressions (suppression hygiene for
        malformed/unjustified markers is always on).
    """
    project = Project(paths)
    baseline = baseline or Baseline()
    selected = list(rules) if rules is not None else list(ALL_RULES)
    unknown = [code for code in selected if code not in ALL_RULES]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")

    raw: List[Finding] = []
    for code in selected:
        _info, runner = ALL_RULES[code]
        raw.extend(runner(project))
    raw = sorted(set(raw), key=Finding.sort_key)

    result = AnalysisResult(project=project)
    files_by_display = {sf.display_path: sf for sf in project.files}
    for finding in raw:
        sf = files_by_display.get(finding.path)
        suppression = (
            sf.suppression_for(finding.line, finding.rule) if sf else None
        )
        if suppression is not None:
            suppression.used = True
            result.suppressed.append(finding)
        elif finding in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    result.findings.extend(_hygiene_findings(project, strict, frozenset(selected)))
    for sf in project.files:
        if sf.parse_error:
            result.findings.append(
                Finding(
                    rule="SUP",
                    path=sf.display_path,
                    line=1,
                    col=0,
                    message=f"file does not parse: {sf.parse_error}",
                    scope=sf.module,
                )
            )
    result.findings.sort(key=Finding.sort_key)
    result.stale_baseline = sorted(baseline.stale_entries(raw))
    return result


def _hygiene_findings(
    project: Project, strict: bool, selected: frozenset
) -> List[Finding]:
    findings: List[Finding] = []
    for sf in project.files:
        for line in sf.malformed_markers:
            findings.append(
                Finding(
                    rule="SUP",
                    path=sf.display_path,
                    line=line,
                    col=0,
                    message=(
                        "malformed '# repro:' marker: expected "
                        "'# repro: ignore[RULE,...] -- justification'"
                    ),
                    scope=sf.module,
                    snippet=sf.snippet(line),
                )
            )
        for sup in sf.suppressions.values():
            unknown = [c for c in sup.codes if c not in KNOWN_RULES]
            if unknown:
                findings.append(
                    Finding(
                        rule="SUP",
                        path=sf.display_path,
                        line=sup.line,
                        col=0,
                        message=(
                            f"suppression names unknown rule(s) "
                            f"{', '.join(unknown)} (known: {', '.join(KNOWN_RULES)})"
                        ),
                        scope=sf.module,
                        snippet=sf.snippet(sup.line),
                    )
                )
            if not sup.justification:
                findings.append(
                    Finding(
                        rule="SUP",
                        path=sf.display_path,
                        line=sup.line,
                        col=0,
                        message=(
                            "suppression without a justification is inert: "
                            "write '# repro: ignore[RULE] -- why this is safe'"
                        ),
                        scope=sf.module,
                        snippet=sf.snippet(sup.line),
                    )
                )
            elif (
                strict
                and not unknown
                and not sup.used
                and set(sup.codes) <= selected
            ):
                findings.append(
                    Finding(
                        rule="SUP",
                        path=sf.display_path,
                        line=sup.line,
                        col=0,
                        message=(
                            f"unused suppression for {', '.join(sup.codes)}: "
                            "the finding it silenced is gone — remove it"
                        ),
                        scope=sf.module,
                        snippet=sf.snippet(sup.line),
                    )
                )
    return findings
