"""Token-ring (moving sequencer / privilege-based) atomic broadcast.

The group forms a logical ring in rank order.  A single token carries the
next global sequence number; the holder

1. assigns sequence numbers to everything it has locally pending and
   R-broadcasts the orders,
2. forwards the token — immediately if it ordered something, after
   ``idle_hold`` otherwise (so an idle ring circulates slowly instead of
   saturating the LAN).

Delivery is in contiguous sequence-number order, exactly as in the
sequencer protocol.  Compared to the fixed sequencer, ordering load is
spread over the ring but a message must wait for the token to reach its
origin — higher latency at low load, better fairness under multi-source
load.  Like the fixed sequencer it is **not** fault-tolerant: a crashed
holder loses the token and the protocol stalls (safety preserved), which
the DPU limitation tests exploit.

Satisfies the Section 5.1 specification in runs where no ring member
crashes while holding (or about to receive) the token.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..kernel.module import NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..rbcast.reliable import RBCAST_SERVICE
from ..sim.clock import Duration, ms
from .base import AbcastModuleBase, AbcastRecord, SnDeliveryBuffer

__all__ = ["TokenAbcastModule"]

_ORD = "tk.ord"
_TOKEN = "tk.token"
#: Frame overhead beyond the payload.
_TK_HEADER = 20
_TOKEN_BYTES = 16


class TokenAbcastModule(AbcastModuleBase):
    """Atomic broadcast ordered by a circulating token."""

    REQUIRES = (WellKnown.RP2P, RBCAST_SERVICE)
    PROTOCOL = "abcast-token"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        idle_hold: Duration = ms(1.0),
        instance_tag: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, group, instance_tag=instance_tag, name=name)
        self.idle_hold = idle_hold
        self._pending: List[AbcastRecord] = []
        self._buffer = SnDeliveryBuffer()
        self._holding = False
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)
        self.subscribe(RBCAST_SERVICE, "deliver", self._on_rbcast)

    def on_start(self) -> None:
        # The lowest rank mints the token when the protocol comes up.
        # (When the protocol is *installed by a replacement*, each stack
        # starts its own module as the change message is Adelivered; the
        # minting rank may briefly hold pending messages of others — they
        # are ordered on the token's first lap.)
        if self.stack_id == self.group[0]:
            self._receive_token(0)

    def on_restart(self) -> None:
        # If this stack crashed while holding the token, the forward
        # timer died with the old incarnation and the ring stalled.  The
        # holding flag and sequence counter survived, so re-arming the
        # forward regenerates the ring without minting a second token.
        if self._holding:
            self.set_timer(self.idle_hold, self._forward_token)

    @property
    def next_in_ring(self) -> int:
        """The ring successor of this stack."""
        idx = self.group.index(self.stack_id)
        return self.group[(idx + 1) % len(self.group)]

    # ------------------------------------------------------------------ #
    # ABcast: park locally until the token arrives
    # ------------------------------------------------------------------ #
    def _abcast(self, payload: Any, size_bytes: int) -> None:
        uid = self._fresh_uid()
        self.counters.incr("abcasts")
        self._pending.append(AbcastRecord(uid, payload, size_bytes))
        if self._holding:
            # Fast path: we already hold the token; order immediately.
            self._order_pending()

    # ------------------------------------------------------------------ #
    # Token handling
    # ------------------------------------------------------------------ #
    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _TOKEN):
            return NOT_MINE
        _, tag, next_sn = payload
        if tag != self.instance_tag:
            return NOT_MINE  # another incarnation's token
        self._receive_token(next_sn)
        return None

    def _receive_token(self, next_sn: int) -> None:
        self.counters.incr("token_receipts")
        self._holding = True
        self._token_sn = next_sn
        if self._pending:
            self._order_pending()
            self._forward_token()
        else:
            # Idle: hold briefly so an empty ring does not spin.
            self.set_timer(self.idle_hold, self._forward_token)

    def _order_pending(self) -> None:
        for record in self._pending:
            sn = self._token_sn
            self._token_sn += 1
            self.counters.incr("orders_assigned")
            self.call(
                RBCAST_SERVICE,
                "broadcast",
                (_ORD, self.instance_tag, sn, record.uid, record.payload, record.size_bytes),
                record.size_bytes + _TK_HEADER,
            )
        self._pending.clear()

    def _forward_token(self) -> None:
        if not self._holding:
            return
        # Order anything that arrived during an idle hold before passing.
        if self._pending:
            self._order_pending()
        self._holding = False
        self.call(
            WellKnown.RP2P,
            "send",
            self.next_in_ring,
            (_TOKEN, self.instance_tag, self._token_sn),
            _TOKEN_BYTES,
        )

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #
    def _on_rbcast(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _ORD):
            return NOT_MINE
        _, tag, sn, uid, inner, inner_size = payload
        if tag != self.instance_tag:
            return NOT_MINE
        for record in self._buffer.offer(sn, AbcastRecord(uid, inner, inner_size)):
            self._adeliver_record(record)
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Locally ABcast messages waiting for the token."""
        return len(self._pending)
