"""Atomic broadcast: service contract and shared machinery.

The specification (paper, Section 5.1, after Hadzilacos & Toueg):

* **validity** — if a correct process ABcasts *m*, it eventually
  Adelivers *m*;
* **uniform agreement** — if a process Adelivers *m*, all correct
  processes eventually Adeliver *m*;
* **uniform integrity** — every process Adelivers *m* at most once, and
  only if *m* was previously ABcast;
* **uniform total order** — if some process Adelivers *m* before *m'*,
  every process Adelivers *m'* only after it has Adelivered *m*.

Kernel service (name ``abcast``):

* call ``abcast(payload, size_bytes)``;
* response ``adeliver(origin, payload, size_bytes)``.

Payloads are opaque to the protocol; internally every ABcast call gets a
unique ``uid = (origin_rank, local_seq)``, which is what the dedup logic
and the trace-based property checkers key on.  The library ships three
interchangeable implementations — the point of the paper is that any
module satisfying this spec can replace any other on-the-fly:

========================  =============================  =======================
implementation            ordering mechanism             fault tolerance
========================  =============================  =======================
``CtAbcastModule``        consensus on batches (CT)      f < n/2 crashes
``SequencerAbcastModule`` fixed sequencer                none (stalls on its crash)
``TokenAbcastModule``     circulating token              none (stalls on loss)
========================  =============================  =======================

The two non-replicated variants deliberately omit fail-over: making a
sequencer fault-tolerant needs view synchrony, which is the circular
dependency the paper's stack avoids ("our ABcast module is not
implemented on top of a view synchrony protocol").  Their stalls are used
by the tests to demonstrate a real boundary of Algorithm 1: the *change
message travels through the old protocol*, so a dead old protocol cannot
be replaced (see ``tests/integration/test_limitations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from ..kernel.module import Module
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["Uid", "AbcastRecord", "AbcastModuleBase", "SnDeliveryBuffer"]

#: Unique message identity: (origin rank, per-origin sequence number).
Uid = Tuple[int, int]


@dataclass(frozen=True)
class AbcastRecord:
    """One ABcast message as tracked inside a protocol implementation."""

    uid: Uid
    payload: Any
    size_bytes: int

    @property
    def origin(self) -> int:
        return self.uid[0]


class AbcastModuleBase(Module):
    """Common machinery of all atomic broadcast implementations:

    * uid generation for locally ABcast messages,
    * the Adelivered-uid set guaranteeing *uniform integrity* per
      implementation (at most once per uid),
    * counters shared by the benchmarks.
    """

    PROVIDES = (WellKnown.ABCAST,)

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        instance_tag: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.group: Tuple[int, ...] = tuple(sorted(set(group)))
        if stack.stack_id not in self.group:
            raise ValueError(
                f"stack {stack.stack_id} is not in its abcast group {self.group!r}"
            )
        #: Incarnation tag: namespaces every wire frame (and consensus
        #: instance key) of this protocol incarnation.  Two incarnations
        #: of the *same* protocol — e.g. the paper's experiment replacing
        #: CT-ABcast by itself — must not interpret each other's frames,
        #: so the replacement module derives a fresh agreed tag from the
        #: replacement sequence number for every module it creates.
        self.instance_tag: str = (
            instance_tag if instance_tag is not None else f"{self.protocol}/v0"
        )
        self.counters = Counter()
        self._next_local_seq = 0
        self._adelivered: Set[Uid] = set()
        self._adelivered_order: list = []  # uids in local delivery order
        self.export_call(WellKnown.ABCAST, "abcast", self._abcast)

    # ------------------------------------------------------------------ #
    # To be supplied by implementations
    # ------------------------------------------------------------------ #
    def _abcast(self, payload: Any, size_bytes: int) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _fresh_uid(self) -> Uid:
        uid = (self.stack_id, self._next_local_seq)
        self._next_local_seq += 1
        return uid

    def _adeliver_record(self, record: AbcastRecord) -> bool:
        """Adeliver *record* unless its uid was already delivered.

        Returns ``True`` when the delivery happened.  This is the uniform
        integrity guard: one delivery per uid per stack, ever.
        """
        if record.uid in self._adelivered:
            self.counters.incr("duplicate_deliveries_suppressed")
            return False
        self._adelivered.add(record.uid)
        self._adelivered_order.append(record.uid)
        self.counters.incr("adelivered")
        self.respond(
            WellKnown.ABCAST, "adeliver", record.origin, record.payload, record.size_bytes
        )
        return True

    @property
    def delivered_uids(self) -> list:
        """Uids in local Adelivery order (inspected by tests/checkers)."""
        return list(self._adelivered_order)


class SnDeliveryBuffer:
    """Contiguous in-order release of (sequence-number, record) pairs.

    Used by the sequencer and token protocols: orders arrive tagged with a
    global sequence number; delivery must follow 0, 1, 2, ... with gaps
    buffered until filled.
    """

    def __init__(self) -> None:
        self._next_sn = 0
        self._pending: Dict[int, AbcastRecord] = {}

    @property
    def next_sn(self) -> int:
        """The sequence number the buffer is waiting for."""
        return self._next_sn

    @property
    def pending_count(self) -> int:
        """Orders received but blocked behind a gap."""
        return len(self._pending)

    def offer(self, sn: int, record: AbcastRecord) -> list:
        """Add one order; return the records now deliverable, in order."""
        if sn < self._next_sn:
            return []  # stale duplicate
        self._pending.setdefault(sn, record)
        out = []
        while self._next_sn in self._pending:
            out.append(self._pending.pop(self._next_sn))
            self._next_sn += 1
        return out
