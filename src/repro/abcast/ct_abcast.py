"""Consensus-based atomic broadcast (the paper's ABcast protocol).

The Chandra–Toueg reduction of atomic broadcast to consensus:

1. an ABcast message is R-broadcast to the group (dissemination);
2. each process accumulates R-delivered-but-unordered messages in
   ``unordered`` and, whenever that set is non-empty, proposes it (as a
   batch, sorted by uid) in the next consensus instance ``k``;
3. the decision of instance ``k`` — one process's batch — is Adelivered
   in deterministic (uid-sorted) order, skipping already-delivered uids;
   then instance ``k+1`` may start.

Instances are strictly sequential per process; decisions arriving out of
order (rbcast relays are not FIFO across channels) are buffered and
applied in instance order.  Consensus here is executed **on full message
payloads, not identifiers** — the paper explicitly notes its prototype
does the same ("the relatively large latency values are due to
non-optimized atomic broadcast algorithm (e.g., consensus is executed on
messages and not on message identifiers)"), and this choice is what makes
latency grow visibly with message size and group size.  An
identifier-only variant is an ablation knob (``consensus_on_ids=True``).

Fault tolerance: inherited from consensus and rbcast — any minority of
crash-stop failures.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..kernel.module import NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..rbcast.reliable import RBCAST_SERVICE
from .base import AbcastModuleBase, AbcastRecord, Uid

__all__ = ["CtAbcastModule"]

_MSG = "ab.msg"
#: Frame overhead of one disseminated message (uid + tags).
_AB_HEADER = 16
#: Overhead of one batch entry inside a consensus proposal.
_BATCH_ENTRY_OVERHEAD = 16


class CtAbcastModule(AbcastModuleBase):
    """Atomic broadcast by reduction to Chandra–Toueg consensus."""

    REQUIRES = (RBCAST_SERVICE, WellKnown.CONSENSUS)
    PROTOCOL = "abcast-ct"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        consensus_on_ids: bool = False,
        instance_tag: Optional[str] = None,
        consensus_service: str = WellKnown.CONSENSUS,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, group, instance_tag=instance_tag, name=name)
        # The consensus dependency is a *service name*, so this module can
        # transparently consume the r-consensus indirection level when the
        # consensus-replacement extension is installed.
        self.consensus_service = consensus_service
        self.requires = (RBCAST_SERVICE, consensus_service)
        self.consensus_on_ids = consensus_on_ids
        #: R-delivered but not yet Adelivered, keyed by uid.
        self._unordered: Dict[Uid, AbcastRecord] = {}
        #: Next consensus instance to apply.
        self._next_instance = 0
        #: Instances we have proposed in (to propose at most once each).
        self._proposed: set = set()
        #: Decisions that arrived ahead of ``_next_instance``.
        self._pending_decisions: Dict[int, tuple] = {}
        self.subscribe(RBCAST_SERVICE, "deliver", self._on_rbcast)
        self.subscribe(self.consensus_service, "decide", self._on_decide)

    # ------------------------------------------------------------------ #
    # ABcast: disseminate via reliable broadcast
    # ------------------------------------------------------------------ #
    def _abcast(self, payload: Any, size_bytes: int) -> None:
        uid = self._fresh_uid()
        self.counters.incr("abcasts")
        self.call(
            RBCAST_SERVICE,
            "broadcast",
            (_MSG, self.instance_tag, uid, payload, size_bytes),
            size_bytes + _AB_HEADER,
        )

    def _on_rbcast(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _MSG):
            return NOT_MINE
        _, tag, uid, inner, inner_size = payload
        if tag != self.instance_tag:
            return NOT_MINE  # another incarnation's traffic
        if uid in self._adelivered or uid in self._unordered:
            return
        self._unordered[uid] = AbcastRecord(uid, inner, inner_size)
        self._maybe_propose()

    # ------------------------------------------------------------------ #
    # Ordering: sequential consensus instances on batches
    # ------------------------------------------------------------------ #
    def _maybe_propose(self) -> None:
        k = self._next_instance
        if k in self._proposed or not self._unordered:
            return
        if k in self._pending_decisions:
            return  # the decision is already here; no point proposing
        self._proposed.add(k)
        batch = tuple(
            (uid, rec.payload, rec.size_bytes)
            for uid, rec in sorted(self._unordered.items())
        )
        if self.consensus_on_ids:
            proposal_size = len(batch) * _BATCH_ENTRY_OVERHEAD
        else:
            proposal_size = sum(size for _uid, _p, size in batch) + len(batch) * _BATCH_ENTRY_OVERHEAD
        self.counters.incr("proposals")
        # Consensus instances are namespaced by the incarnation tag so a
        # replacement installing a second CT-ABcast module can share the
        # one consensus module without instance-id collisions.
        self.call(self.consensus_service, "propose", (self.instance_tag, k), batch, proposal_size)

    def _on_decide(self, instance_key: Any, batch: Any, size_bytes: int):
        if not (isinstance(instance_key, tuple) and len(instance_key) == 2):
            return NOT_MINE
        tag, instance_id = instance_key
        if tag != self.instance_tag:
            return NOT_MINE  # another incarnation's instance
        if instance_id < self._next_instance:
            return None  # replayed decision we already applied
        self._pending_decisions[instance_id] = batch
        while self._next_instance in self._pending_decisions:
            decided = self._pending_decisions.pop(self._next_instance)
            self._apply_decision(decided)
            self._next_instance += 1
        self._maybe_propose()

    def _apply_decision(self, batch: tuple) -> None:
        self.counters.incr("batches_applied")
        for uid, payload, size in sorted(batch, key=lambda entry: entry[0]):
            self._unordered.pop(uid, None)
            self._adeliver_record(AbcastRecord(uid, payload, size))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def unordered_count(self) -> int:
        """Messages disseminated but not yet ordered (backlog gauge)."""
        return len(self._unordered)
