"""Atomic broadcast implementations.

All three satisfy the paper's Section 5.1 specification (under the fault
assumptions stated in each module), so each is a valid replacement target
for the others via the DPU algorithm.
"""

from .base import AbcastModuleBase, AbcastRecord, SnDeliveryBuffer, Uid
from .ct_abcast import CtAbcastModule
from .sequencer import SequencerAbcastModule
from .token import TokenAbcastModule

__all__ = [
    "Uid",
    "AbcastRecord",
    "AbcastModuleBase",
    "SnDeliveryBuffer",
    "CtAbcastModule",
    "SequencerAbcastModule",
    "TokenAbcastModule",
]
