"""Fixed-sequencer atomic broadcast.

The simplest member of the fixed-sequencer family (cf. Défago, Schiper &
Urbán's survey): one distinguished process — by default the lowest rank
of the group — assigns a global sequence number to every message and
R-broadcasts the order; everyone delivers in contiguous sequence-number
order.

* latency: one RP2P hop to the sequencer + one R-broadcast — *shorter*
  than the consensus path at low load;
* the sequencer is a throughput hot-spot — *worse* than consensus-based
  batching near saturation (visible in the protocol-comparison bench);
* **fault tolerance: none.**  If the sequencer crashes the protocol
  stalls: safety is preserved (nothing undelivered gets ordered), but
  liveness is lost.  Fail-over would require view synchrony — exactly
  the dependency the paper's stack avoids — so it is intentionally out
  of scope; ``tests/integration/test_limitations.py`` uses the stall to
  demonstrate that Algorithm 1 cannot replace a *dead* protocol (the
  change request travels through the old protocol itself).

Satisfies the full Section 5.1 specification in runs where the sequencer
does not crash.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..kernel.module import NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..rbcast.reliable import RBCAST_SERVICE
from .base import AbcastModuleBase, AbcastRecord, SnDeliveryBuffer

__all__ = ["SequencerAbcastModule"]

_REQ = "sq.req"
_ORD = "sq.ord"
#: Frame overhead beyond the payload (uid, sn, tags).
_SQ_HEADER = 20


class SequencerAbcastModule(AbcastModuleBase):
    """Atomic broadcast ordered by a fixed sequencer."""

    REQUIRES = (WellKnown.RP2P, RBCAST_SERVICE)
    PROTOCOL = "abcast-seq"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        sequencer: Optional[int] = None,
        instance_tag: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, group, instance_tag=instance_tag, name=name)
        self.sequencer = sequencer if sequencer is not None else self.group[0]
        if self.sequencer not in self.group:
            raise ValueError(
                f"sequencer {self.sequencer} is not in the group {self.group!r}"
            )
        self._next_sn = 0  # used only by the sequencer itself
        self._buffer = SnDeliveryBuffer()
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)
        self.subscribe(RBCAST_SERVICE, "deliver", self._on_rbcast)

    @property
    def is_sequencer(self) -> bool:
        """Whether this stack hosts the ordering role."""
        return self.stack_id == self.sequencer

    # ------------------------------------------------------------------ #
    # ABcast: route to the sequencer
    # ------------------------------------------------------------------ #
    def _abcast(self, payload: Any, size_bytes: int) -> None:
        uid = self._fresh_uid()
        self.counters.incr("abcasts")
        if self.is_sequencer:
            self._assign_order(AbcastRecord(uid, payload, size_bytes))
        else:
            self.call(
                WellKnown.RP2P,
                "send",
                self.sequencer,
                (_REQ, self.instance_tag, uid, payload, size_bytes),
                size_bytes + _SQ_HEADER,
            )

    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _REQ):
            return NOT_MINE
        _, tag, uid, inner, inner_size = payload
        if tag != self.instance_tag:
            return NOT_MINE  # another incarnation's traffic
        if not self.is_sequencer:
            return None  # misrouted request: claimed but ignored
        self._assign_order(AbcastRecord(uid, inner, inner_size))
        return None

    # ------------------------------------------------------------------ #
    # Ordering (sequencer only)
    # ------------------------------------------------------------------ #
    def _assign_order(self, record: AbcastRecord) -> None:
        sn = self._next_sn
        self._next_sn += 1
        self.counters.incr("orders_assigned")
        self.call(
            RBCAST_SERVICE,
            "broadcast",
            (_ORD, self.instance_tag, sn, record.uid, record.payload, record.size_bytes),
            record.size_bytes + _SQ_HEADER,
        )

    # ------------------------------------------------------------------ #
    # Delivery (everyone, in contiguous sn order)
    # ------------------------------------------------------------------ #
    def _on_rbcast(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _ORD):
            return NOT_MINE
        _, tag, sn, uid, inner, inner_size = payload
        if tag != self.instance_tag:
            return NOT_MINE
        for record in self._buffer.offer(sn, AbcastRecord(uid, inner, inner_size)):
            self._adeliver_record(record)
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def undelivered_orders(self) -> int:
        """Orders buffered behind a sequence gap."""
        return self._buffer.pending_count
