"""Workload generation (the paper's constant aggregate load)."""

from .generator import LoadGeneratorModule
from .payload import FixedPayload, PayloadModel

__all__ = ["LoadGeneratorModule", "PayloadModel", "FixedPayload"]
