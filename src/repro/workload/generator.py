"""Load generators: the paper's "constant load by all machines".

A :class:`LoadGeneratorModule` sits on one stack, ABcasts payloads at a
configured rate through a configurable service (``r-abcast`` with the
replacement layer, plain ``abcast`` for the without-layer baseline runs
of Figure 6), and registers every send in the shared
:class:`~repro.dpu.probes.DeliveryLog`.

Two arrival processes:

* ``jitter=0`` — strictly periodic (the paper's constant load);
* ``jitter>0`` — exponential jitter around the period (Poisson-ish),
  for robustness tests.

``burst>1`` sends that many payloads back-to-back per tick while keeping
the configured mean rate (the tick period stretches accordingly) — the
scenario engine uses this for bursty adversarial workloads.

The generator *is* the application of the experiments: if it can keep
calling without blocking while a replacement runs, the paper's "the
application on top of the stack is never blocked" claim holds.
"""

from __future__ import annotations

from typing import Optional

from ..dpu.probes import DeliveryLog
from ..kernel.module import Module
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, Time
from ..sim.random import BufferedDraws
from .payload import FixedPayload, PayloadModel

__all__ = ["LoadGeneratorModule"]


class LoadGeneratorModule(Module):
    """Constant-rate ABcast source on one stack."""

    PROTOCOL = "workload"

    def __init__(
        self,
        stack: Stack,
        log: DeliveryLog,
        rate_per_sec: float,
        start_at: Time = 0.0,
        stop_at: Optional[Time] = None,
        service: str = WellKnown.R_ABCAST,
        payload: Optional[PayloadModel] = None,
        jitter: float = 0.0,
        burst: int = 1,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name, provides=(), requires=(service,))
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.log = log
        self.rate = rate_per_sec
        self.burst = int(burst)
        self.period: Duration = burst / rate_per_sec
        self.start_at = start_at
        self.stop_at = stop_at
        self.service = service
        self.payload_model = payload if payload is not None else FixedPayload()
        self.jitter = jitter
        # Jitter draws are homogeneous exponentials, so block-buffering
        # reproduces the exact scalar-draw sequence (same seed, same run).
        self._rng = stack.sim.rng.stream(f"workload.{stack.stack_id}")
        self._draws = BufferedDraws(self._rng)
        self._seq = 0
        self.sent = 0

    def on_start(self) -> None:
        delay = max(0.0, self.start_at - self.now)
        self.set_timer(delay, self._tick)

    def on_restart(self) -> None:
        # The tick timer died with the crash; resume the load one period
        # after recovery (no burst at the recovery instant) unless the
        # workload window already closed — and never before the window
        # opens (a crash during the warm-up must not start the load early).
        if self.stop_at is None or self.now < self.stop_at:
            self.set_timer(max(self.period, self.start_at - self.now), self._tick)

    def _tick(self) -> None:
        if self.stop_at is not None and self.now >= self.stop_at:
            return
        for _ in range(self.burst):
            self.send_one()
        gap = self.period
        if self.jitter > 0.0:
            # Mix a deterministic component with an exponential tail so
            # the mean rate stays exact.
            gap = (1.0 - self.jitter) * self.period + self._draws.exponential(
                self.jitter * self.period
            )
        self.set_timer(gap, self._tick)

    def send_one(self) -> None:
        """ABcast one payload right now (also usable directly by tests)."""
        payload, size = self.payload_model.make(self.stack_id, self._seq)
        self._seq += 1
        self.sent += 1
        key = payload[0]
        self.log.note_send(key, self.stack_id, self.now)
        self.call(self.service, "abcast", payload, size)
