"""Workload payloads.

Every generated payload is a tuple ``(key, body)`` whose first element is
a globally unique key ``("wl", stack, seq)`` — the identity used by the
delivery log and the ABcast property checkers (see
:func:`repro.dpu.probes.payload_key`).  The body is a placeholder; only
the *declared* size travels through the size-accounting network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["PayloadModel", "FixedPayload"]


class PayloadModel:
    """Produces (payload, size_bytes) pairs for a generator."""

    def make(self, stack_id: int, seq: int) -> Tuple[Any, int]:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedPayload(PayloadModel):
    """Fixed-size payloads (the paper uses a constant message size)."""

    size_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")

    def make(self, stack_id: int, seq: int) -> Tuple[Any, int]:
        key = ("wl", stack_id, seq)
        return (key, self.size_bytes), self.size_bytes
