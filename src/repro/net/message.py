"""Network messages and size accounting.

A :class:`NetMessage` is what travels on the simulated wire: source and
destination ranks, an opaque payload (any Python object — the simulator
never serialises it), and a **declared size in bytes** used for
transmission-time modelling.  Protocol layers add their header sizes via
the constants below, mirroring real encapsulation so that e.g. consensus
on full payloads (the paper notes their prototype runs "consensus on
messages and not on message identifiers") is visibly more expensive than
consensus on identifiers — one of our ablations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "NetMessage",
    "UDP_HEADER_BYTES",
    "RP2P_HEADER_BYTES",
    "estimate_payload_size",
]

#: IPv4 (20) + UDP (8) header bytes added to every datagram.
UDP_HEADER_BYTES = 28
#: Our reliable point-to-point layer header (seq, ack, flags, checksum).
RP2P_HEADER_BYTES = 12

_msg_counter = itertools.count(1)


@dataclass(frozen=True)
class NetMessage:
    """One datagram in flight.

    Attributes
    ----------
    src / dst:
        Machine ranks.
    payload:
        Opaque protocol data (not serialised by the simulator).
    size_bytes:
        Bytes on the wire, including all headers below this layer.
    msg_id:
        Globally unique id, for counters and debugging.
    """

    src: int
    dst: int
    payload: Any
    size_bytes: int
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


# Register NetMessage with the realtime wire codec so an envelope nested
# *inside* a payload (e.g. a diagnostic frame quoting the original
# message) survives the safe codec instead of failing encode.  The wire
# envelope itself is the codec's fixed header, not this registration.
def _register_wire_type() -> None:
    from ..runtime.codec import register_wire_type

    register_wire_type(
        "net.NetMessage",
        NetMessage,
        lambda m: (m.src, m.dst, m.payload, m.size_bytes, m.msg_id),
        lambda f: NetMessage(
            src=f[0], dst=f[1], payload=f[2], size_bytes=f[3], msg_id=f[4]
        ),
    )


_register_wire_type()


def estimate_payload_size(obj: Any, default: int = 64) -> int:
    """A rough, deterministic wire-size estimate for a Python payload.

    Protocols *should* declare sizes explicitly; this helper exists for
    examples and tests.  The estimate follows typical compact binary
    encodings (varint-free, length-prefixed):

    * ``None``: 1 byte, ``bool``: 1, ``int``/``float``: 8
    * ``str``/``bytes``: length + 4
    * sequences / sets: 4 + sum of elements
    * mappings: 4 + sum of keys and values
    * dataclass-like objects with ``__dict__``: treated as a mapping
    * anything else: *default* bytes.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj) + 4
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_payload_size(x, default) for x in obj)
    if isinstance(obj, dict):
        return 4 + sum(
            estimate_payload_size(k, default) + estimate_payload_size(v, default)
            for k, v in obj.items()
        )
    inner = getattr(obj, "__dict__", None)
    if inner:
        return estimate_payload_size(inner, default)
    return default
