"""Network substrate: the simulated switched LAN and its kernel doorways.

``SimNetwork`` + ``SwitchedLan`` model the paper's 100Base-TX testbed
(per-NIC transmit serialisation, propagation jitter, loss/duplication and
partitions for fault injection).  ``UdpModule`` exposes the network as the
kernel service ``udp``; ``Rp2pModule`` builds reliable FIFO point-to-point
channels (service ``rp2p``) on top of it.
"""

from .message import (
    RP2P_HEADER_BYTES,
    UDP_HEADER_BYTES,
    NetMessage,
    estimate_payload_size,
)
from .network import CorruptedPayload, LinkImpairment, SimNetwork
from .rp2p import Rp2pModule
from .topology import SwitchedLan
from .udp import UdpModule

__all__ = [
    "NetMessage",
    "UDP_HEADER_BYTES",
    "RP2P_HEADER_BYTES",
    "estimate_payload_size",
    "SimNetwork",
    "LinkImpairment",
    "CorruptedPayload",
    "SwitchedLan",
    "UdpModule",
    "Rp2pModule",
]
