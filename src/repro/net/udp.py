"""The UDP module: kernel-facing doorway to the simulated network.

Provides the ``udp`` service (paper, Figure 4: "an interface to the UDP
(unreliable) protocol"):

* call ``send(dst, payload, size_bytes)`` — datagram out (unreliable,
  unordered, possibly duplicated: whatever the LAN does);
* response ``deliver(src, payload, size_bytes)`` — datagram in.

Receive processing charges the host CPU (`recv_cost`) before the response
is emitted, so floods of datagrams contend with protocol work exactly as
interrupts + kernel processing do on a real host.
"""

from __future__ import annotations

from typing import Any, Optional

from ..kernel.module import Module
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..runtime.api import Transport
from ..sim.clock import Duration, Time, us
from .message import UDP_HEADER_BYTES, NetMessage
from .network import CorruptedPayload

__all__ = ["UdpModule"]

#: Default CPU cost to hand one received datagram to the stack.
DEFAULT_RECV_COST: Duration = us(15.0)
#: Default CPU cost to push one datagram out.
DEFAULT_SEND_COST: Duration = us(10.0)


class UdpModule(Module):
    """Kernel module providing the ``udp`` service over any
    :class:`~repro.runtime.api.Transport` (the simulated LAN or the
    realtime UDP-socket transport — same module, same semantics)."""

    PROVIDES = (WellKnown.UDP,)
    REQUIRES = ()
    PROTOCOL = "udp"

    def __init__(
        self,
        stack: Stack,
        network: Transport,
        recv_cost: Duration = DEFAULT_RECV_COST,
        send_cost: Duration = DEFAULT_SEND_COST,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.network = network
        self.recv_cost = recv_cost
        self.send_cost = send_cost
        #: Frames that arrived mangled (checksum off upstream) and were
        #: discarded here because they fail protocol-level parsing.
        self.garbage_dropped = 0
        self.export_call(WellKnown.UDP, "send", self._send)
        network.attach(stack.stack_id, self._on_datagram)

    def on_stop(self) -> None:
        self.network.detach(self.stack_id)

    # ------------------------------------------------------------------ #
    # Outbound
    # ------------------------------------------------------------------ #
    def _send(self, dst: int, payload: Any, size_bytes: int) -> None:
        message = NetMessage(
            src=self.stack_id,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes + UDP_HEADER_BYTES,
        )
        if dst == self.stack_id:
            # Loopback: skip NIC and LAN, but still cost a receive.
            self.network.send_local(message)
            return
        # The send-side CPU cost was already charged by the kernel call
        # dispatch; the explicit extra below models the syscall + copy.
        self.stack.backend.execute(self.send_cost, self.network.send, message)

    # ------------------------------------------------------------------ #
    # Inbound
    # ------------------------------------------------------------------ #
    def _on_datagram(self, message: NetMessage, arrival: Time) -> None:
        if isinstance(message.payload, CorruptedPayload):
            # A mangled frame reached the host (no checksum below us): it
            # fails frame parsing at this doorway and is discarded — but
            # the network already counted the breach, so the corruption
            # containment checker still flags the run.
            self.garbage_dropped += 1
            return
        # Charge receive processing on this host's CPU, then hand the
        # payload to whoever requires the udp service.
        self.respond(
            WellKnown.UDP,
            "deliver",
            message.src,
            message.payload,
            message.size_bytes - UDP_HEADER_BYTES,
            cost=self.recv_cost,
        )
