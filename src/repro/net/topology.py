"""Network topology parameters.

The paper's testbed is seven PCs on a duplex 100Base-TX switched
Ethernet.  :class:`SwitchedLan` captures that shape: full-duplex
point-to-point connectivity through one switch, per-NIC transmit
serialisation at a configurable bandwidth, a one-way propagation latency
model, and optional random loss (exercised by the RP2P retransmission
tests — the real LAN loses close to nothing, but the reliable layer must
be *shown* to tolerate it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.latency import LatencyModel, lan_latency

__all__ = ["SwitchedLan"]


@dataclass
class SwitchedLan:
    """Parameters of a switched full-duplex LAN.

    Attributes
    ----------
    bandwidth_bps:
        Per-NIC transmit bandwidth in bits/second (default: 100 Mb/s,
        the paper's 100Base-TX).
    latency:
        One-way propagation + switching latency model (excluding
        transmission time, which is ``size / bandwidth``).
    loss_rate:
        Independent probability that a datagram is silently dropped.
    duplicate_rate:
        Independent probability that a datagram is delivered twice
        (stress knob for the dedup logic in RP2P).
    """

    bandwidth_bps: float = 100e6
    latency: LatencyModel = field(default_factory=lan_latency)
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds the sender NIC is occupied transmitting *size_bytes*."""
        return (size_bytes * 8.0) / self.bandwidth_bps
