"""RP2P: reliable FIFO point-to-point channels over UDP.

The paper's Figure 4 lists RP2P ("reliable point-to-point communication
between distributed processes") directly above UDP.  This implementation
is a classic positive-ack protocol:

* per-destination sequence numbers; the receiver delivers strictly in
  order (FIFO per channel) and buffers out-of-order arrivals;
* cumulative acknowledgements; duplicates (from the LAN or from
  retransmissions) are detected by sequence number and re-acked;
* a per-destination retransmission timer with exponential backoff resends
  everything unacknowledged — so the channel is reliable as long as the
  destination has not crashed (crash-stop: messages to crashed machines
  are eventually abandoned when the failure detector is used by upper
  layers; RP2P itself keeps trying, which is harmless in simulation and
  matches a TCP-like substrate).

Service vocabulary:

* call ``send(dst, payload, size_bytes)``
* response ``deliver(src, payload, size_bytes)``
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.clock import Duration, ms
from ..sim.monitors import Counter
from .message import RP2P_HEADER_BYTES

__all__ = ["Rp2pModule"]

#: Initial retransmission timeout: generous for a LAN, so in loss-free
#: runs the timer never fires and costs nothing.
DEFAULT_RTO: Duration = ms(20.0)
#: Backoff cap.
MAX_RTO: Duration = ms(500.0)

_DATA = "rp2p.data"
_ACK = "rp2p.ack"


class Rp2pModule(Module):
    """Reliable FIFO point-to-point channels (one per destination)."""

    PROVIDES = (WellKnown.RP2P,)
    REQUIRES = (WellKnown.UDP,)
    PROTOCOL = "rp2p"

    def __init__(
        self,
        stack: Stack,
        rto: Duration = DEFAULT_RTO,
        ack_delay: Duration = ms(1.0),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.rto = rto
        #: Cumulative-ACK aggregation delay.  0 = ack every datagram
        #: immediately; the default batches the acks of a 1 ms window
        #: into one frame per peer (safe: well below the 20 ms RTO).
        self.ack_delay = ack_delay
        self.counters = Counter()
        self._ack_pending: set = set()
        self._ack_timer_armed = False
        # Sender state, per destination.
        self._next_out: Dict[int, int] = {}
        self._unacked: Dict[int, Dict[int, Tuple[Any, int]]] = {}
        self._retx_timer: Dict[int, object] = {}
        self._cur_rto: Dict[int, Duration] = {}
        # Receiver state, per source.
        self._next_in: Dict[int, int] = {}
        self._ooo: Dict[int, Dict[int, Tuple[Any, int]]] = {}

        self.export_call(WellKnown.RP2P, "send", self._send)
        self.subscribe(WellKnown.UDP, "deliver", self._on_udp)

    def on_restart(self) -> None:
        # Retransmission and ack timers died with the old incarnation;
        # the handles left in the tables are dead, so drop them and
        # re-arm from the surviving sender state.  Without this a
        # recovered node never again retransmits its own unacked frames
        # and never acks, so peers retransmit to it forever.
        self._retx_timer.clear()
        self._ack_timer_armed = False
        for dst in sorted(self._unacked):
            if self._unacked[dst]:
                self._cur_rto[dst] = self.rto
                self._arm_timer(dst)
        if self._ack_pending:
            self._flush_acks()

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def _send(self, dst: int, payload: Any, size_bytes: int) -> None:
        if dst == self.stack_id:
            # Local shortcut: a process always reliably reaches itself.
            self.counters.incr("self_delivered")
            self.respond(WellKnown.RP2P, "deliver", self.stack_id, payload, size_bytes)
            return
        seq = self._next_out.get(dst, 0)
        self._next_out[dst] = seq + 1
        self._unacked.setdefault(dst, {})[seq] = (payload, size_bytes)
        self.counters.incr("data_sent")
        self._transmit(dst, seq, payload, size_bytes)
        self._arm_timer(dst)

    def _transmit(self, dst: int, seq: int, payload: Any, size_bytes: int) -> None:
        self.call(
            WellKnown.UDP,
            "send",
            dst,
            (_DATA, self.stack_id, seq, payload, size_bytes),
            size_bytes + RP2P_HEADER_BYTES,
        )

    # ------------------------------------------------------------------ #
    # Retransmission
    # ------------------------------------------------------------------ #
    def _arm_timer(self, dst: int) -> None:
        if dst in self._retx_timer:
            return
        self._cur_rto.setdefault(dst, self.rto)
        handle = self.set_timer(self._cur_rto[dst], self._on_timeout, dst)
        if handle is not None:
            self._retx_timer[dst] = handle

    def _disarm_timer(self, dst: int) -> None:
        handle = self._retx_timer.pop(dst, None)
        if handle is not None:
            self.cancel_timer(handle)
        self._cur_rto[dst] = self.rto

    def _on_timeout(self, dst: int) -> None:
        self._retx_timer.pop(dst, None)
        pending = self._unacked.get(dst)
        if not pending:
            self._cur_rto[dst] = self.rto
            return
        for seq in sorted(pending):
            payload, size_bytes = pending[seq]
            self.counters.incr("retransmissions")
            self._transmit(dst, seq, payload, size_bytes)
        self._cur_rto[dst] = min(self._cur_rto.get(dst, self.rto) * 2.0, MAX_RTO)
        self._arm_timer(dst)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    def _on_udp(self, src: int, payload: Any, size_bytes: int):
        if not isinstance(payload, tuple) or not payload:
            return NOT_MINE  # other udp users share the doorway
        tag = payload[0]
        if tag == _DATA:
            _, sender, seq, inner, inner_size = payload
            self._on_data(sender, seq, inner, inner_size)
        elif tag == _ACK:
            _, sender, cum_ack = payload
            self._on_ack(sender, cum_ack)
        else:
            return NOT_MINE
        return None

    def _on_data(self, src: int, seq: int, payload: Any, size_bytes: int) -> None:
        expected = self._next_in.get(src, 0)
        if seq < expected:
            # Duplicate of something already delivered: re-ack, drop.
            self.counters.incr("duplicates_dropped")
            self._send_ack(src)
            return
        if seq > expected:
            self.counters.incr("out_of_order_buffered")
            self._ooo.setdefault(src, {})[seq] = (payload, size_bytes)
            self._send_ack(src)
            return
        # In-order: deliver it and drain the out-of-order buffer.
        self._deliver(src, payload, size_bytes)
        expected += 1
        buffered = self._ooo.get(src, {})
        while expected in buffered:
            inner, inner_size = buffered.pop(expected)
            self._deliver(src, inner, inner_size)
            expected += 1
        self._next_in[src] = expected
        self._send_ack(src)

    def _deliver(self, src: int, payload: Any, size_bytes: int) -> None:
        self.counters.incr("delivered")
        self.respond(WellKnown.RP2P, "deliver", src, payload, size_bytes)

    def _send_ack(self, src: int) -> None:
        if self.ack_delay <= 0:
            self._emit_ack(src)
            return
        self._ack_pending.add(src)
        if not self._ack_timer_armed:
            self._ack_timer_armed = True
            # The flush timer is one-shot and never cancelled: fast path
            # (one fires per 1 ms ack window under load).
            self.set_timer_fast(self.ack_delay, self._flush_acks)

    def _flush_acks(self) -> None:
        self._ack_timer_armed = False
        pending, self._ack_pending = self._ack_pending, set()
        for src in sorted(pending):
            self._emit_ack(src)

    def _emit_ack(self, src: int) -> None:
        cum_ack = self._next_in.get(src, 0) - 1
        self.counters.incr("acks_sent")
        self.call(
            WellKnown.UDP,
            "send",
            src,
            (_ACK, self.stack_id, cum_ack),
            RP2P_HEADER_BYTES,
        )

    def _on_ack(self, src: int, cum_ack: int) -> None:
        pending = self._unacked.get(src)
        if not pending:
            return
        for seq in [s for s in pending if s <= cum_ack]:
            del pending[seq]
        if not pending:
            self._disarm_timer(src)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def unacked_count(self, dst: Optional[int] = None) -> int:
        """Messages sent but not yet acknowledged (per peer or total)."""
        if dst is not None:
            return len(self._unacked.get(dst, ()))
        return sum(len(p) for p in self._unacked.values())
