"""The simulated network.

:class:`SimNetwork` connects the machines of a system through a
:class:`~repro.net.topology.SwitchedLan`:

* **transmit serialisation** — each sender NIC transmits one frame at a
  time (``size / bandwidth``), so bursts queue at the sender exactly as
  on real Ethernet; this is one of the two queueing points (with the CPU)
  that produce the latency-versus-load curves of the paper's Figure 6;
* **propagation** — a latency-model draw per datagram;
* **impairments** — independent loss and duplication draws, plus explicit
  **partitions** for fault-injection tests, **per-link impairments**
  (loss/duplication/reorder bursts and added latency on selected links,
  see :class:`LinkImpairment`) and a global :attr:`SimNetwork.extra_latency`
  knob for injected latency spikes;
* **corruption** — an independent per-datagram corruption draw (the
  network-wide :attr:`SimNetwork.corrupt_rate` floor plus any per-link
  :attr:`LinkImpairment.corrupt_rate`).  With :attr:`SimNetwork.checksum`
  on (the default) a corrupted frame is *detected and dropped* at the
  receiver NIC — tolerated corruption: the reliable layers retransmit
  and the ABcast properties must still hold.  With the checksum off the
  mangled frame is delivered, its payload wrapped in
  :class:`CorruptedPayload`, and counted — *flagged* corruption: the
  containment checker
  (:func:`repro.dpu.abcast_checker.check_corruption_containment`) fails
  any run in which garbage crossed into a host unprotected;
* **crash semantics** — datagrams from crashed senders are never sent;
  datagrams to crashed receivers are silently dropped (the receiver hook
  double-checks at delivery time, covering crashes that happen while the
  datagram is in flight).

The network is deliberately below the kernel: it moves payloads between
*machines*; the :class:`~repro.net.udp.UdpModule` is the kernel-facing
doorway.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING,
)

import numpy as np

from ..errors import NetworkError, UnknownDestinationError
from ..runtime.api import Transport
from ..sim.clock import Duration, Time
from ..sim.random import BufferedDraws

if TYPE_CHECKING:  # R1 seam purity: engine types appear in annotations only —
    # SimNetwork drives the engine through the Scheduler/Transport seam objects
    # handed to it, never by importing engine internals at runtime.
    from ..sim.engine import Simulator
    from ..sim.process import Machine
from .message import NetMessage
from .topology import SwitchedLan

__all__ = ["SimNetwork", "LinkImpairment", "CorruptedPayload"]


@dataclass(frozen=True)
class CorruptedPayload:
    """A payload mangled on the wire (delivered only with the checksum off).

    The simulator never serialises payloads, so "bit flips" are modelled
    structurally: the original object is wrapped, which makes the frame
    unparseable to every protocol layer above UDP.  The UDP doorway
    discards such frames defensively (garbage fails frame parsing), but
    the network's ``corrupted_delivered`` counter records that corruption
    crossed into the host — which is exactly what the containment
    checker flags.
    """

    original: object


@dataclass(frozen=True)
class LinkImpairment:
    """Extra misbehaviour on one directed link (on top of the LAN's own).

    Attributes
    ----------
    loss_rate / duplicate_rate:
        Added to the LAN-wide rates for datagrams on this link (the sum
        is clamped to 1).
    reorder_rate:
        Probability that a datagram on this link is held back by an extra
        uniform ``[0, reorder_delay)`` seconds — later traffic overtakes
        it, producing genuine reordering bursts.
    reorder_delay:
        Upper bound of the reorder hold-back, in seconds.
    extra_latency:
        Deterministic extra one-way delay on this link, in seconds
        (a per-link latency spike).
    corrupt_rate:
        Probability that a datagram on this link is corrupted in flight
        (added to the network-wide :attr:`SimNetwork.corrupt_rate` floor,
        the sum clamped to 1).  See the module docstring for the
        checksum-on (tolerated) vs checksum-off (flagged) semantics.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay: Duration = 0.0
    extra_latency: Duration = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("loss_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise NetworkError(f"{attr} must be in [0, 1], got {value!r}")
        if self.reorder_delay < 0.0 or self.extra_latency < 0.0:
            raise NetworkError("reorder_delay and extra_latency must be >= 0")

#: Receiver hook: called as ``hook(message, arrival_time)``.
DeliveryHook = Callable[[NetMessage, Time], None]


class SimNetwork(Transport):
    """A switched LAN connecting the machines of one system.

    ``SimNetwork`` is the simulation's implementation of the
    :class:`~repro.runtime.api.Transport` contract (the runtime seam);
    :class:`~repro.runtime.realtime.RealtimeUdpTransport` is its
    real-socket twin.
    """

    def __init__(
        self,
        sim: Simulator,
        machines: List[Machine],
        lan: Optional[SwitchedLan] = None,
    ) -> None:
        self.sim = sim
        self.lan = lan if lan is not None else SwitchedLan()
        self._machines: Dict[int, Machine] = {m.machine_id: m for m in machines}
        self._hooks: Dict[int, DeliveryHook] = {}
        self._nic_busy_until: Dict[int, Time] = {mid: 0.0 for mid in self._machines}
        self._partitions: Set[FrozenSet[int]] = set()
        #: Directed blocked pairs (one-way/asymmetric partitions): a
        #: ``(src, dst)`` entry drops src→dst traffic while dst→src flows.
        self._oneway: Set[Tuple[int, int]] = set()
        self._links: Dict[Tuple[int, int], LinkImpairment] = {}
        #: Extra one-way delay added to every delivery (latency-spike knob;
        #: deterministic, so toggling it never perturbs the RNG streams).
        self.extra_latency: Duration = 0.0
        #: Network-wide corruption floor (per-link rates add on top).  The
        #: corruption draw happens only when the effective rate is > 0, so
        #: corruption-free runs consume exactly the historical draw
        #: sequence and stay byte-identical.
        self.corrupt_rate: float = 0.0
        #: Whether receiver NICs verify a frame checksum: corrupted frames
        #: are then *detected and dropped* (tolerated corruption — the
        #: reliable layers retransmit).  Off = mangled frames are
        #: delivered wrapped in :class:`CorruptedPayload` (flagged by the
        #: containment checker).
        self.checksum: bool = True
        # Both hot streams draw homogeneously, so the block-buffered
        # wrappers reproduce the exact scalar-draw sequences (see
        # BufferedDraws' determinism contract).
        self._latency_rng: np.random.Generator = sim.rng.stream("net.latency")
        self._impair_rng: np.random.Generator = sim.rng.stream("net.impairments")
        self._latency_draws = BufferedDraws(self._latency_rng)
        self._impair_draws = BufferedDraws(self._impair_rng)
        # Per-datagram counters are plain slots-style attributes rather
        # than a Counter: one string-keyed dict update per datagram was a
        # measurable share of the send path.  stats() reassembles the
        # historical dict shape.
        self._c_sent = 0
        self._c_bytes_sent = 0
        self._c_dropped_partition = 0
        self._c_dropped_loss = 0
        self._c_duplicated = 0
        self._c_reordered = 0
        self._c_loopback = 0
        self._c_delivered = 0
        self._c_dropped_crashed_receiver = 0
        self._c_dropped_unattached = 0
        self._c_corrupted = 0
        self._c_corrupted_dropped = 0
        self._c_corrupted_delivered = 0

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def attach(self, machine_id: int, hook: DeliveryHook) -> None:
        """Register the delivery hook for *machine_id* (one per machine)."""
        if machine_id not in self._machines:
            raise UnknownDestinationError(f"no machine with id {machine_id}")
        if machine_id in self._hooks:
            raise NetworkError(f"machine {machine_id} already attached")
        self._hooks[machine_id] = hook

    def detach(self, machine_id: int) -> None:
        """Remove the delivery hook for *machine_id*."""
        self._hooks.pop(machine_id, None)

    # ------------------------------------------------------------------ #
    # Partitions (fault injection)
    # ------------------------------------------------------------------ #
    def partition(self, group_a: Set[int], group_b: Set[int]) -> None:
        """Drop all traffic between *group_a* and *group_b* until healed."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self._partitions.add(frozenset((a, b)))

    def partition_oneway(self, src_group: Set[int], dst_group: Set[int]) -> None:
        """Drop *src_group* → *dst_group* traffic only (asymmetric split).

        The reverse direction keeps flowing: ``dst_group`` members still
        reach ``src_group``.  This is the classic half-broken switch port
        / unidirectional-link failure mode — the affected side *hears*
        the group (heartbeats, proposals) but its own frames (acks,
        votes, application sends) vanish until :meth:`heal`.
        """
        for src in src_group:
            for dst in dst_group:
                if src != dst:
                    self._oneway.add((src, dst))

    def heal(self) -> None:
        """Remove every partition (symmetric and one-way)."""
        self._partitions.clear()
        self._oneway.clear()

    def is_partitioned(self, a: int, b: int) -> bool:
        """Whether *a* → *b* traffic is currently blocked.

        Symmetric partitions block both directions; a one-way partition
        blocks exactly its recorded direction, so ``is_partitioned(a, b)``
        and ``is_partitioned(b, a)`` can disagree.
        """
        # Early-outs keep the per-datagram path allocation-free in the
        # common no-partition case.
        if self._partitions and frozenset((a, b)) in self._partitions:
            return True
        return bool(self._oneway) and (a, b) in self._oneway

    # ------------------------------------------------------------------ #
    # Per-link impairments (fault injection)
    # ------------------------------------------------------------------ #
    def impair_link(
        self,
        src: int,
        dst: int,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: Duration = 0.0,
        extra_latency: Duration = 0.0,
        corrupt_rate: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Attach a :class:`LinkImpairment` to *src→dst* (and the reverse
        direction when *symmetric*), replacing any previous one."""
        for machine_id in (src, dst):
            if machine_id not in self._machines:
                raise UnknownDestinationError(f"no machine with id {machine_id}")
        impairment = LinkImpairment(
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            reorder_delay=reorder_delay,
            extra_latency=extra_latency,
            corrupt_rate=corrupt_rate,
        )
        self._links[(src, dst)] = impairment
        if symmetric:
            self._links[(dst, src)] = impairment

    def clear_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        """Remove the impairment on *src→dst* (and reverse if *symmetric*)."""
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)

    def clear_links(self) -> None:
        """Remove every per-link impairment."""
        self._links.clear()

    def link_impairment(self, src: int, dst: int) -> Optional[LinkImpairment]:
        """The impairment currently on *src→dst*, if any."""
        return self._links.get((src, dst))

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, message: NetMessage) -> None:
        """Inject *message*; it arrives (or not) after NIC + LAN delays."""
        src, dst = message.src, message.dst
        if dst not in self._machines:
            raise UnknownDestinationError(f"no machine with id {dst}")
        sender = self._machines.get(src)
        if sender is None:
            raise UnknownDestinationError(f"no machine with id {src}")
        if sender.crashed:
            return  # a crashed machine sends nothing
        self._c_sent += 1
        self._c_bytes_sent += message.size_bytes

        # NIC transmit serialisation (per-sender queue).
        tx = self.lan.transmission_time(message.size_bytes)
        start = max(self.sim.now, self._nic_busy_until[src])
        done = start + tx
        self._nic_busy_until[src] = done

        if (self._partitions or self._oneway) and self.is_partitioned(src, dst):
            self._c_dropped_partition += 1
            return
        link = self._links.get((src, dst)) if self._links else None
        loss = self.lan.loss_rate
        duplicate = self.lan.duplicate_rate
        if link is not None:
            loss = min(1.0, loss + link.loss_rate)
            duplicate = min(1.0, duplicate + link.duplicate_rate)
        if loss > 0.0 and self._impair_draws.random() < loss:
            self._c_dropped_loss += 1
            return
        corrupt = self.corrupt_rate
        if link is not None and link.corrupt_rate:
            corrupt = min(1.0, corrupt + link.corrupt_rate)
        if corrupt > 0.0 and self._impair_draws.random() < corrupt:
            self._c_corrupted += 1
            if self.checksum:
                # Detected at the receiver NIC: the frame vanishes like a
                # loss, but is accounted separately (tolerated corruption).
                self._c_corrupted_dropped += 1
                return
            # No checksum: the mangled frame travels on and is delivered.
            message = replace(message, payload=CorruptedPayload(message.payload))

        arrival = done + self._one_way_delay(link)
        # Deliveries are never cancelled (crashed receivers are filtered
        # at delivery time), so they take the fire-and-forget path.
        self.sim.schedule_at_fast(arrival, self._deliver, message)
        if duplicate > 0.0 and self._impair_draws.random() < duplicate:
            # The duplicate crosses the same impaired link, so it pays the
            # same extra latency / reorder hold as the original copy.
            dup_arrival = done + self._one_way_delay(link)
            self.sim.schedule_at_fast(dup_arrival, self._deliver, message)
            self._c_duplicated += 1

    def send_many(self, messages: Sequence[NetMessage]) -> None:
        """Batch :meth:`send`: one latency block + one delivery burst.

        When nothing can branch per message — no partitions, per-link
        impairments, loss, duplication or corruption armed — the whole
        fan-out pays **one** vectorised
        :meth:`~repro.sim.latency.LatencyModel.sample_buffered_block`
        draw and **one** :meth:`~repro.runtime.api.Scheduler.schedule_burst_fast`
        push instead of per-destination Python loops through the scalar
        path.  Counters, NIC serialisation chaining, draw order and heap
        ordering are all **bit-identical** to sequential :meth:`send`
        calls (crashed senders are skipped without consuming a draw,
        exactly as the scalar path does), so same-seed runs cannot tell
        the two apart; any armed impairment falls back to the scalar
        loop.
        """
        if len(messages) <= 1:
            for message in messages:
                self.send(message)
            return
        lan = self.lan
        if (
            self._partitions
            or self._oneway
            or self._links
            or self.corrupt_rate > 0.0
            or lan.loss_rate > 0.0
            or lan.duplicate_rate > 0.0
        ):
            for message in messages:
                self.send(message)
            return
        machines = self._machines
        live: List[NetMessage] = []
        for message in messages:
            sender = machines.get(message.src)
            if sender is None:
                raise UnknownDestinationError(f"no machine with id {message.src}")
            if message.dst not in machines:
                raise UnknownDestinationError(f"no machine with id {message.dst}")
            if not sender.crashed:
                live.append(message)
        if not live:
            return
        delays = lan.latency.sample_buffered_block(self._latency_draws, len(live))
        now = self.sim.now
        busy = self._nic_busy_until
        extra = self.extra_latency
        transmission_time = lan.transmission_time
        times: List[Time] = []
        bytes_sent = 0
        for message, delay in zip(live, delays):
            size = message.size_bytes
            bytes_sent += size
            start = busy[message.src]
            if start < now:
                start = now
            done = start + transmission_time(size)
            busy[message.src] = done
            times.append(done + delay + extra)
        self._c_sent += len(live)
        self._c_bytes_sent += bytes_sent
        self.sim.schedule_burst_fast(times, self._deliver, live)

    def _one_way_delay(self, link: Optional[LinkImpairment]) -> Duration:
        """One propagation delay draw, including impairments."""
        delay = self.lan.latency.sample_buffered(self._latency_draws) + self.extra_latency
        if link is not None:
            delay += link.extra_latency
            if (
                link.reorder_rate > 0.0
                and self._impair_draws.random() < link.reorder_rate
            ):
                delay += self._impair_draws.random() * link.reorder_delay
                self._c_reordered += 1
        return delay

    def send_local(self, message: NetMessage, loopback_delay: Duration = 0.0) -> None:
        """Self-addressed delivery (loopback): no NIC, no LAN, no loss."""
        if message.src != message.dst:
            raise NetworkError("send_local requires src == dst")
        self._c_loopback += 1
        self.sim.schedule_fast(loopback_delay, self._deliver, message)

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #
    def _deliver(self, message: NetMessage) -> None:
        receiver = self._machines[message.dst]
        if receiver.crashed:
            self._c_dropped_crashed_receiver += 1
            return
        hook = self._hooks.get(message.dst)
        if hook is None:
            self._c_dropped_unattached += 1
            return
        self._c_delivered += 1
        # The isinstance is gated on corruption having happened at all, so
        # the common corruption-free path stays branch-cheap.
        if self._c_corrupted and isinstance(message.payload, CorruptedPayload):
            self._c_corrupted_delivered += 1
        hook(message, self.sim.now)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def nic_backlog(self, machine_id: int) -> Duration:
        """Seconds of queued transmit work at *machine_id*'s NIC."""
        return max(0.0, self._nic_busy_until[machine_id] - self.sim.now)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the network counters.

        Matches the historical Counter semantics: a key is present iff
        its event ever occurred (``bytes_sent`` rides along with ``sent``),
        so reports stay byte-compatible across the fast-counter change.
        """
        out: Dict[str, int] = {}
        if self._c_sent:
            out["sent"] = self._c_sent
            out["bytes_sent"] = self._c_bytes_sent
        for key, value in (
            ("dropped_partition", self._c_dropped_partition),
            ("dropped_loss", self._c_dropped_loss),
            ("duplicated", self._c_duplicated),
            ("reordered", self._c_reordered),
            ("loopback", self._c_loopback),
            ("delivered", self._c_delivered),
            ("dropped_crashed_receiver", self._c_dropped_crashed_receiver),
            ("dropped_unattached", self._c_dropped_unattached),
            ("corrupted", self._c_corrupted),
            ("corrupted_dropped", self._c_corrupted_dropped),
            ("corrupted_delivered", self._c_corrupted_delivered),
        ):
            if value:
                out[key] = value
        return out
