"""Exception hierarchy for the ``repro`` library.

Every exception raised by library code derives from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleInPastError",
    "KernelError",
    "UnknownServiceError",
    "ServiceAlreadyBoundError",
    "ModuleNotInStackError",
    "UnknownProtocolError",
    "RequirementError",
    "NetworkError",
    "UnknownDestinationError",
    "CodecError",
    "ReplacementError",
    "PropertyViolation",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


# --------------------------------------------------------------------------- #
# Simulation layer
# --------------------------------------------------------------------------- #
class SimulationError(ReproError):
    """A misuse of the discrete-event simulation engine."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled strictly before the current simulated time."""


# --------------------------------------------------------------------------- #
# Protocol kernel
# --------------------------------------------------------------------------- #
class KernelError(ReproError):
    """A misuse of the protocol kernel (services / modules / stacks)."""


class UnknownServiceError(KernelError):
    """A service name was used that no module in the stack provides."""


class ServiceAlreadyBoundError(KernelError):
    """A bind was attempted on a service that already has a bound provider.

    The paper's model (Section 2) requires that *at most one* module in a
    stack is bound to a service at a time; binding a second provider
    without unbinding the first is an error.
    """


class ModuleNotInStackError(KernelError):
    """An operation referenced a module that is not part of the stack."""


class UnknownProtocolError(KernelError):
    """A protocol name was requested that the registry does not know."""


class RequirementError(KernelError):
    """A module's required services could not be satisfied.

    Raised e.g. by the Graceful-Adaptation baseline, which (per the paper's
    Section 4.2) *restricts* an alternative implementation to the services
    required by the module that hosts it.
    """


# --------------------------------------------------------------------------- #
# Network substrate
# --------------------------------------------------------------------------- #
class NetworkError(ReproError):
    """A misuse of the simulated network."""


class UnknownDestinationError(NetworkError):
    """A message was addressed to a machine the network does not know."""


class CodecError(NetworkError):
    """A wire datagram could not be encoded or decoded.

    On the receive path this is the *only* exception the realtime
    transport's decoder raises — malformed datagrams from the network
    are counted and dropped, never propagated into the event loop.
    """


# --------------------------------------------------------------------------- #
# Dynamic protocol update
# --------------------------------------------------------------------------- #
class ReplacementError(ReproError):
    """A dynamic protocol replacement could not be carried out."""


class PropertyViolation(ReproError, AssertionError):
    """A correctness property was violated on a recorded trace.

    Derives from :class:`AssertionError` as well so that property checkers
    integrate naturally with test harnesses.
    """

    def __init__(self, prop: str, detail: str) -> None:
        super().__init__(f"{prop}: {detail}")
        self.prop = prop
        self.detail = detail


class ScenarioError(ReproError):
    """A fault-injection scenario or campaign is ill-formed or failed to run."""
