"""One Chandra–Toueg consensus instance (per-process state machine).

The classic rotating-coordinator algorithm (Chandra & Toueg, JACM 1996),
with one standard engineering optimisation and one liveness helper, both
documented here because correctness arguments depend on them:

* **Lazy rounds** (optimisation): in the original algorithm every process
  advances rounds forever until the decide arrives.  Here a process that
  has ACKed round *r* stays in round *r* until it either R-delivers the
  decision, suspects coordinator(*r*), or learns of a higher round.  This
  cuts the steady-state message count to 3n + n·relay (estimate, propose,
  ack, decide) per instance, and is safe: staying put never updates any
  estimate.
* **Abort broadcast** (liveness helper needed *because* of lazy rounds):
  a coordinator whose reply quorum contains a NACK cannot decide; in the
  original algorithm everyone just advances, but lazy processes that ACKed
  would wait forever for a decide that never comes if the coordinator is
  correct (never suspected).  The coordinator therefore broadcasts
  ``abort(r)``, which pushes every process past round *r*.  Rounds are
  also advanced by *round catch-up*: any message of a round > current
  fast-forwards the receiver.

Safety is untouched: estimates are only adopted from a round's
coordinator, a coordinator only decides after a majority of ACKs locks
its estimate, and the locked-value argument of CT carries over verbatim.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from .base import coordinator_of_round, majority

__all__ = ["CtInstance"]

# Wire message kinds (within the ('ct', iid, ...) frame).
EST = "est"
PROP = "prop"
ACK = "ack"
NACK = "nack"
ABORT = "abort"

#: Sender signature: send_fn(dst_rank, kind, round, value, ts, size_bytes)
SendFn = Callable[[int, str, int, Any, int, int], None]
#: Decide signature: decide_fn(value, size_bytes) → R-broadcasts the decision.
DecideFn = Callable[[Any, int], None]


class CtInstance:
    """Per-process state of one consensus instance."""

    def __init__(
        self,
        instance_id: int,
        group: Tuple[int, ...],
        my_rank: int,
        send_fn: SendFn,
        decide_fn: DecideFn,
        is_suspected: Callable[[int], bool],
    ) -> None:
        self.instance_id = instance_id
        self.group = tuple(sorted(group))
        self.n = len(self.group)
        self.quorum = majority(self.n)
        self.my_rank = my_rank
        self._send = send_fn
        self._decide = decide_fn
        self._is_suspected = is_suspected

        self.round = -1  # no round entered yet (before local propose)
        self.estimate: Any = None
        self.estimate_size = 0
        self.ts = -1
        self.proposed = False
        self.decided = False
        self.decision: Any = None
        self.rounds_executed = 0

        # Per-round coordinator state.
        self._estimates: Dict[int, Dict[int, Tuple[Any, int, int]]] = {}
        self._replies: Dict[int, Dict[int, bool]] = {}
        self._proposal_done: set = set()
        self._quorum_closed: set = set()
        # Participant per-round state: round -> "ack" | "nack".
        self._replied: Dict[int, str] = {}
        # Messages for rounds ahead of us: round -> [(src, kind, value, ts, size)].
        self._future: Dict[int, List[Tuple[int, str, Any, int, int]]] = {}

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def coordinator(self, round_: int) -> int:
        return coordinator_of_round(self.group, round_)

    def propose(self, value: Any, size_bytes: int) -> None:
        """Adopt the local initial value and enter round 0."""
        if self.proposed or self.decided:
            return
        self.proposed = True
        self.estimate = value
        self.estimate_size = size_bytes
        self.ts = 0
        self._enter_round(0)

    def _enter_round(self, round_: int) -> None:
        if self.decided:
            return
        self.round = round_
        self.rounds_executed += 1
        coord = self.coordinator(round_)
        # Phase 1: send my estimate to the round's coordinator (self-sends
        # go through the loopback path of RP2P, keeping one code path).
        self._send(coord, EST, round_, self.estimate, self.ts, self.estimate_size)
        # A coordinator that is already suspected locally gets an instant
        # NACK — the paper's Phase 3 "suspect" branch taken at entry.
        if coord != self.my_rank and self._is_suspected(coord):
            self._reply_nack(round_)
        self._drain_future(round_)

    def _drain_future(self, round_: int) -> None:
        pending = self._future.pop(round_, None)
        if pending:
            for src, kind, value, ts, size in pending:
                self.on_message(src, kind, round_, value, ts, size)

    def _advance_past(self, round_: int) -> None:
        """Move to ``round_ + 1`` (round catch-up and nack path)."""
        if self.decided or round_ < self.round:
            return
        self._enter_round(round_ + 1)

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(
        self, src: int, kind: str, round_: int, value: Any, ts: int, size: int
    ) -> None:
        """Dispatch one consensus message for this instance."""
        if self.decided:
            return
        if not self.proposed:
            # Before the local propose we cannot participate (no estimate);
            # the owning module buffers at instance granularity, so this
            # only happens for self-sends, which cannot occur unproposed.
            self._future.setdefault(max(round_, 0), []).append(
                (src, kind, value, ts, size)
            )
            return
        if kind == EST:
            self._on_estimate(src, round_, value, ts, size)
        elif kind == PROP:
            self._on_propose(src, round_, value, size)
        elif kind in (ACK, NACK):
            self._on_reply(src, round_, kind == ACK)
        elif kind == ABORT:
            self._on_abort(round_)

    # Phase 2 (coordinator): gather estimates, propose the freshest. ----- #
    def _on_estimate(self, src: int, round_: int, value: Any, ts: int, size: int) -> None:
        if self.coordinator(round_) != self.my_rank:
            return  # misdirected or stale
        if round_ > self.round:
            # I will coordinate this round but haven't reached it; buffer.
            self._future.setdefault(round_, []).append((src, EST, value, ts, size))
            return
        table = self._estimates.setdefault(round_, {})
        if src in table or round_ in self._proposal_done:
            return
        table[src] = (value, ts, size)
        if len(table) >= self.quorum:
            self._proposal_done.add(round_)
            # Highest timestamp wins; ties break by lowest sender rank so
            # every run is deterministic.
            best_src = min(table, key=lambda r: (-table[r][1], r))
            best_value, _best_ts, best_size = table[best_src]
            self.estimate, self.ts = best_value, round_
            self.estimate_size = best_size
            for dst in self.group:
                self._send(dst, PROP, round_, best_value, round_, best_size)

    # Phase 3 (all): adopt the proposal, ack — or nack on suspicion. ----- #
    def _on_propose(self, src: int, round_: int, value: Any, size: int) -> None:
        if src != self.coordinator(round_):
            return
        if round_ > self.round:
            self._enter_round(round_)  # catch up, then fall through
        if round_ != self.round or round_ in self._replied:
            return
        self.estimate = value
        self.estimate_size = size
        self.ts = round_
        self._replied[round_] = ACK
        self._send(src, ACK, round_, None, 0, 0)
        # Lazy round: now wait for decide / suspicion / higher round.

    def _reply_nack(self, round_: int) -> None:
        if round_ in self._replied:
            return
        self._replied[round_] = NACK
        self._send(self.coordinator(round_), NACK, round_, None, 0, 0)
        self._advance_past(round_)

    # Phase 4 (coordinator): majority of ACKs decides; any NACK aborts. -- #
    def _on_reply(self, src: int, round_: int, is_ack: bool) -> None:
        if self.coordinator(round_) != self.my_rank:
            return
        if round_ in self._quorum_closed:
            return
        table = self._replies.setdefault(round_, {})
        if src in table:
            return
        table[src] = is_ack
        if len(table) >= self.quorum:
            self._quorum_closed.add(round_)
            if all(table.values()):
                # The estimate is locked at a majority: decide.
                self._decide(self.estimate, self.estimate_size)
            else:
                for dst in self.group:
                    if dst != self.my_rank:
                        self._send(dst, ABORT, round_, None, 0, 0)
                self._advance_past(round_)

    def _on_abort(self, round_: int) -> None:
        self._advance_past(round_)

    # ------------------------------------------------------------------ #
    # External stimuli
    # ------------------------------------------------------------------ #
    def on_suspect(self, rank: int) -> None:
        """The failure detector now suspects *rank*."""
        if self.decided or not self.proposed:
            return
        if rank == self.coordinator(self.round):
            if self.round not in self._replied:
                self._reply_nack(self.round)
            else:
                self._advance_past(self.round)

    def on_decided(self, value: Any) -> None:
        """The R-broadcast decision arrived (possibly before any propose)."""
        self.decided = True
        self.decision = value
        self._future.clear()
        self._estimates.clear()
        self._replies.clear()
