"""Consensus service contract and shared helpers.

The paper's CT module "provides a distributed consensus service using the
Chandra–Toueg ◊S consensus algorithm based on a rotating coordinator".
The kernel service (name ``consensus``) is instance-oriented so one module
serves the unbounded sequence of consensus instances that atomic
broadcast consumes:

* call ``propose(instance_id, value, size_bytes)`` — this process's
  initial value for the given instance;
* response ``decide(instance_id, value, size_bytes)`` — the instance's
  decision (emitted exactly once per instance per stack).

Properties guaranteed (crash-stop, ◊S detector, majority of correct
processes):

* **validity** — a decided value was proposed by some process;
* **uniform agreement** — no two processes decide differently;
* **uniform integrity** — every process decides at most once per instance;
* **termination** — every correct process eventually decides.
"""

from __future__ import annotations

__all__ = ["majority", "coordinator_of_round"]


def majority(n: int) -> int:
    """Size of a majority quorum among *n* processes: ``⌈(n+1)/2⌉``."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return n // 2 + 1


def coordinator_of_round(group: tuple, round_: int) -> int:
    """The rotating coordinator of *round_* (paper: "rotating coordinator").

    *group* must be sorted; round 0 is led by the lowest rank.
    """
    return group[round_ % len(group)]
