"""Chandra–Toueg ◊S consensus (rotating coordinator), as in the paper's
CT module, plus the shared quorum helpers."""

from .base import coordinator_of_round, majority
from .chandra_toueg import CtConsensusModule
from .instance import CtInstance

__all__ = ["majority", "coordinator_of_round", "CtConsensusModule", "CtInstance"]
