"""The CT module: Chandra–Toueg consensus as a kernel service.

One module instance serves an unbounded sequence of consensus instances
(atomic broadcast consumes one per batch).  It owns:

* instance multiplexing — wire frames are ``('ct', instance_id, kind,
  round, value, ts, size)`` over RP2P;
* decision dissemination — decisions are R-broadcast (service ``rbcast``)
  exactly as in the original algorithm, so a decision reaching any
  correct process reaches all of them even if the deciding coordinator
  crashes mid-send;
* the **agreement cross-check**: two decide frames for one instance with
  different values would be a consensus-safety bug; the module raises
  :class:`~repro.errors.PropertyViolation` instead of masking it;
* pre-propose buffering — frames for instances this process has not yet
  proposed in wait until the local propose (a process without an initial
  value cannot participate; atomic broadcast guarantees every correct
  process eventually proposes in every instance it needs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import PropertyViolation
from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..rbcast.reliable import RBCAST_SERVICE
from ..sim.monitors import Counter
from .instance import CtInstance

__all__ = ["CtConsensusModule"]

_TAG = "ct"
_DECIDE_TAG = "ct.dec"
#: Header bytes of one consensus frame beyond its value payload.
_CT_HEADER = 24


class CtConsensusModule(Module):
    """Chandra–Toueg ◊S consensus (rotating coordinator) kernel module."""

    PROVIDES = (WellKnown.CONSENSUS,)
    REQUIRES = (WellKnown.RP2P, WellKnown.FD, RBCAST_SERVICE)
    PROTOCOL = "consensus-ct"

    def __init__(
        self,
        stack: Stack,
        group: Sequence[int],
        channel: str = "0",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(stack, name=name)
        self.group: Tuple[int, ...] = tuple(sorted(set(group)))
        if stack.stack_id not in self.group:
            raise ValueError(
                f"stack {stack.stack_id} is not in its consensus group {self.group!r}"
            )
        #: Wire channel: two consensus module incarnations (e.g. during a
        #: consensus replacement) must not read each other's frames.
        self.channel = channel
        self.counters = Counter()
        # Instance ids are opaque hashable keys; atomic broadcast uses
        # ``(incarnation_tag, k)`` tuples.
        self._instances: Dict[Any, CtInstance] = {}
        self._decided: Dict[Any, Any] = {}
        self._pre_propose: Dict[Any, List[Tuple[int, str, int, Any, int, int]]] = {}

        self.export_call(WellKnown.CONSENSUS, "propose", self._propose)
        self.export_query(WellKnown.CONSENSUS, "is_decided", self._is_decided)
        self.subscribe(WellKnown.RP2P, "deliver", self._on_rp2p)
        self.subscribe(RBCAST_SERVICE, "deliver", self._on_rbcast)
        self.subscribe(WellKnown.FD, "suspect", self._on_suspect)

    # ------------------------------------------------------------------ #
    # Service interface
    # ------------------------------------------------------------------ #
    def _propose(self, instance_id: Any, value: Any, size_bytes: int) -> None:
        if instance_id in self._decided:
            # Already decided on this stack.  Re-emit the decision: the
            # proposer may be a module created *after* the original decide
            # response went out (e.g. a protocol incarnation installed by
            # a replacement, catching up on its first instances).
            decided_value, decided_size = self._decided[instance_id]
            self.respond(
                WellKnown.CONSENSUS, "decide", instance_id, decided_value, decided_size
            )
            return
        instance = self._get_instance(instance_id)
        if instance.proposed:
            return  # at most one proposal per instance per process
        self.counters.incr("proposals")
        instance.propose(value, size_bytes)
        # Frames that arrived before we had an estimate.
        for frame in self._pre_propose.pop(instance_id, []):
            src, kind, round_, val, ts, size = frame
            instance.on_message(src, kind, round_, val, ts, size)

    def _is_decided(self, instance_id: Any) -> bool:
        return instance_id in self._decided

    # ------------------------------------------------------------------ #
    # Instance plumbing
    # ------------------------------------------------------------------ #
    def _get_instance(self, instance_id: Any) -> CtInstance:
        instance = self._instances.get(instance_id)
        if instance is None:
            instance = CtInstance(
                instance_id=instance_id,
                group=self.group,
                my_rank=self.stack_id,
                send_fn=self._make_sender(instance_id),
                decide_fn=self._make_decider(instance_id),
                is_suspected=lambda rank: self.query(
                    WellKnown.FD, "is_suspected", rank
                ),
            )
            self._instances[instance_id] = instance
        return instance

    def _make_sender(self, instance_id: Any):
        def send(dst: int, kind: str, round_: int, value: Any, ts: int, size: int) -> None:
            self.counters.incr("frames_sent")
            self.call(
                WellKnown.RP2P,
                "send",
                dst,
                (_TAG, self.channel, instance_id, kind, round_, value, ts, size),
                size + _CT_HEADER,
            )

        return send

    def _make_decider(self, instance_id: Any):
        def decide(value: Any, size: int) -> None:
            self.counters.incr("decide_broadcasts")
            self.call(
                RBCAST_SERVICE,
                "broadcast",
                (_DECIDE_TAG, self.channel, instance_id, value, size),
                size + _CT_HEADER,
            )

        return decide

    # ------------------------------------------------------------------ #
    # Inbound frames
    # ------------------------------------------------------------------ #
    def _on_rp2p(self, src: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _TAG):
            return NOT_MINE
        _, channel, instance_id, kind, round_, value, ts, size = payload
        if channel != self.channel:
            return NOT_MINE  # another consensus incarnation's frame
        if instance_id in self._decided:
            return
        instance = self._instances.get(instance_id)
        if instance is None or not instance.proposed:
            # No local estimate yet: park the frame until propose.
            self._pre_propose.setdefault(instance_id, []).append(
                (src, kind, round_, value, ts, size)
            )
            return
        instance.on_message(src, kind, round_, value, ts, size)

    def _on_rbcast(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _DECIDE_TAG):
            return NOT_MINE
        _, channel, instance_id, value, size = payload
        if channel != self.channel:
            return NOT_MINE
        previous = self._decided.get(instance_id, _NOT_DECIDED)
        if previous is not _NOT_DECIDED:
            if previous[0] != value:
                raise PropertyViolation(
                    "consensus uniform agreement",
                    f"instance {instance_id} decided {previous[0]!r} and {value!r}",
                )
            return
        self._decided[instance_id] = (value, size)
        self.counters.incr("decisions")
        instance = self._instances.pop(instance_id, None)
        if instance is not None:
            instance.on_decided(value)
        self._pre_propose.pop(instance_id, None)
        self.respond(WellKnown.CONSENSUS, "decide", instance_id, value, size)

    # ------------------------------------------------------------------ #
    # Failure-detector stimuli
    # ------------------------------------------------------------------ #
    def _on_suspect(self, rank: int) -> None:
        for instance in list(self._instances.values()):
            instance.on_suspect(rank)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def decided_value(self, instance_id: Any) -> Any:
        """The decision of *instance_id* (KeyError if undecided)."""
        return self._decided[instance_id][0]

    @property
    def open_instances(self) -> int:
        """Number of instances currently undecided on this stack."""
        return len(self._instances)


class _NotDecided:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<not-decided>"


_NOT_DECIDED = _NotDecided()
