"""The warm worker pool behind ``run_campaign(jobs=N)`` / ``run_fuzz(jobs=N)``.

The old executor paid worker cold-start per campaign: every
``ProcessPoolExecutor`` context spawned fresh interpreters that re-imported
``repro`` (and numpy) before running a single cell, and every
``(spec, seed)`` cell was one pickle round-trip.  On the smoke matrix that
overhead exceeded the simulation time itself — every BENCH_core.json entry
since PR 2 recorded ``--jobs`` *losing* to serial.

:class:`WarmPool` fixes all three costs:

* **warm workers** — processes are spawned once per parent process (see
  :func:`get_pool`), import :mod:`repro.scenarios.engine` once, and are
  reused across cells *and* across ``run_campaign`` / ``run_fuzz``
  invocations; the fork start method (the Linux default) makes even the
  first generation warm from birth, since children inherit the parent's
  already-imported modules;
* **chunked scheduling** — cells ship in chunks (default: enough chunks
  for ~4 rounds of work stealing per worker) so the per-message IPC cost
  amortises over many cells, while the tail stays balanced;
* **compact fragments, deterministic merge** — workers reply with
  pre-serialised sorted-key JSON fragments (one per cell) instead of
  pickled result objects, and the parent merges fragments **by chunk
  index**, so the reassembled report is byte-identical for any
  ``jobs`` × ``chunk_size`` combination (pinned by
  ``tests/integration/test_warm_pool.py``).

Failure contract: a cell that raises in a worker fails the campaign with
a :class:`~repro.errors.ScenarioError` naming the poisoned ``(spec,
seed)`` — after the other in-flight chunks drained, so the pool stays
reusable.  A worker that *dies* (killed, OOM) surfaces the same way —
its pipe EOF wakes the dispatcher, so the pool never hangs — and is
replaced before the error propagates.

Workers run with the cyclic garbage collector frozen/disabled during a
chunk (each cell's simulator is an isolated object graph dropped whole
at cell end, so the collector only adds pauses) and collect once per
chunk — the Instagram ``gc.freeze`` recipe.

Everything here is wall-clock-free (R2 determinism: timing the pool is
the benchmarks' job, not the pool's).
"""

from __future__ import annotations

import atexit
import gc
import json
import multiprocessing
import traceback
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any, List, Optional, Sequence, Tuple

from .errors import ScenarioError

__all__ = ["WarmPool", "default_chunk_size", "get_pool", "shutdown_pool"]

#: One campaign cell: ``(spec, seed, trace)`` exactly as the engine builds it.
Cell = Tuple[Any, int, str]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _worker_main(conn: Connection) -> None:
    """The worker loop: receive chunks of cells, reply with JSON fragments.

    Messages in: ``("run", chunk_id, cells)``, ``("ping", token)``, or
    ``None`` (shutdown).  Messages out: ``("ok", chunk_id, fragments)``,
    ``("err", chunk_id, name, seed, traceback)``, ``("pong", token)``.
    The engine import happens once, here — the warm in ``WarmPool``.
    """
    from .scenarios.engine import run_scenario

    if hasattr(gc, "freeze"):
        # Everything imported so far is immortal for this worker: move it
        # out of the collected generations (and out of copy-on-write
        # refcount churn under fork).
        gc.collect()
        gc.freeze()
    dumps = json.dumps
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break  # parent went away
        if task is None:
            break
        tag = task[0]
        if tag == "ping":
            conn.send(("pong", task[1]))
            continue
        chunk_id, cells = task[1], task[2]
        fragments: List[str] = []
        failed: Optional[Tuple[str, int, str]] = None
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for spec, seed, trace in cells:
                try:
                    result = run_scenario(spec, seed=seed, trace=trace)
                except Exception:
                    failed = (spec.name, seed, traceback.format_exc())
                    break
                fragments.append(
                    dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
                )
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
        if failed is not None:
            conn.send(("err", chunk_id, failed[0], failed[1], failed[2]))
        else:
            conn.send(("ok", chunk_id, fragments))
    conn.close()


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
def default_chunk_size(n_cells: int, workers: int) -> int:
    """Chunk size amortising IPC while keeping the tail balanced.

    Aims for ~4 dispatch rounds per worker (so a slow cell cannot strand
    the pool behind one giant chunk), capped at 8 cells per chunk (so the
    per-chunk reply stays small) and floored at 1.
    """
    if workers < 1:
        workers = 1
    target = -(-n_cells // (workers * 4))  # ceil division
    return max(1, min(8, target))


class _Worker:
    """One pooled process and the parent's end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process: multiprocessing.process.BaseProcess, conn: Connection) -> None:
        self.process = process
        self.conn = conn


class WarmPool:
    """A persistent pool of warm ``repro`` workers (see module docstring).

    Parameters
    ----------
    jobs:
        Number of worker processes to keep alive.
    start_method:
        ``multiprocessing`` start method override; defaults to ``fork``
        where available (workers inherit the parent's imports — warm from
        birth) and ``spawn`` elsewhere.
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ScenarioError(f"warm pool needs jobs >= 1, got {jobs}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._spawned = 0
        self._workers: List[_Worker] = []
        for _ in range(jobs):
            self._workers.append(self._spawn())

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of (supposedly) live workers."""
        return len(self._workers)

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        self._spawned += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-warm-{self._spawned}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end: the worker's death
        # then surfaces as pipe EOF, which is what keeps the dispatcher
        # hang-free.
        child_conn.close()
        return _Worker(process, parent_conn)

    def _replace(self, worker: _Worker) -> _Worker:
        """Retire *worker* (dead or wedged) and spawn its successor."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        fresh = self._spawn()
        self._workers[self._workers.index(worker)] = fresh
        return fresh

    def resize(self, jobs: int) -> None:
        """Grow the pool to *jobs* workers (never shrinks a warm pool)."""
        while len(self._workers) < jobs:
            self._workers.append(self._spawn())

    def warm(self) -> None:
        """Round-trip a ping through every worker.

        The first call per worker generation pays the engine import (on
        spawn-start platforms) — callers that want warm-up accounted
        separately time this call; afterwards :meth:`run_cells` measures
        pure execution.
        """
        for token, worker in enumerate(self._workers):
            if not worker.process.is_alive():
                worker = self._replace(worker)
            worker.conn.send(("ping", token))
        for worker in list(self._workers):
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                self._replace(worker)
                continue
            if reply[0] != "pong":  # pragma: no cover - protocol guard
                raise ScenarioError(f"warm pool: unexpected warm-up reply {reply[0]!r}")

    def shutdown(self) -> None:
        """Stop every worker (idempotent; the pool is unusable after)."""
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in self._workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def run_cells(
        self,
        cells: Sequence[Cell],
        chunk_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> List[str]:
        """Run every cell; return one compact JSON fragment per cell.

        Fragments come back **in cell order** regardless of which worker
        ran which chunk — the deterministic merge.  *chunk_size* ``None``
        picks :func:`default_chunk_size`; *max_workers* caps how many of
        the pool's workers participate (a ``jobs=2`` campaign on a pool
        that grew to 4 still runs width-2).
        """
        if not cells:
            return []
        workers = self._workers[: max_workers or len(self._workers)]
        if chunk_size is None:
            chunk_size = default_chunk_size(len(cells), len(workers))
        elif chunk_size < 1:
            raise ScenarioError(f"chunk_size must be >= 1, got {chunk_size}")
        chunks = [list(cells[i : i + chunk_size]) for i in range(0, len(cells), chunk_size)]

        fragments: dict[int, List[str]] = {}
        failure: Optional[str] = None
        busy: dict[Connection, Tuple[_Worker, int]] = {}
        idle: List[_Worker] = list(workers)
        next_chunk = 0

        def dispatch(worker: _Worker, chunk_id: int) -> None:
            for _ in range(2):
                if not worker.process.is_alive():
                    worker = self._replace(worker)
                try:
                    worker.conn.send(("run", chunk_id, chunks[chunk_id]))
                except OSError:
                    worker = self._replace(worker)
                    continue
                busy[worker.conn] = (worker, chunk_id)
                return
            raise ScenarioError(
                "warm pool: could not hand a chunk to a worker (workers "
                "keep dying at dispatch)"
            )

        while len(fragments) < len(chunks) and failure is None:
            while idle and next_chunk < len(chunks):
                dispatch(idle.pop(), next_chunk)
                next_chunk += 1
            if not busy:  # pragma: no cover - defensive
                failure = "warm pool: no workers available"
                break
            for conn in _connection_wait(list(busy)):
                worker, chunk_id = busy.pop(conn)  # type: ignore[index]
                try:
                    reply = conn.recv()  # type: ignore[attr-defined]
                except (EOFError, OSError):
                    spec, seed, _trace = chunks[chunk_id][0]
                    exitcode = worker.process.exitcode
                    idle.append(self._replace(worker))
                    failure = (
                        f"worker {worker.process.name} died (exit code "
                        f"{exitcode}) while running chunk {chunk_id} "
                        f"(first cell: scenario {spec.name!r} seed {seed})"
                    )
                    break
                if reply[0] == "ok":
                    fragments[reply[1]] = reply[2]
                    idle.append(worker)
                elif reply[0] == "err":
                    _tag, _cid, name, seed, tb = reply
                    idle.append(worker)
                    failure = (
                        f"scenario {name!r} seed {seed} raised in worker "
                        f"{worker.process.name}:\n{tb}"
                    )
                    break
                else:  # pragma: no cover - protocol guard
                    idle.append(worker)
                    failure = f"warm pool: unexpected worker reply {reply[0]!r}"
                    break

        # Drain in-flight chunks before returning/raising, so the pool's
        # pipes are clean for the next campaign.
        while busy:
            for conn in _connection_wait(list(busy)):
                worker, _chunk_id = busy.pop(conn)  # type: ignore[index]
                try:
                    conn.recv()  # type: ignore[attr-defined]
                except (EOFError, OSError):
                    self._replace(worker)

        if failure is not None:
            raise ScenarioError(failure)
        return [fragment for i in range(len(chunks)) for fragment in fragments[i]]


# --------------------------------------------------------------------------- #
# The process-wide pool
# --------------------------------------------------------------------------- #
_POOL: Optional[WarmPool] = None


def get_pool(jobs: int) -> WarmPool:
    """The process-wide :class:`WarmPool`, grown to at least *jobs* workers.

    One pool per parent process, reused across ``run_campaign`` /
    ``run_fuzz`` invocations (the whole point: workers stay warm between
    campaigns).  The pool grows on demand and never shrinks; callers cap
    their own width via ``run_cells(max_workers=...)``.
    """
    global _POOL
    if _POOL is None:
        _POOL = WarmPool(jobs)
        atexit.register(shutdown_pool)
    elif _POOL.size < jobs:
        _POOL.resize(jobs)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the process-wide pool (no-op when none exists)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
