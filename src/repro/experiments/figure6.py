"""Experiment F6 — the paper's Figure 6.

"Figure 6 shows the average latency as a function of the load for various
group sizes (3 or 7)", with three configurations per group size:

* **normal, without replacement layer** — the workload calls ``abcast``
  directly (solid lines in the paper);
* **normal, with replacement layer** — the workload calls ``r-abcast``;
  steady state, no replacement (dashed lines; the ≈ 5 % overhead);
* **during replacement** — same as above, with latency measured over the
  messages sent inside the measured replacement window (dotted lines).

The paper's stated reading, which EXPERIMENTS.md checks against this
harness: the overhead of the replacement layer is ≈ 5 %, and the extra
latency during replacement is only paid during a short window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..metrics import mean_latency, windowed_mean_latency
from ..sim.clock import to_ms
from ..viz import ascii_plot, render_table
from .common import GroupCommConfig, PROTOCOL_CT, build_group_comm_system

__all__ = ["Figure6Point", "Figure6Result", "run_figure6", "run_one_config"]

#: The three curves of the figure, in paper order.
CONFIGURATIONS = (
    "normal_without_layer",
    "normal_with_layer",
    "during_replacement",
)


@dataclass(frozen=True)
class Figure6Point:
    """One measured point: (n, configuration, load) → mean latency."""

    n: int
    configuration: str
    load_msgs_per_sec: float
    mean_latency: Optional[float]  # seconds; None if nothing measurable


@dataclass
class Figure6Result:
    """The full figure: a latency-vs-load curve per (n, configuration)."""

    points: List[Figure6Point] = field(default_factory=list)

    def curve(self, n: int, configuration: str) -> List[Tuple[float, float]]:
        """(load, latency ms) for one curve, load-ascending."""
        pts = [
            (p.load_msgs_per_sec, to_ms(p.mean_latency))
            for p in self.points
            if p.n == n and p.configuration == configuration
            and p.mean_latency is not None
        ]
        return sorted(pts)

    def rows(self) -> List[Tuple]:
        """Table rows (n, config, load, latency-ms), the bench's output."""
        return [
            (
                p.n,
                p.configuration,
                p.load_msgs_per_sec,
                to_ms(p.mean_latency) if p.mean_latency is not None else float("nan"),
            )
            for p in sorted(
                self.points, key=lambda q: (q.n, q.configuration, q.load_msgs_per_sec)
            )
        ]

    def render(self, width: int = 72, height: int = 18) -> str:
        """ASCII rendering: one chart per group size plus the table."""
        blocks = []
        for n in sorted({p.n for p in self.points}):
            series = {
                cfg: self.curve(n, cfg)
                for cfg in CONFIGURATIONS
                if self.curve(n, cfg)
            }
            blocks.append(
                ascii_plot(
                    series,
                    width=width,
                    height=height,
                    title=f"Figure 6 — latency vs load (n={n})",
                    xlabel="load [msgs/s]",
                    ylabel="latency [ms]",
                )
            )
        blocks.append(
            render_table(
                ["n", "configuration", "load [msg/s]", "latency [ms]"],
                self.rows(),
                title="Figure 6 data",
            )
        )
        return "\n\n".join(blocks)

    def overhead_at(self, n: int, load: float) -> Optional[float]:
        """Relative replacement-layer overhead at one (n, load) point."""
        base = {p.load_msgs_per_sec: p.mean_latency for p in self.points
                if p.n == n and p.configuration == "normal_without_layer"}
        layer = {p.load_msgs_per_sec: p.mean_latency for p in self.points
                 if p.n == n and p.configuration == "normal_with_layer"}
        if base.get(load) and layer.get(load):
            return (layer[load] - base[load]) / base[load]
        return None


def run_one_config(
    n: int,
    configuration: str,
    load: float,
    duration: float = 8.0,
    seed: int = 0,
    base_config: Optional[GroupCommConfig] = None,
) -> Figure6Point:
    """Measure one (n, configuration, load) point."""
    if configuration not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {configuration!r}")
    template = base_config if base_config is not None else GroupCommConfig()
    cfg = replace(
        template,
        n=n,
        seed=seed,
        load_msgs_per_sec=load,
        load_stop=duration,
        with_repl_layer=configuration != "normal_without_layer",
        trace_enabled=False,  # pure measurement runs
    )
    gcs = build_group_comm_system(cfg)

    if configuration == "during_replacement":
        assert gcs.manager is not None
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=duration / 2.0)
    gcs.run(until=duration)
    gcs.run_to_quiescence()

    if configuration == "during_replacement":
        window = gcs.manager.windows.get(1) if gcs.manager else None
        if window is None or window.start is None or window.end is None:
            latency = None
        else:
            # The paper measures the latency of traffic hit by the
            # replacement.  The measurement window is the replacement
            # window with a floor of 250 ms so low-load points still
            # contain sends (the paper's "short period" is ~1 s).
            end = max(window.end, window.start + 0.25)
            latency = windowed_mean_latency(gcs.log, window.start, end)
    else:
        # Skip the first second of warm-up (FD stabilisation, first
        # consensus instances) for the steady-state curves.
        latency = windowed_mean_latency(gcs.log, 1.0, duration)
    return Figure6Point(
        n=n, configuration=configuration, load_msgs_per_sec=load, mean_latency=latency
    )


def run_figure6(
    group_sizes: Sequence[int] = (3, 7),
    loads: Sequence[float] = (50.0, 100.0, 200.0, 300.0, 400.0),
    configurations: Sequence[str] = CONFIGURATIONS,
    duration: float = 8.0,
    seed: int = 0,
    base_config: Optional[GroupCommConfig] = None,
) -> Figure6Result:
    """Run the full Figure 6 sweep.  This is minutes of simulation; the
    benchmark uses a reduced grid and the example script the full one."""
    result = Figure6Result()
    for n in group_sizes:
        for configuration in configurations:
            for load in loads:
                result.points.append(
                    run_one_config(
                        n,
                        configuration,
                        load,
                        duration=duration,
                        seed=seed,
                        base_config=base_config,
                    )
                )
    return result
