"""Experiment X1 — quantifying the Section 4.2/5.3 comparison.

The paper argues, qualitatively, that its solution beats Maestro-style
and Graceful-Adaptation-style DPU because (a) the application is never
blocked, (b) no auxiliary mechanism (group membership for Maestro,
barrier synchronisation for Graceful Adaptation) is needed, and (c) only
the replaced protocol is re-created rather than the whole stack.  This
harness makes those claims measurable: it runs the *same* load and the
*same* CT→CT replacement over all three indirection layers and reports

* the application-blocked time (buffered-call window of the baselines;
  kernel blocked-call time for Algorithm 1's unbind→bind gap),
* the switch duration (trigger → every stack running the new module),
* the extra coordination messages spent by each mechanism,
* the latency perturbation around the switch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..baselines.switchbase import DrainingSwitchModule
from ..kernel.service import WellKnown
from ..metrics import windowed_mean_latency
from ..sim.clock import to_ms
from ..viz import render_table
from .common import GroupCommConfig, PROTOCOL_CT, build_group_comm_system

__all__ = ["ComparisonRow", "ComparisonResult", "run_comparison"]

SOLUTIONS = ("algorithm1", "maestro", "graceful")


@dataclass(frozen=True)
class ComparisonRow:
    """Measured behaviour of one DPU solution under the common scenario."""

    solution: str
    switch_duration: Optional[float]      # s, trigger -> all stacks switched
    #: Application-visible blocking: time r-abcast calls spent buffered.
    #: Algorithm 1 has no buffering mechanism at all (calls always
    #: forward), so this is structurally zero for it.
    app_blocked_total: float
    #: Blocking *below* the indirection (the unbind→bind gap), invisible
    #: to the application but part of the switch cost.
    internal_blocked_total: float
    #: Control messages the switch mechanism itself sent (announces,
    #: readiness reports, barrier rounds, flush markers, re-issues).
    coordination_messages: int
    steady_latency: Optional[float]       # s, before the switch
    during_latency: Optional[float]       # s, messages sent in the window


@dataclass
class ComparisonResult:
    rows: List[ComparisonRow]

    def render(self) -> str:
        return render_table(
            [
                "solution",
                "switch [ms]",
                "app blocked [ms]",
                "internal blocked [ms]",
                "coord msgs",
                "steady lat [ms]",
                "during lat [ms]",
            ],
            [
                (
                    r.solution,
                    to_ms(r.switch_duration) if r.switch_duration else float("nan"),
                    to_ms(r.app_blocked_total),
                    to_ms(r.internal_blocked_total),
                    r.coordination_messages,
                    to_ms(r.steady_latency) if r.steady_latency else float("nan"),
                    to_ms(r.during_latency) if r.during_latency else float("nan"),
                )
                for r in self.rows
            ],
            title="X1 — DPU solutions under identical load and switch",
        )

    def row(self, solution: str) -> ComparisonRow:
        for r in self.rows:
            if r.solution == solution:
                return r
        raise KeyError(solution)


def _run_solution(
    solution: str, base: GroupCommConfig, duration: float, switch_at: float
) -> ComparisonRow:
    if solution == "algorithm1":
        cfg = replace(base, baseline=None, load_stop=duration)
    else:
        cfg = replace(base, baseline=solution, load_stop=duration)
    gcs = build_group_comm_system(cfg)
    sim = gcs.system.sim
    n = cfg.n

    switch_info: Dict[int, float] = {}
    switch_modules: list = []

    if solution == "algorithm1":
        assert gcs.manager is not None
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=switch_at)
    else:
        switch_modules = [
            m
            for stack in gcs.system.stacks
            for m in stack.modules.values()
            if isinstance(m, DrainingSwitchModule)
        ]
        for m in switch_modules:
            m.on_switch_complete.append(
                lambda sid, epoch, prot, dur: switch_info.__setitem__(sid, sim.now)
            )
        trigger = switch_modules[0]
        sim.schedule_at(
            switch_at, trigger.call, WellKnown.R_ABCAST, "change_protocol", PROTOCOL_CT
        )

    gcs.run(until=duration)
    gcs.run_to_quiescence()

    internal_blocked = sum(s.blocked_time_total for s in gcs.system.stacks)

    if solution == "algorithm1":
        window = gcs.manager.windows.get(1)
        switch_duration = window.duration if window else None
        w_start = window.start if window else switch_at
        w_end = window.end if window and window.end else switch_at + 1.0
        # Algorithm 1 has no application-buffering mechanism: r-abcast
        # calls always forward immediately (blocking happens only below
        # the indirection, reported separately).
        app_blocked = 0.0
        # Control traffic: the one change request (ABcast once) plus the
        # per-stack re-issue burst.
        repls = [gcs.manager.module(s) for s in range(n)]
        coordination = sum(
            r.counters.get("change_requests") + r.counters.get("reissues")
            for r in repls
        )
    else:
        if switch_info:
            w_start = switch_at
            w_end = max(switch_info.values())
            switch_duration = w_end - w_start
        else:
            switch_duration, w_start, w_end = None, switch_at, switch_at + 1.0
        app_blocked = sum(m.app_blocked_total for m in switch_modules)
        # Control traffic, from the mechanism's own counters: the
        # announcement fan-out, per-stack flush markers, readiness /
        # barrier rounds, and the buffered-call replays.
        coordination = sum(
            m.counters.get("change_requests") * n          # announce fan-out
            + m.counters.get("drains")                     # flush marker abcast
            + m.counters.get("ready_sent")                 # maestro readiness
            + m.counters.get("buffered_replayed")          # replayed app calls
            for m in switch_modules
        )
        if solution == "maestro":
            coordination += n  # the initiator's 'go' fan-out
        if solution == "graceful":
            # three barrier rounds: n arrivals + n releases each
            barrier_modules = [
                m
                for stack in gcs.system.stacks
                for m in stack.modules.values()
                if m.protocol == "barrier"
            ]
            coordination += sum(
                m.counters.get("entered") + m.counters.get("released") * n
                for m in barrier_modules
            )

    steady = windowed_mean_latency(gcs.log, 1.0, switch_at)
    during = windowed_mean_latency(gcs.log, w_start, max(w_end, w_start + 0.25))
    return ComparisonRow(
        solution=solution,
        switch_duration=switch_duration,
        app_blocked_total=app_blocked,
        internal_blocked_total=internal_blocked,
        coordination_messages=coordination,
        steady_latency=steady,
        during_latency=during,
    )


def run_comparison(
    n: int = 5,
    load: float = 100.0,
    duration: float = 10.0,
    seed: int = 0,
    solutions: tuple = SOLUTIONS,
) -> ComparisonResult:
    """Run the three DPU solutions under the identical scenario."""
    base = GroupCommConfig(n=n, seed=seed, load_msgs_per_sec=load)
    switch_at = duration / 2.0
    rows = [_run_solution(s, base, duration, switch_at) for s in solutions]
    return ComparisonResult(rows=rows)
