"""The fault-injection scenario campaigns, as an experiments entry point.

The scenario subsystem lives in :mod:`repro.scenarios`; this module
registers it under the experiments namespace so harness code can treat
campaigns like any other experiment::

    from repro.experiments.scenarios import SCENARIOS, run_campaign, get_campaign
    result = run_campaign(get_campaign("smoke"), seeds=(0, 1, 2))

(Kept as a separate module — not imported from ``repro.experiments``'s
``__init__`` — because :mod:`repro.scenarios` itself builds on
:mod:`repro.experiments.common`, and a package-level import would cycle.)
"""

from ..scenarios import (  # noqa: F401  (re-exports)
    CAMPAIGNS,
    SCENARIOS,
    Campaign,
    CampaignResult,
    ScenarioResult,
    ScenarioSpec,
    get_campaign,
    get_scenario,
    register_campaign,
    register_scenario,
    run_campaign,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "ScenarioSpec",
    "ScenarioResult",
    "get_scenario",
    "get_campaign",
    "register_scenario",
    "register_campaign",
    "run_scenario",
    "run_campaign",
]
