"""Ablations A1/A2 — quantifying the design choices DESIGN.md calls out.

* **A1 (re-issue policy, guard)** — concurrent replacement requests under
  the guarded algorithm with both pending-change policies, and under the
  paper-literal algorithm (no sn guard).  Reports delivery-correctness
  outcomes; the literal variant is where the DESIGN.md §4 anomaly can
  surface.
* **A2 (module-creation cost)** — sweeps the creation cost and reports
  the resulting latency-perturbation height and width around a switch:
  the knob behind Figure 5's spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dpu import check_all_abcast_properties
from ..metrics import find_perturbation, latency_series
from ..sim.clock import Duration, ms, to_ms
from ..viz import render_table
from .common import GroupCommConfig, PROTOCOL_CT, PROTOCOL_SEQ, build_group_comm_system

__all__ = [
    "ConcurrentChangeOutcome",
    "run_concurrent_change_ablation",
    "CreationCostPoint",
    "run_creation_cost_ablation",
]


@dataclass(frozen=True)
class ConcurrentChangeOutcome:
    """Result of one concurrent-replacement run."""

    variant: str                      # guarded+drop | guarded+reissue | literal
    switches_total: int               # switches performed across stacks
    property_violations: Dict[str, int]
    stale_changes_discarded: int

    @property
    def correct(self) -> bool:
        return all(v == 0 for v in self.property_violations.values())


def _run_concurrent(variant: str, n: int, seed: int, duration: float,
                    gap: float) -> ConcurrentChangeOutcome:
    guard = variant != "literal"
    policy = "reissue" if variant == "guarded+reissue" else "drop"
    cfg = GroupCommConfig(
        n=n,
        seed=seed,
        load_msgs_per_sec=60.0,
        load_stop=duration,
        guard_change_sn=guard,
        reissue_policy=policy,
    )
    gcs = build_group_comm_system(cfg)
    assert gcs.manager is not None
    # Two nearly-simultaneous change requests from different stacks: the
    # second is in flight when the first lands.
    gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=duration / 2.0)
    gcs.manager.request_change(PROTOCOL_SEQ, from_stack=n - 1, at=duration / 2.0 + gap)
    gcs.run(until=duration)
    gcs.run_to_quiescence()

    alive = [s for s in range(n) if not gcs.system.machine(s).crashed]
    results = check_all_abcast_properties(
        gcs.log, gcs.system.trace.crashes(), alive
    )
    switches = sum(
        gcs.manager.module(s).counters.get("switches") for s in range(n)
    )
    stale = sum(
        gcs.manager.module(s).counters.get("stale_changes_discarded")
        for s in range(n)
    )
    return ConcurrentChangeOutcome(
        variant=variant,
        switches_total=switches,
        property_violations={k: len(v) for k, v in results.items()},
        stale_changes_discarded=stale,
    )


def run_concurrent_change_ablation(
    n: int = 5,
    seed: int = 0,
    duration: float = 8.0,
    gap: float = 0.005,
    variants: Sequence[str] = ("guarded+drop", "guarded+reissue", "literal"),
) -> List[ConcurrentChangeOutcome]:
    """A1: concurrent change requests under the three algorithm variants."""
    return [_run_concurrent(v, n, seed, duration, gap) for v in variants]


@dataclass(frozen=True)
class CreationCostPoint:
    """Perturbation caused by one module-creation cost setting."""

    creation_cost: Duration
    peak_factor: Optional[float]
    perturbation_duration: Optional[float]
    blocked_time_total: float  # kernel blocked-call seconds, all stacks


def run_creation_cost_ablation(
    costs: Sequence[Duration] = (0.0, ms(1.0), ms(5.0), ms(20.0), ms(100.0)),
    n: int = 5,
    load: float = 100.0,
    duration: float = 10.0,
    seed: int = 0,
) -> List[CreationCostPoint]:
    """A2: module-creation cost versus switch-time latency perturbation."""
    points = []
    for cost in costs:
        cfg = GroupCommConfig(
            n=n,
            seed=seed,
            load_msgs_per_sec=load,
            load_stop=duration,
            creation_cost=cost,
        )
        gcs = build_group_comm_system(cfg)
        assert gcs.manager is not None
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=duration / 2.0)
        gcs.run(until=duration)
        gcs.run_to_quiescence()
        series = [(p.send_time, p.latency) for p in latency_series(gcs.log)]
        perturbation = find_perturbation(series, duration / 2.0)
        points.append(
            CreationCostPoint(
                creation_cost=cost,
                peak_factor=perturbation.peak_factor if perturbation else None,
                perturbation_duration=perturbation.duration if perturbation else None,
                blocked_time_total=sum(
                    s.blocked_time_total for s in gcs.system.stacks
                ),
            )
        )
    return points


def render_ablations(
    concurrent: List[ConcurrentChangeOutcome],
    creation: List[CreationCostPoint],
) -> str:
    """Plain-text report of both ablations."""
    a1 = render_table(
        ["variant", "switches", "stale discarded", "violations", "correct"],
        [
            (
                o.variant,
                o.switches_total,
                o.stale_changes_discarded,
                sum(o.property_violations.values()),
                o.correct,
            )
            for o in concurrent
        ],
        title="A1 — concurrent replacement requests",
    )
    a2 = render_table(
        ["creation cost [ms]", "peak ×baseline", "perturbation [s]", "blocked [ms]"],
        [
            (
                to_ms(p.creation_cost),
                p.peak_factor if p.peak_factor is not None else float("nan"),
                p.perturbation_duration
                if p.perturbation_duration is not None
                else float("nan"),
                to_ms(p.blocked_time_total),
            )
            for p in creation
        ],
        title="A2 — module-creation cost vs switch perturbation",
    )
    return a1 + "\n\n" + a2
