"""Experiment scaffolding: building and running the Figure 4 stack.

:func:`build_group_comm_system` is the code rendering of the paper's
Figure 4 ("Architecture of the group communication stack"): on every
machine — UDP, RP2P, FD, CT (consensus), ABcast, Repl, GM — plus the
substrate pieces the figure leaves implicit (reliable broadcast inside
CT) and the measurement layer (load generator, delivery probe).

Every experiment and most integration tests go through this builder, so
its :class:`GroupCommConfig` is the single place where the simulation is
calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from ..abcast import CtAbcastModule, SequencerAbcastModule, TokenAbcastModule
from ..baselines import (
    BarrierModule,
    GracefulAdaptorModule,
    MaestroSwitchModule,
)
from ..consensus import CtConsensusModule
from ..dpu import (
    AbcastProbeModule,
    DeliveryLog,
    ReplAbcastModule,
    ReplacementManager,
)
from ..dpu.abcast_checker import is_post_rejoin_send
from ..dpu.probes import is_workload_key
from ..fd import HeartbeatFd
from ..gm import GroupMembershipModule
from ..kernel import STRUCTURAL_TRACE_KINDS, System, WellKnown
from ..net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from ..rbcast import RBCAST_SERVICE, RbcastModule
from ..sim.clock import Duration, ms, us
from ..sim.latency import lan_latency
from ..workload import FixedPayload, LoadGeneratorModule

__all__ = [
    "GroupCommConfig",
    "GroupCommSystem",
    "build_group_comm_system",
    "register_standard_protocols",
    "PROTOCOL_CT",
    "PROTOCOL_SEQ",
    "PROTOCOL_TOKEN",
    "PROTOCOL_CONSENSUS_CT",
    "TRACE_MODES",
]

PROTOCOL_CT = "abcast-ct"
PROTOCOL_SEQ = "abcast-seq"
PROTOCOL_TOKEN = "abcast-token"
PROTOCOL_CONSENSUS_CT = "consensus-ct"

#: The kernel trace depths a build accepts (see ``GroupCommConfig.trace``);
#: the scenario engine and CLI validate against this same tuple.
TRACE_MODES = ("full", "structural", "off")


@dataclass(frozen=True)
class GroupCommConfig:
    """Everything needed to build and load one group-communication system.

    Defaults are the calibration used throughout DESIGN.md §6: a 100 Mb/s
    switched LAN, ~10 µs kernel dispatches, 1 KiB payloads.  The paper's
    absolute numbers are not reproducible (different hardware); the
    *shapes* in EXPERIMENTS.md are produced with exactly these values.
    """

    n: int = 7
    seed: int = 0
    # Workload -----------------------------------------------------------
    load_msgs_per_sec: float = 100.0   # aggregate over all stacks
    payload_bytes: int = 1024
    load_start: float = 0.0
    load_stop: Optional[float] = None
    load_jitter: float = 0.0
    load_burst: int = 1
    # Replacement layer ---------------------------------------------------
    with_repl_layer: bool = True
    initial_protocol: str = PROTOCOL_CT
    creation_cost: Duration = ms(5.0)
    guard_change_sn: bool = True
    reissue_policy: str = "drop"
    # Baseline layers (mutually exclusive with with_repl_layer) -----------
    baseline: Optional[str] = None      # None | "maestro" | "graceful"
    # Stack pieces ---------------------------------------------------------
    with_gm: bool = False
    # Substrate calibration -------------------------------------------------
    # CPU costs are calibrated to the paper's era (766 MHz Pentium III
    # running a Java protocol framework): one kernel dispatch ~30 µs, one
    # datagram receive ~120 µs.  These put the n=7 saturation knee in the
    # few-hundred-msgs/s range, like the paper's Figure 6.
    call_cost: Duration = us(30.0)
    response_cost: Duration = us(30.0)
    udp_recv_cost: Duration = us(120.0)
    udp_send_cost: Duration = us(60.0)
    bandwidth_bps: float = 100e6
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: Network-wide per-datagram corruption floor (the Byzantine axis).
    #: With ``checksum`` on (default) corrupted frames are detected and
    #: dropped at the receiver NIC; off = delivered mangled and flagged
    #: by the corruption containment checker.
    corrupt_rate: float = 0.0
    checksum: bool = True
    fd_period: Duration = ms(50.0)
    fd_timeout: Duration = ms(200.0)
    token_idle_hold: Duration = ms(1.0)
    trace_enabled: bool = True
    #: Trace depth: ``"full"`` records every kernel event (tests,
    #: debugging), ``"structural"`` drops the per-call/per-response
    #: firehose but keeps everything the property checkers consume
    #: (campaign default — reports are byte-identical to full), ``"off"``
    #: records nothing.  ``trace_enabled=False`` equals ``"off"``.
    trace: str = "full"

    def per_stack_rate(self) -> float:
        """The paper's constant load split evenly across machines."""
        return self.load_msgs_per_sec / self.n


@dataclass
class GroupCommSystem:
    """A built system plus its measurement handles."""

    config: GroupCommConfig
    system: System
    network: SimNetwork
    log: DeliveryLog
    generators: List[LoadGeneratorModule]
    manager: Optional[ReplacementManager] = None
    #: The service the workload/GM/probes consume (r-abcast or abcast).
    app_service: str = WellKnown.R_ABCAST

    def run(self, until: float) -> None:
        self.system.run(until=until)

    def run_to_quiescence(
        self,
        extra: float = 5.0,
        step: float = 0.5,
        exempt: Sequence[int] = (),
        rejoined: Optional[Callable[[], Mapping[int, float]]] = None,
    ) -> None:
        """Run until every correct stack has delivered everything outstanding
        (or the budget of *extra* seconds is exhausted).

        *exempt* stacks (known-faulty: crashed, churned, or isolated) are
        held to no obligation; their sends only count once delivered
        somewhere by a correct stack (mirroring uniform agreement).

        *rejoined*, when given, is polled each step for the stacks whose
        crash-recovery re-join handshake has completed (``stack ->
        re-join instant``).  A rejoined stack's exemption narrows back:
        its post-re-join sends become targets for everyone, and the
        drain also waits for the rejoined stack itself to deliver every
        message sent after its re-join instant.
        """
        exempt_set = set(exempt)
        deadline = self.system.sim.now + extra
        while self.system.sim.now < deadline:
            self.system.run(until=min(deadline, self.system.sim.now + step))
            rejoin_times = dict(rejoined()) if rejoined is not None else {}

            def obliged(sender: int, t_send: float) -> bool:
                if sender not in exempt_set:
                    return True
                return is_post_rejoin_send(sender, t_send, rejoin_times)

            correct = [
                s
                for s in range(self.config.n)
                if s not in exempt_set and not self.system.machine(s).ever_crashed
            ]
            targets = {
                key
                for key, (sender, t) in self.log.sends.items()
                if obliged(sender, t)
            }
            for s in correct:
                targets |= self.log.delivered_set(s)
            done = all(targets <= self.log.delivered_set(s) for s in correct)
            for r, t_rejoin in rejoin_times.items():
                post_rejoin = {
                    key
                    for key, (sender, t) in self.log.sends.items()
                    if t > t_rejoin and obliged(sender, t)
                }
                done = done and post_rejoin <= self.log.delivered_set(r)
            if done:
                return

    def stacks(self) -> List:
        return self.system.stacks


def register_standard_protocols(gcs_system: System, group: Sequence[int],
                                config: GroupCommConfig) -> None:
    """Register the three ABcast protocols + CT consensus in the registry.

    The registry is what Algorithm 1's ``create_module`` recursion draws
    from; ``default_for`` entries make the recursion deterministic.
    """
    registry = gcs_system.registry
    group = list(group)
    registry.register(
        PROTOCOL_CT,
        lambda st, **kw: CtAbcastModule(st, group, **kw),
        provides=(WellKnown.ABCAST,),
        requires=(RBCAST_SERVICE, WellKnown.CONSENSUS),
        default_for=(WellKnown.ABCAST,),
    )
    registry.register(
        PROTOCOL_SEQ,
        lambda st, **kw: SequencerAbcastModule(st, group, **kw),
        provides=(WellKnown.ABCAST,),
        requires=(WellKnown.RP2P, RBCAST_SERVICE),
    )
    registry.register(
        PROTOCOL_TOKEN,
        lambda st, **kw: TokenAbcastModule(
            st, group, idle_hold=config.token_idle_hold, **kw
        ),
        provides=(WellKnown.ABCAST,),
        requires=(WellKnown.RP2P, RBCAST_SERVICE),
    )
    registry.register(
        PROTOCOL_CONSENSUS_CT,
        lambda st, **kw: CtConsensusModule(st, group, **kw),
        provides=(WellKnown.CONSENSUS,),
        requires=(WellKnown.RP2P, WellKnown.FD, RBCAST_SERVICE),
        default_for=(WellKnown.CONSENSUS,),
    )


def build_group_comm_system(config: GroupCommConfig) -> GroupCommSystem:
    """Build the paper's Figure 4 stack on every machine of a fresh system."""
    if config.baseline is not None and config.baseline not in ("maestro", "graceful"):
        raise ValueError(f"unknown baseline {config.baseline!r}")
    if config.baseline is not None and not config.with_repl_layer:
        raise ValueError("a baseline run implies an indirection layer")

    if config.trace not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {config.trace!r}; expected one of {TRACE_MODES}"
        )
    system = System(
        n=config.n,
        seed=config.seed,
        trace_enabled=config.trace_enabled and config.trace != "off",
        trace_kinds=(
            STRUCTURAL_TRACE_KINDS if config.trace == "structural" else None
        ),
        call_cost=config.call_cost,
        response_cost=config.response_cost,
    )
    lan = SwitchedLan(
        bandwidth_bps=config.bandwidth_bps,
        latency=lan_latency(),
        loss_rate=config.loss_rate,
        duplicate_rate=config.duplicate_rate,
    )
    network = SimNetwork(system.sim, system.machines, lan)
    network.corrupt_rate = config.corrupt_rate
    network.checksum = config.checksum
    system.network = network
    group = list(range(config.n))
    register_standard_protocols(system, group, config)

    log = DeliveryLog()
    generators: List[LoadGeneratorModule] = []
    app_service = WellKnown.R_ABCAST if config.with_repl_layer else WellKnown.ABCAST

    needs_consensus = config.initial_protocol == PROTOCOL_CT

    for stack in system.stacks:
        stack.add_module(
            UdpModule(
                stack,
                network,
                recv_cost=config.udp_recv_cost,
                send_cost=config.udp_send_cost,
            )
        )
        stack.add_module(Rp2pModule(stack))
        stack.add_module(
            HeartbeatFd(
                stack, group, period=config.fd_period, timeout=config.fd_timeout
            )
        )
        stack.add_module(RbcastModule(stack, group))
        if needs_consensus:
            stack.add_module(CtConsensusModule(stack, group))
        # The initial ABcast protocol, incarnation v0.
        info = system.registry.info(config.initial_protocol)
        stack.add_module(info.factory(stack))

        if config.baseline == "maestro":
            stack.add_module(
                MaestroSwitchModule(
                    stack,
                    system.registry,
                    group,
                    config.initial_protocol,
                    creation_cost=config.creation_cost,
                )
            )
        elif config.baseline == "graceful":
            stack.add_module(BarrierModule(stack, group))
            stack.add_module(
                GracefulAdaptorModule(
                    stack,
                    system.registry,
                    group,
                    config.initial_protocol,
                    allowed_services=info.requires,
                    creation_cost=config.creation_cost,
                )
            )
        elif config.with_repl_layer:
            stack.add_module(
                ReplAbcastModule(
                    stack,
                    system.registry,
                    initial_protocol=config.initial_protocol,
                    guard_change_sn=config.guard_change_sn,
                    reissue_policy=config.reissue_policy,
                    creation_cost=config.creation_cost,
                )
            )

        if config.with_gm:
            stack.add_module(
                GroupMembershipModule(stack, group, abcast_service=app_service)
            )
        stack.add_module(
            AbcastProbeModule(
                stack,
                log,
                service=app_service,
                key_filter=is_workload_key,
            )
        )
        generator = LoadGeneratorModule(
            stack,
            log,
            rate_per_sec=config.per_stack_rate(),
            start_at=config.load_start + stack.stack_id * (1.0 / config.load_msgs_per_sec),
            stop_at=config.load_stop,
            service=app_service,
            payload=FixedPayload(config.payload_bytes),
            jitter=config.load_jitter,
            burst=config.load_burst,
        )
        stack.add_module(generator)
        generators.append(generator)

    manager: Optional[ReplacementManager] = None
    if config.with_repl_layer and config.baseline is None:
        manager = ReplacementManager(system)

    return GroupCommSystem(
        config=config,
        system=system,
        network=network,
        log=log,
        generators=generators,
        manager=manager,
        app_service=app_service,
    )
