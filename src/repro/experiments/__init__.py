"""Experiment harnesses regenerating the paper's evaluation (see DESIGN.md §5)."""

from .ablation import (
    ConcurrentChangeOutcome,
    CreationCostPoint,
    render_ablations,
    run_concurrent_change_ablation,
    run_creation_cost_ablation,
)
from .common import (
    PROTOCOL_CONSENSUS_CT,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    GroupCommConfig,
    GroupCommSystem,
    build_group_comm_system,
    register_standard_protocols,
)
from .comparison import ComparisonResult, ComparisonRow, run_comparison
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Point, Figure6Result, run_figure6, run_one_config

__all__ = [
    "GroupCommConfig",
    "GroupCommSystem",
    "build_group_comm_system",
    "register_standard_protocols",
    "PROTOCOL_CT",
    "PROTOCOL_SEQ",
    "PROTOCOL_TOKEN",
    "PROTOCOL_CONSENSUS_CT",
    "Figure5Result",
    "run_figure5",
    "Figure6Point",
    "Figure6Result",
    "run_figure6",
    "run_one_config",
    "ComparisonRow",
    "ComparisonResult",
    "run_comparison",
    "ConcurrentChangeOutcome",
    "CreationCostPoint",
    "run_concurrent_change_ablation",
    "run_creation_cost_ablation",
    "render_ablations",
]
