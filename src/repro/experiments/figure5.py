"""Experiment F5 — the paper's Figure 5.

"The figure shows the average latency of atomic broadcast as a function
of the time at which the ABcast was sent; the replacement is triggered in
the middle of the experiment; n = 7."  The paper replaces the
Chandra–Toueg ABcast by the same protocol "while performing all steps of
the replacement algorithm (e.g., unbinding the old module, creating a new
module, etc.)".

Deliverables of this harness (consumed by ``benchmarks/bench_figure5.py``
and ``examples/figure5_replay.py``):

* the per-message latency series (the figure's point cloud);
* the measured replacement window (paper definition);
* the perturbation analysis backing the prose claims — the spike is
  confined to a short window (paper: ≈ 1 s) and latency re-stabilises at
  the pre-switch level;
* the checked correctness properties (no message lost or reordered
  across the switch).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..dpu import assert_abcast_properties
from ..dpu.manager import ReplacementWindow
from ..metrics import (
    PerturbationWindow,
    find_perturbation,
    latency_series,
    windowed_mean_latency,
)
from ..sim.clock import to_ms
from ..viz import ascii_plot
from .common import GroupCommConfig, PROTOCOL_CT, build_group_comm_system

__all__ = ["Figure5Result", "run_figure5"]


@dataclass
class Figure5Result:
    """Everything Figure 5 shows, plus the prose-claim measurements."""

    config: GroupCommConfig
    #: (send time s, average latency s) — the figure's point cloud.
    points: List[Tuple[float, float]]
    replacement_window: Optional[ReplacementWindow]
    perturbation: Optional[PerturbationWindow]
    pre_mean: Optional[float]      # mean latency before the switch (s)
    during_mean: Optional[float]   # mean latency in the replacement window
    post_mean: Optional[float]     # mean latency after stabilisation

    def series_ms(self) -> List[Tuple[float, float]]:
        """The point cloud with latencies in milliseconds (as plotted)."""
        return [(t, to_ms(lat)) for t, lat in self.points]

    def render(self, width: int = 72, height: int = 18) -> str:
        """ASCII rendering of the figure plus the measured numbers."""
        chart = ascii_plot(
            {"avg latency": self.series_ms()},
            width=width,
            height=height,
            title=f"Figure 5 — ABcast latency vs send time (n={self.config.n})",
            xlabel="send time [s]",
            ylabel="latency [ms]",
        )
        lines = [chart]
        if self.replacement_window is not None:
            w = self.replacement_window
            lines.append(
                f"replacement: requested t={w.start:.3f}s, all stacks done "
                f"t={w.end:.3f}s (window {w.duration * 1e3:.1f} ms)"
            )
        if self.pre_mean is not None and self.post_mean is not None:
            lines.append(
                f"latency: pre={to_ms(self.pre_mean):.2f} ms  "
                f"during={to_ms(self.during_mean):.2f} ms  "
                f"post={to_ms(self.post_mean):.2f} ms"
            )
        if self.perturbation is not None:
            p = self.perturbation
            lines.append(
                f"perturbation: {p.duration:.2f}s long, peak ×{p.peak_factor:.1f} "
                f"over baseline — then stabilises"
            )
        else:
            lines.append("perturbation: below threshold (switch invisible in noise)")
        return "\n".join(lines)


def run_figure5(
    config: Optional[GroupCommConfig] = None,
    duration: float = 20.0,
    switch_at: Optional[float] = None,
    to_protocol: str = PROTOCOL_CT,
    check_properties: bool = True,
) -> Figure5Result:
    """Run the Figure 5 experiment and return its measurements.

    Defaults follow the paper: n = 7, the replacement triggered in the
    middle of the run, CT-ABcast replaced by the same protocol.
    """
    cfg = config if config is not None else GroupCommConfig()
    switch_time = switch_at if switch_at is not None else duration / 2.0
    # Stop the load at `duration`, then drain so every latency is final.
    cfg = replace(cfg, load_stop=duration)
    gcs = build_group_comm_system(cfg)
    assert gcs.manager is not None, "Figure 5 needs the replacement layer"
    gcs.manager.request_change(to_protocol, from_stack=0, at=switch_time)
    gcs.run(until=duration)
    gcs.run_to_quiescence()

    if check_properties:
        alive = [s for s in range(cfg.n) if not gcs.system.machine(s).crashed]
        assert_abcast_properties(gcs.log, gcs.system.trace.crashes(), alive)

    series = latency_series(gcs.log)
    points = [(p.send_time, p.latency) for p in series]
    window = gcs.manager.windows.get(1)

    pre = during = post = None
    perturbation = None
    if window is not None and window.start is not None and window.end is not None:
        pre = windowed_mean_latency(gcs.log, 0.0, window.start)
        during = windowed_mean_latency(gcs.log, window.start, window.end)
        # "Post" starts one window-length after the end, to let the
        # re-issued backlog clear (the paper's "quickly stabilizes").
        settle = window.end + max(0.5, 2.0 * (window.end - window.start))
        post = windowed_mean_latency(gcs.log, settle, duration)
        perturbation = find_perturbation(points, window.start)

    return Figure5Result(
        config=cfg,
        points=points,
        replacement_window=window,
        perturbation=perturbation,
        pre_mean=pre,
        during_mean=during,
        post_mean=post,
    )
