"""Group membership on top of (replaceable) atomic broadcast.

The paper's GM module "provides a group membership service that maintains
consistent membership among all group members; the module requires the
atomic broadcast service" — and in the adaptive middleware it requires it
*through the replacement layer* (``r-abcast``), which is what makes GM the
paper's witness that "all middleware protocols, including those that
depend on the updated protocols, provide service correctly and with
negligible delay while the global update takes place".

Model (simplified from dynamic group communication, the paper's [17]):
the membership is a sequence of **views** ``(view_id, members)``.  View
changes (join/leave/expel proposals) are ABcast; because ABcast delivers
them in the same total order everywhere, every stack installs the same
sequence of views — consistency by construction.  Suspicions from the
failure detector trigger expel proposals (rate-limited, one proposer per
suspicion: the lowest-ranked live member, to avoid n duplicate
proposals; duplicates are harmless anyway since proposals are idempotent
per (view, member)).

Service vocabulary (service ``gm``):

* call ``propose_expel(rank)`` / ``propose_join(rank)``;
* response ``view(view_id, members)`` — a new view was installed;
* query ``current_view()`` → ``(view_id, members)``.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["GroupMembershipModule"]

_GM = "gm.op"
_GM_BYTES = 24


class GroupMembershipModule(Module):
    """View-based group membership over an atomic broadcast service."""

    PROVIDES = (WellKnown.GM,)
    PROTOCOL = "gm"

    def __init__(
        self,
        stack: Stack,
        members: Sequence[int],
        abcast_service: str = WellKnown.R_ABCAST,
        auto_expel: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.abcast_service = abcast_service
        super().__init__(
            stack,
            name=name,
            requires=(abcast_service, WellKnown.FD),
        )
        self.auto_expel = auto_expel
        self.counters = Counter()
        self.view_id = 0
        self.members: FrozenSet[int] = frozenset(members)
        #: (kind, rank, proposed-in-view) operations already applied.
        self._applied_ops: set = set()
        self._proposed_ops: set = set()
        self.view_history: List[Tuple[int, FrozenSet[int]]] = [
            (self.view_id, self.members)
        ]

        self.export_call(WellKnown.GM, "propose_expel", self._propose_expel)
        self.export_call(WellKnown.GM, "propose_join", self._propose_join)
        self.export_query(WellKnown.GM, "current_view", self._current_view)
        self.subscribe(abcast_service, "adeliver", self._on_adeliver)
        self.subscribe(WellKnown.FD, "suspect", self._on_suspect)

    # ------------------------------------------------------------------ #
    # Proposals
    # ------------------------------------------------------------------ #
    def _propose_expel(self, rank: int) -> None:
        self._propose("expel", rank)

    def _propose_join(self, rank: int) -> None:
        self._propose("join", rank)

    def _propose(self, kind: str, rank: int) -> None:
        op = (kind, rank, self.view_id)
        if op in self._proposed_ops:
            return
        self._proposed_ops.add(op)
        self.counters.incr(f"proposed_{kind}")
        self.call(self.abcast_service, "abcast", (_GM, kind, rank, self.view_id), _GM_BYTES)

    # ------------------------------------------------------------------ #
    # Failure-detector coupling
    # ------------------------------------------------------------------ #
    def _on_suspect(self, rank: int) -> None:
        if not self.auto_expel or rank not in self.members:
            return
        # One designated proposer (lowest live rank) keeps traffic down;
        # the designated proposer being wrong/crashed only costs a delay
        # until its own expulsion, after which the next rank takes over.
        live = sorted(self.members - {rank})
        if live and self.stack_id == live[0]:
            self._propose_expel(rank)

    # ------------------------------------------------------------------ #
    # View installation (totally ordered, hence consistent)
    # ------------------------------------------------------------------ #
    def _on_adeliver(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _GM):
            return NOT_MINE
        _, kind, rank, proposed_in_view = payload
        op = (kind, rank, proposed_in_view)
        if op in self._applied_ops:
            return None
        self._applied_ops.add(op)
        if kind == "expel" and rank in self.members:
            self._install(self.members - {rank})
        elif kind == "join" and rank not in self.members:
            self._install(self.members | {rank})
        return None

    def _install(self, members: FrozenSet[int]) -> None:
        self.view_id += 1
        self.members = frozenset(members)
        self.view_history.append((self.view_id, self.members))
        self.counters.incr("views_installed")
        self.respond(WellKnown.GM, "view", self.view_id, self.members)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _current_view(self) -> Tuple[int, FrozenSet[int]]:
        return (self.view_id, self.members)
