"""Group membership on top of (replaceable) atomic broadcast.

The paper's GM module "provides a group membership service that maintains
consistent membership among all group members; the module requires the
atomic broadcast service" — and in the adaptive middleware it requires it
*through the replacement layer* (``r-abcast``), which is what makes GM the
paper's witness that "all middleware protocols, including those that
depend on the updated protocols, provide service correctly and with
negligible delay while the global update takes place".

Model (simplified from dynamic group communication, the paper's [17]):
the membership is a sequence of **views** ``(view_id, members)``.  View
changes (join/leave/expel proposals) are ABcast; because ABcast delivers
them in the same total order everywhere, every stack installs the same
sequence of views — consistency by construction.  Suspicions from the
failure detector trigger expel proposals (rate-limited, one proposer per
suspicion: the lowest-ranked live member, to avoid n duplicate
proposals; duplicates are harmless anyway since proposals are idempotent
per (view, member)).

Crash-recovery re-join (the restart protocol's GM leg): when this
module's machine recovers, :meth:`on_restart` proposes a **rejoin**
through the (replaceable) abcast service, carrying the machine's new
incarnation epoch.  When the rejoin op is Adelivered, every member
re-admits the node (a view change, if it had been expelled meanwhile)
and the lowest-ranked member the local FD trusts answers with a
**state-transfer snapshot**: current view id, members, the applied-op
set, and the donor's abcast sequence position.  The snapshot travels
through the same total order, so its Adelivery instant is a consistent
"rejoined" marker at every member; the joiner merges it idempotently —
when the transport replayed history to it (reliable channels retransmit
across the outage) the snapshot is a confirmation, and when history was
skipped it fast-forwards the view instead of replaying.  The scenario
engine uses the joiner-side completion (:attr:`rejoined_at` /
:attr:`rejoined_epoch`) to narrow the property checkers' crash
exemptions back.

Service vocabulary (service ``gm``):

* call ``propose_expel(rank)`` / ``propose_join(rank)``;
* response ``view(view_id, members)`` — a new view was installed;
* response ``rejoined(rank, view_id)`` — a restarted member completed
  its re-join handshake (state snapshot Adelivered);
* query ``current_view()`` → ``(view_id, members)``.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import KernelError, UnknownServiceError
from ..kernel.module import Module, NOT_MINE
from ..kernel.service import WellKnown
from ..kernel.stack import Stack
from ..sim.monitors import Counter

__all__ = ["GroupMembershipModule"]

_GM = "gm.op"
_GM_BYTES = 24
#: Base wire size of a state-transfer snapshot (header + view id + sn).
_GM_STATE_BASE_BYTES = 48
#: Per-member and per-applied-op contributions to the snapshot size.
_GM_STATE_MEMBER_BYTES = 8
_GM_STATE_OP_BYTES = 12


class GroupMembershipModule(Module):
    """View-based group membership over an atomic broadcast service."""

    PROVIDES = (WellKnown.GM,)
    PROTOCOL = "gm"

    def __init__(
        self,
        stack: Stack,
        members: Sequence[int],
        abcast_service: str = WellKnown.R_ABCAST,
        auto_expel: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.abcast_service = abcast_service
        super().__init__(
            stack,
            name=name,
            requires=(abcast_service, WellKnown.FD),
        )
        self.auto_expel = auto_expel
        self.counters = Counter()
        self.view_id = 0
        self.members: FrozenSet[int] = frozenset(members)
        #: (kind, rank, proposed-in-view|epoch) operations already applied.
        self._applied_ops: set = set()
        self._proposed_ops: set = set()
        self.view_history: List[Tuple[int, FrozenSet[int]]] = [
            (self.view_id, self.members)
        ]

        # -- crash-recovery re-join state -------------------------------- #
        #: Epoch of the incarnation whose rejoin is in flight (joiner side).
        self._restart_epoch: Optional[int] = None
        #: Incarnation epoch whose re-join handshake completed here.
        self.rejoined_epoch: Optional[int] = None
        #: Local instant the handshake completed (snapshot Adelivered).
        self.rejoined_at: Optional[float] = None
        #: The donor's abcast sequence position from the last snapshot.
        self.last_snapshot_abcast_sn: Optional[int] = None
        #: Every completed re-join observed here: (rank, epoch, time).
        self.rejoin_log: List[Tuple[int, int, float]] = []
        self._states_seen: Set[Tuple[int, int]] = set()

        self.export_call(WellKnown.GM, "propose_expel", self._propose_expel)
        self.export_call(WellKnown.GM, "propose_join", self._propose_join)
        self.export_query(WellKnown.GM, "current_view", self._current_view)
        self.subscribe(abcast_service, "adeliver", self._on_adeliver)
        self.subscribe(WellKnown.FD, "suspect", self._on_suspect)

    # ------------------------------------------------------------------ #
    # Proposals
    # ------------------------------------------------------------------ #
    def _propose_expel(self, rank: int) -> None:
        self._propose("expel", rank)

    def _propose_join(self, rank: int) -> None:
        self._propose("join", rank)

    def _propose(self, kind: str, rank: int) -> None:
        op = (kind, rank, self.view_id)
        if op in self._proposed_ops:
            return
        self._proposed_ops.add(op)
        self.counters.incr(f"proposed_{kind}")
        self.call(self.abcast_service, "abcast", (_GM, kind, rank, self.view_id), _GM_BYTES)

    # ------------------------------------------------------------------ #
    # Crash-recovery re-join (joiner side)
    # ------------------------------------------------------------------ #
    def on_restart(self) -> None:
        # Propose re-admission under the new incarnation epoch.  The
        # proposal rides the replaceable abcast service: if this stack
        # missed protocol switches while down, Algorithm 1's reissue loop
        # (lines 15-16) re-routes the frame through each newly installed
        # protocol until it lands in the live total order.
        epoch = self.stack.machine.epoch
        self._restart_epoch = epoch
        self.counters.incr("rejoins_proposed")
        self.call(
            self.abcast_service, "abcast", (_GM, "rejoin", self.stack_id, epoch), _GM_BYTES
        )

    # ------------------------------------------------------------------ #
    # Failure-detector coupling
    # ------------------------------------------------------------------ #
    def _on_suspect(self, rank: int) -> None:
        if not self.auto_expel or rank not in self.members:
            return
        # One designated proposer (lowest live rank) keeps traffic down;
        # the designated proposer being wrong/crashed only costs a delay
        # until its own expulsion, after which the next rank takes over.
        live = sorted(self.members - {rank})
        if live and self.stack_id == live[0]:
            self._propose_expel(rank)

    def _fd_suspects(self) -> FrozenSet[int]:
        try:
            return frozenset(self.query(WellKnown.FD, "suspects"))
        except (KernelError, UnknownServiceError):
            return frozenset()  # no FD bound (bare test rigs): trust all

    # ------------------------------------------------------------------ #
    # View installation (totally ordered, hence consistent)
    # ------------------------------------------------------------------ #
    def _on_adeliver(self, origin: int, payload: Any, size_bytes: int):
        if not (isinstance(payload, tuple) and payload and payload[0] == _GM):
            return NOT_MINE
        kind = payload[1]
        if kind == "state":
            _, _, rank, epoch, snapshot = payload
            self._on_state(rank, epoch, snapshot)
            return None
        _, kind, rank, arg = payload
        op = (kind, rank, arg)
        if op in self._applied_ops:
            return None
        self._applied_ops.add(op)
        if kind == "expel" and rank in self.members:
            self._install(self.members - {rank})
        elif kind == "join" and rank not in self.members:
            self._install(self.members | {rank})
        elif kind == "rejoin":
            self._on_rejoin(rank, arg)
        return None

    def _install(self, members: FrozenSet[int]) -> None:
        self.view_id += 1
        self.members = frozenset(members)
        self.view_history.append((self.view_id, self.members))
        self.counters.incr("views_installed")
        self.respond(WellKnown.GM, "view", self.view_id, self.members)

    # ------------------------------------------------------------------ #
    # Re-join handshake (member side)
    # ------------------------------------------------------------------ #
    def _on_rejoin(self, rank: int, epoch: int) -> None:
        self.counters.incr("rejoins_seen")
        if rank not in self.members:
            # The node was expelled while down; re-admit it.
            self._install(self.members | {rank})
        # Donor election: the lowest-ranked member the *local* FD trusts
        # answers with the state snapshot.  Divergent suspect sets can
        # elect two donors transiently; duplicate snapshots are dropped
        # by the per-(rank, epoch) dedup at every receiver.
        suspects = self._fd_suspects()
        candidates = sorted(m for m in self.members if m != rank and m not in suspects)
        if candidates and candidates[0] == self.stack_id:
            snapshot = self._state_snapshot()
            size = (
                _GM_STATE_BASE_BYTES
                + _GM_STATE_MEMBER_BYTES * len(snapshot[1])
                + _GM_STATE_OP_BYTES * len(snapshot[2])
            )
            self.counters.incr("state_snapshots_sent")
            self.call(
                self.abcast_service, "abcast", (_GM, "state", rank, epoch, snapshot), size
            )

    def _state_snapshot(self) -> Tuple[int, tuple, tuple, Optional[int]]:
        """The donor's consistent state: view, members, ops, abcast position."""
        abcast_sn: Optional[int] = None
        try:
            status = self.query(self.abcast_service, "status")
            abcast_sn = status.get("seq_number")
        except (KernelError, UnknownServiceError):
            pass  # a plain abcast service has no replacement status query
        return (
            self.view_id,
            tuple(sorted(self.members)),
            tuple(sorted(self._applied_ops)),
            abcast_sn,
        )

    def _on_state(self, rank: int, epoch: int, snapshot: tuple) -> None:
        if (rank, epoch) in self._states_seen:
            return  # duplicate snapshot from a second donor
        self._states_seen.add((rank, epoch))
        snap_view, snap_members, snap_ops, abcast_sn = snapshot
        if rank == self.stack_id and epoch == self._restart_epoch:
            # Joiner side: install the donor's state.  Because abcast
            # delivery is prefix-faithful, any history the transport
            # replayed to us was already applied before this snapshot was
            # Adelivered; merging is then a no-op confirmation.  If
            # history was skipped, the snapshot fast-forwards instead.
            self._applied_ops.update(snap_ops)
            if snap_view > self.view_id:
                self.view_id = snap_view
                self.members = frozenset(snap_members)
                self.view_history.append((self.view_id, self.members))
                self.counters.incr("state_transfers_fastforwarded")
                self.respond(WellKnown.GM, "view", self.view_id, self.members)
            self.counters.incr("state_transfers_applied")
            self.rejoined_epoch = epoch
            self.rejoined_at = self.now
            self.last_snapshot_abcast_sn = abcast_sn
        # Every member records the completed handshake at its Adelivery
        # instant (the same position of the total order everywhere).
        self.rejoin_log.append((rank, epoch, self.now))
        self.respond(WellKnown.GM, "rejoined", rank, self.view_id)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _current_view(self) -> Tuple[int, FrozenSet[int]]:
        return (self.view_id, self.members)
