"""Group membership (the paper's GM module) — the protocol that *depends
on* the replaceable atomic broadcast and must keep working during DPU."""

from .membership import GroupMembershipModule

__all__ = ["GroupMembershipModule"]
