"""Terminal rendering of figures and tables (offline-friendly)."""

from .ascii_plot import ascii_plot
from .tables import render_table

__all__ = ["ascii_plot", "render_table"]
