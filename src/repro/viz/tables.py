"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
