"""ASCII plotting (no matplotlib in the offline environment).

Renders scatter/line series into a character grid with axes and legend —
enough to eyeball the Figure 5 latency spike and the Figure 6 load curves
directly in a terminal or a benchmark log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "+x*o#@%&"


def _nice_num(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a distinct marker; later series overwrite earlier
    ones on collisions.  Returns the chart as a multi-line string.
    """
    if width < 20 or height < 5:
        raise ValueError("plot area too small")
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return f"{title}\n(empty plot: no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = y_min if y_min is not None else min(ys)
    y_hi = y_max if y_max is not None else max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, marker: str) -> None:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        if 0 <= col < width and 0 <= row < height:
            grid[height - 1 - row][col] = marker

    legend = []
    for idx, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in pts:
            put(x, y, marker)

    y_axis_width = max(len(_nice_num(y_hi)), len(_nice_num(y_lo)))
    lines: List[str] = []
    if title:
        lines.append(title.center(width + y_axis_width + 3))
    if legend:
        lines.append("   ".join(legend))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = _nice_num(y_hi).rjust(y_axis_width)
        elif row_idx == height - 1:
            label = _nice_num(y_lo).rjust(y_axis_width)
        else:
            label = " " * y_axis_width
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(" " * y_axis_width + " +" + "-" * width + "+")
    x_left = _nice_num(x_lo)
    x_right = _nice_num(x_hi)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (y_axis_width + 2) + x_left + " " * max(1, padding) + x_right
    )
    if xlabel or ylabel:
        caption = f"x: {xlabel}" + (f"    y: {ylabel}" if ylabel else "")
        lines.append(caption.center(width + y_axis_width + 3))
    return "\n".join(lines)
