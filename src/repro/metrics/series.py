"""Time-series helpers: binning, moving averages, spike analysis.

Used by the Figure 5 harness to turn the per-message latency cloud into
a readable curve and to measure the perturbation window (the paper's
"lost during a short period (approximately one second)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["bin_series", "moving_average", "PerturbationWindow", "find_perturbation"]

#: A raw series: list of (x, y) points, x ascending.
XY = Sequence[Tuple[float, float]]


def bin_series(
    points: XY, bin_width: float, start: Optional[float] = None
) -> List[Tuple[float, float]]:
    """Average *points* into fixed-width bins; returns (bin-centre, mean).

    Empty bins are skipped (no interpolation — gaps are information).
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    pts = list(points)
    if not pts:
        return []
    x0 = start if start is not None else pts[0][0]
    bins: dict = {}
    for x, y in pts:
        idx = int((x - x0) // bin_width)
        bins.setdefault(idx, []).append(y)
    return [
        (x0 + (idx + 0.5) * bin_width, float(np.mean(ys)))
        for idx, ys in sorted(bins.items())
    ]


def moving_average(points: XY, window: int) -> List[Tuple[float, float]]:
    """Centred moving average over *window* consecutive points."""
    if window < 1:
        raise ValueError("window must be >= 1")
    pts = list(points)
    if len(pts) < window:
        return pts
    xs = np.array([p[0] for p in pts])
    ys = np.array([p[1] for p in pts])
    kernel = np.ones(window) / window
    smooth = np.convolve(ys, kernel, mode="valid")
    offset = (window - 1) // 2
    out_x = xs[offset: offset + len(smooth)]
    return list(zip(out_x.tolist(), smooth.tolist()))


@dataclass(frozen=True)
class PerturbationWindow:
    """A measured latency perturbation around an event."""

    start: float
    end: float
    peak: float            # highest binned latency inside the window
    baseline: float        # mean binned latency before the event

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def peak_factor(self) -> float:
        """Peak as a multiple of the baseline (1.0 = no perturbation)."""
        return self.peak / self.baseline if self.baseline > 0 else float("inf")


def find_perturbation(
    points: XY,
    event_time: float,
    bin_width: float = 0.1,
    threshold_factor: float = 1.5,
) -> Optional[PerturbationWindow]:
    """Measure the latency perturbation following *event_time*.

    The baseline is the mean of bins strictly before the event; the
    perturbation is the contiguous run of bins at/after the event whose
    value exceeds ``threshold_factor × baseline``.  Returns ``None`` when
    no bin exceeds the threshold (no measurable perturbation) or the
    baseline cannot be estimated.
    """
    binned = bin_series(points, bin_width)
    before = [y for x, y in binned if x < event_time]
    after = [(x, y) for x, y in binned if x >= event_time]
    if not before or not after:
        return None
    baseline = float(np.mean(before))
    threshold = threshold_factor * baseline
    start = end = None
    peak = baseline
    for x, y in after:
        if y > threshold:
            if start is None:
                start = x - bin_width / 2
            end = x + bin_width / 2
            peak = max(peak, y)
        elif start is not None:
            break  # perturbation over at the first calm bin
    if start is None or end is None:
        return None
    return PerturbationWindow(start=start, end=end, peak=peak, baseline=baseline)
