"""Latency measurement — the paper's definition, verbatim.

Section 6.2: "Consider a message m sent using ABcast.  We denote by
t_i(m) the time between the moment of sending m and the moment of
delivering m on machine (stack) i.  We define the average latency of m as
the average of t_i(m) for all machines (stacks) i."

All functions operate on a :class:`~repro.dpu.probes.DeliveryLog`; times
are simulated seconds (convert for display with
:func:`repro.sim.clock.to_ms` — the paper plots milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from ..dpu.probes import DeliveryLog
from ..sim.clock import Time

__all__ = [
    "message_latency",
    "LatencyPoint",
    "latency_series",
    "mean_latency",
    "windowed_mean_latency",
]


def message_latency(
    log: DeliveryLog, key: Hashable, stacks: Optional[Sequence[int]] = None
) -> Optional[float]:
    """The paper's average latency of one message, in seconds.

    Returns ``None`` when the message was not delivered anywhere (yet).
    When *stacks* is given, only those stacks' deliveries are averaged
    (used to exclude crashed machines, as the paper's averaging
    implicitly does).
    """
    sender, t_send = log.sends[key]
    times = log.delivery_times(key)
    if stacks is not None:
        times = {s: t for s, t in times.items() if s in stacks}
    if not times:
        return None
    return float(np.mean([t - t_send for t in times.values()]))


@dataclass(frozen=True)
class LatencyPoint:
    """One point of the Figure 5 series: a message and its average latency."""

    key: Hashable
    send_time: Time
    latency: float  # seconds


def latency_series(
    log: DeliveryLog, stacks: Optional[Sequence[int]] = None
) -> List[LatencyPoint]:
    """Per-message average latency, ordered by send time (Figure 5's cloud).

    Messages never delivered anywhere are skipped (they would have
    infinite latency; the property checkers report them separately).
    """
    points = []
    for key, (_sender, t_send) in log.sends.items():
        lat = message_latency(log, key, stacks)
        if lat is not None:
            points.append(LatencyPoint(key=key, send_time=t_send, latency=lat))
    points.sort(key=lambda p: p.send_time)
    return points


def mean_latency(
    log: DeliveryLog, stacks: Optional[Sequence[int]] = None
) -> Optional[float]:
    """Mean of the per-message average latencies over the whole run."""
    series = latency_series(log, stacks)
    if not series:
        return None
    return float(np.mean([p.latency for p in series]))


def windowed_mean_latency(
    log: DeliveryLog,
    start: Time,
    end: Time,
    stacks: Optional[Sequence[int]] = None,
) -> Optional[float]:
    """Mean latency of messages *sent* within ``[start, end)``.

    This is how the Figure 6 "during replacement" curve is computed: the
    window is the measured replacement window.
    """
    series = [
        p for p in latency_series(log, stacks) if start <= p.send_time < end
    ]
    if not series:
        return None
    return float(np.mean([p.latency for p in series]))
