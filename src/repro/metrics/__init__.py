"""Measurement: the paper's latency definition, series tools, summaries."""

from .latency import (
    LatencyPoint,
    latency_series,
    mean_latency,
    message_latency,
    windowed_mean_latency,
)
from .series import PerturbationWindow, bin_series, find_perturbation, moving_average
from .stats import Summary, relative_overhead, summarize
from .throughput import delivery_throughput, throughput_series

__all__ = [
    "message_latency",
    "LatencyPoint",
    "latency_series",
    "mean_latency",
    "windowed_mean_latency",
    "bin_series",
    "moving_average",
    "PerturbationWindow",
    "find_perturbation",
    "Summary",
    "summarize",
    "relative_overhead",
    "delivery_throughput",
    "throughput_series",
]
