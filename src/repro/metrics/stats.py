"""Summary statistics for benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["Summary", "summarize", "relative_overhead"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95% CI of the mean."""
        if self.count < 2:
            return float("nan")
        return 1.96 * self.std / math.sqrt(self.count)

    def format(self, unit: str = "", scale: float = 1.0) -> str:
        """One-line human-readable rendering (values multiplied by *scale*)."""
        return (
            f"n={self.count} mean={self.mean * scale:.3f}{unit} "
            f"±{self.ci95_halfwidth() * scale:.3f} median={self.median * scale:.3f}{unit} "
            f"p95={self.p95 * scale:.3f}{unit} max={self.maximum * scale:.3f}{unit}"
        )


def summarize(values: Sequence[float]) -> Optional[Summary]:
    """Summarise a sample; ``None`` for an empty one."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return None
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def relative_overhead(baseline: float, measured: float) -> float:
    """``(measured - baseline) / baseline`` — e.g. the ~5% layer cost."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (measured - baseline) / baseline
