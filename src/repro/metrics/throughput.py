"""Throughput measurement over delivery logs."""

from __future__ import annotations

from typing import List, Tuple

from ..dpu.probes import DeliveryLog
from ..sim.clock import Time

__all__ = ["delivery_throughput", "throughput_series"]


def delivery_throughput(
    log: DeliveryLog, stack_id: int, start: Time, end: Time
) -> float:
    """Adeliveries per second at *stack_id* over ``[start, end)``."""
    if end <= start:
        raise ValueError("need end > start")
    count = sum(
        1 for _k, t in log.deliveries.get(stack_id, []) if start <= t < end
    )
    return count / (end - start)


def throughput_series(
    log: DeliveryLog, stack_id: int, bin_width: float = 0.5
) -> List[Tuple[Time, float]]:
    """(bin centre, deliveries/s) series for one stack."""
    deliveries = log.deliveries.get(stack_id, [])
    if not deliveries:
        return []
    t0 = deliveries[0][1]
    bins: dict = {}
    for _k, t in deliveries:
        bins[int((t - t0) // bin_width)] = bins.get(int((t - t0) // bin_width), 0) + 1
    return [
        (t0 + (idx + 0.5) * bin_width, count / bin_width)
        for idx, count in sorted(bins.items())
    ]
