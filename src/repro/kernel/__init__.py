"""Protocol kernel: the paper's composition model (Section 2) in code.

Services (specifications), modules (per-stack implementations), stacks
(the modules of one machine plus a binding table), dynamic bind/unbind
with blocked-call queues, response routing with buffering, a shared trace
recorder, and the protocol registry implementing the ``create_module``
recursion of Algorithm 1.

This is the library's rendering of the SAMOA protocol framework the paper
built on; it is what the replacement module plugs into *without the
updateable protocols being aware of it*.
"""

from .binding import BindingTable
from .events import STRUCTURAL_TRACE_KINDS, TraceEvent, TraceKind, TraceRecord
from .module import NOT_MINE, Module
from .registry import ProtocolInfo, ProtocolRegistry
from .service import (
    ABCAST_SPEC,
    CONSENSUS_SPEC,
    FD_SPEC,
    GM_SPEC,
    RP2P_SPEC,
    UDP_SPEC,
    ServiceSpec,
    WellKnown,
    is_replacement_service,
    replacement_service_name,
    spec_for,
)
from .stack import DEFAULT_CALL_COST, DEFAULT_RESPONSE_COST, Stack
from .system import System
from .trace import NULL_TRACE, TraceRecorder

__all__ = [
    "ServiceSpec",
    "WellKnown",
    "replacement_service_name",
    "is_replacement_service",
    "spec_for",
    "UDP_SPEC",
    "RP2P_SPEC",
    "FD_SPEC",
    "CONSENSUS_SPEC",
    "ABCAST_SPEC",
    "GM_SPEC",
    "Module",
    "NOT_MINE",
    "Stack",
    "BindingTable",
    "System",
    "TraceRecorder",
    "TraceEvent",
    "TraceRecord",
    "TraceKind",
    "STRUCTURAL_TRACE_KINDS",
    "NULL_TRACE",
    "ProtocolRegistry",
    "ProtocolInfo",
    "DEFAULT_CALL_COST",
    "DEFAULT_RESPONSE_COST",
]
