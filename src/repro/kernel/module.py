"""Protocol modules.

A module (paper, Section 2) is the per-stack implementation unit of a
protocol: it *provides* services, *requires* services, holds local state,
and exchanges messages across the network (via the services it requires —
ultimately the ``udp`` service).

Interaction model (paper, Figure 2):

* a **service call** is a one-way downcall from a caller module to the
  module currently *bound* to the service;
* a **response** is a one-way upcall emitted by a provider module to the
  modules of its stack that require the service.  A module may respond
  *even after being unbound* — the kernel never gates responses on
  bindings, exactly as the paper specifies;
* a **query** is a synchronous, side-effect-free read (e.g. asking the
  failure detector for its suspect list).  Queries are this library's
  rendering of "may contain some local data" — shared-memory reads that
  cost no simulated time.

Handlers are registered explicitly (``export_call`` / ``export_query`` /
``subscribe``), never by naming convention, so fully generic modules —
like the replacement module, which wraps an *arbitrary* service — are
first-class citizens.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from ..errors import KernelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stack import Stack

__all__ = ["Module", "NOT_MINE"]


class _NotMine:
    """Sentinel a response handler returns to disclaim a response.

    Shared services (``udp``, ``rbcast``, ...) fan every response out to
    all subscribers, which demultiplex by frame tags.  A handler that
    inspects a frame and finds it belongs to someone else returns
    :data:`NOT_MINE`; if *every* handler disclaims a response, the stack
    buffers it and replays it when a new subscriber module is added.
    This implements the paper's rule that a response to a module not yet
    in the stack "is completed when Pj is added to stack j" — which is
    load-bearing during replacements: frames of the *new* protocol
    incarnation may arrive at a stack before that stack has created its
    new module.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<NOT_MINE>"


NOT_MINE = _NotMine()

CallHandler = Callable[..., None]
QueryHandler = Callable[..., Any]
ResponseHandler = Callable[..., Any]


class Module:
    """Base class for every protocol module.

    Subclasses usually set the class attributes :attr:`PROVIDES`,
    :attr:`REQUIRES` and :attr:`PROTOCOL`, register handlers in
    ``__init__``, and override :meth:`on_start` to arm timers.

    Parameters
    ----------
    stack:
        The stack this module is created for.  The module is *not* added
        to the stack by the constructor — use :meth:`Stack.add_module` —
        but it needs the reference for registration helpers.
    name:
        Unique (within the stack) instance name; auto-derived when ``None``.
    provides / requires / protocol:
        Instance-level overrides of the class attributes, used by generic
        modules such as the replacement module.
    """

    #: Services provided by instances of this class (class-level default).
    PROVIDES: Tuple[str, ...] = ()
    #: Services required by instances of this class (class-level default).
    REQUIRES: Tuple[str, ...] = ()
    #: Protocol identity: identical modules on different stacks share it.
    PROTOCOL: str = ""

    def __init__(
        self,
        stack: "Stack",
        name: Optional[str] = None,
        provides: Optional[Sequence[str]] = None,
        requires: Optional[Sequence[str]] = None,
        protocol: Optional[str] = None,
    ) -> None:
        self.stack = stack
        self.provides: Tuple[str, ...] = tuple(provides if provides is not None else self.PROVIDES)
        self.requires: Tuple[str, ...] = tuple(requires if requires is not None else self.REQUIRES)
        self.protocol: str = protocol if protocol is not None else (self.PROTOCOL or type(self).__name__)
        self.name: str = name if name is not None else stack.fresh_module_name(self.protocol)
        self._call_handlers: Dict[Tuple[str, str], CallHandler] = {}
        self._query_handlers: Dict[Tuple[str, str], QueryHandler] = {}
        self._response_handlers: Dict[Tuple[str, str], ResponseHandler] = {}
        self.started = False
        self.stopped = False

    # ------------------------------------------------------------------ #
    # Handler registration
    # ------------------------------------------------------------------ #
    def export_call(self, service: str, method: str, fn: CallHandler) -> None:
        """Declare that this module handles downcall *method* of *service*."""
        if service not in self.provides:
            raise KernelError(
                f"{self.name}: cannot export call on {service!r}; provides {self.provides}"
            )
        self._call_handlers[(service, method)] = fn
        self.stack._invalidate_handler(service, method)

    def export_query(self, service: str, query: str, fn: QueryHandler) -> None:
        """Declare that this module answers synchronous *query* of *service*."""
        if service not in self.provides:
            raise KernelError(
                f"{self.name}: cannot export query on {service!r}; provides {self.provides}"
            )
        self._query_handlers[(service, query)] = fn
        self.stack._invalidate_query(service, query)

    def subscribe(self, service: str, event: str, fn: ResponseHandler) -> None:
        """Declare that this module consumes response *event* of *service*."""
        if service not in self.requires:
            raise KernelError(
                f"{self.name}: cannot subscribe to {service!r}; requires {self.requires}"
            )
        self._response_handlers[(service, event)] = fn
        self.stack._invalidate_subscribers(service, event)

    # Handler lookup (used by the stack) -------------------------------- #
    def call_handler(self, service: str, method: str) -> Optional[CallHandler]:
        """The registered handler for downcall *method*, or ``None``."""
        return self._call_handlers.get((service, method))

    def query_handler(self, service: str, query: str) -> Optional[QueryHandler]:
        """The registered handler for synchronous *query*, or ``None``."""
        return self._query_handlers.get((service, query))

    def response_handler(self, service: str, event: str) -> Optional[ResponseHandler]:
        """The registered handler for response *event*, or ``None``."""
        return self._response_handlers.get((service, event))

    def handles_any_response(self, service: str) -> bool:
        """Whether this module subscribed to at least one event of *service*."""
        return any(s == service for (s, _e) in self._response_handlers)

    # ------------------------------------------------------------------ #
    # Actions (delegate to the stack)
    # ------------------------------------------------------------------ #
    def call(self, service: str, method: str, *args: Any, cost: Optional[float] = None) -> None:
        """Issue a service call (one-way, dispatched to the bound provider)."""
        self.stack.issue_call(self, service, method, args, cost=cost)

    def respond(self, service: str, event: str, *args: Any, cost: Optional[float] = None) -> None:
        """Emit a response event on a service this module provides.

        Permitted even when the module is currently unbound (paper,
        Section 2: "a module Qi can respond to a service call even if Qi
        has been unbound").
        """
        self.stack.issue_response(self, service, event, args, cost=cost)

    def query(self, service: str, query: str, *args: Any) -> Any:
        """Synchronously query the module bound to *service*."""
        return self.stack.query(service, query, *args)

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Optional[Any]:
        """Arm a timer on this stack's node (dies with the node).

        Routed through the stack's runtime backend (the
        :class:`~repro.runtime.api.NodeBackend` seam), so the same
        module runs unchanged on the simulator and on wall-clock
        backends.  Returns a handle for :meth:`cancel_timer`, or
        ``None`` when the node is already down.
        """
        return self.stack.backend.set_timer(delay, fn, *args)

    def set_timer_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Arm a never-cancelled one-shot timer (no handle allocated).

        Use for self-re-arming wheels (periodic ticks, batched flushes);
        anything that might be cancelled needs :meth:`set_timer`.
        """
        self.stack.backend.set_timer_fast(delay, fn, *args)

    def cancel_timer(self, handle: Any) -> None:
        """Cancel a timer handle returned by :meth:`set_timer`.

        No-op once the timer fired.  This is the only sanctioned way for
        module code to disarm a timer — going to the engine directly
        (``self.sim.cancel``) would weld the module to the simulation
        backend.
        """
        self.stack.backend.cancel(handle)

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Called once when the module is added to its stack."""

    def on_stop(self) -> None:
        """Called once when the module is removed from its stack."""

    def on_restart(self) -> None:
        """Called when the host machine recovers from a crash.

        Timers armed before the crash belong to the dead incarnation and
        never fire; a module whose liveness depends on a timer wheel
        (heartbeats, retransmissions, periodic work) re-arms it here.
        Module state survived the crash, so implementations re-arm from
        their surviving state rather than re-running :meth:`on_start`
        (which may have one-shot side effects such as minting a token).
        The default is a no-op: a purely message-driven module needs
        nothing.
        """

    # Convenience ------------------------------------------------------- #
    @property
    def sim(self) -> Any:
        """The scheduler this module's node runs on (the
        :class:`~repro.runtime.api.Scheduler` seam: the simulator in the
        discrete-event backend, a wall-clock scheduler in realtime)."""
        return self.stack.sim

    @property
    def now(self) -> float:
        """Current runtime time (simulated or wall-clock seconds)."""
        return self.stack.sim.now

    @property
    def stack_id(self) -> int:
        """Rank of the hosting stack (= machine id = network address)."""
        return self.stack.stack_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} provides={self.provides}>"
