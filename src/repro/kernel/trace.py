"""The trace recorder shared by all stacks of a system.

One :class:`TraceRecorder` collects the :class:`~repro.kernel.events.TraceRecord`
stream of an entire distributed execution (all stacks interleaved in
global simulated-time order).  Property checkers and debugging tools then
query it; recording can be disabled wholesale for pure benchmarking runs
(:data:`NULL_TRACE` is the shared always-off sink), or filtered by kind
to bound memory — campaigns run with
:data:`~repro.kernel.events.STRUCTURAL_TRACE_KINDS` so the checkers keep
their teeth while the per-call firehose is never allocated.

Storage is **columnar**: recording appends plain scalars to ten parallel
column lists (plus a per-kind row index) instead of allocating a
:class:`TraceRecord` object per event.  Appending to a list of floats and
strings is a handful of ``list.append`` calls — no object header, no
slot initialisation, no per-record GC tracking — which matters because
structural tracing stays on during campaigns and sits directly on the
kernel's dispatch path.  Records are materialised lazily, once, at query
time (the analysis phase), and cached until the next append.

Hot-path contract with :class:`~repro.kernel.stack.Stack`: the stack
caches per-kind "wants" flags (see :meth:`TraceRecorder.wants`) at
construction and re-checks only the cheap :attr:`enabled` attribute per
call; trace sites whose fields all land in named slots call
:meth:`record_fast`, which takes no ``**kwargs`` (CPython builds the
kwargs dict for ``**detail`` even when empty).  The :attr:`keep` filter
is fixed at construction; toggle :attr:`enabled` freely.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
)

from ..sim.clock import Time
from .events import TraceKind, TraceRecord

__all__ = ["TraceRecorder", "NULL_TRACE"]


class TraceRecorder:
    """Collects, filters, and queries kernel trace records.

    Parameters
    ----------
    enabled:
        When ``False`` the recorder drops everything (zero memory cost).
    keep:
        When given, only these :class:`TraceKind` values are retained.
        Fixed at construction (stacks cache per-kind flags from it).
    """

    __slots__ = (
        "enabled",
        "keep",
        "subscribers",
        "_times",
        "_kinds",
        "_stacks",
        "_services",
        "_modules",
        "_protocols",
        "_methods",
        "_call_ids",
        "_event_names",
        "_details",
        "_kind_rows",
        "_records",
    )

    def __init__(
        self,
        enabled: bool = True,
        keep: Optional[Iterable[TraceKind]] = None,
    ) -> None:
        self.enabled = enabled
        self.keep: Optional[Set[TraceKind]] = set(keep) if keep is not None else None
        # Columnar event storage: one list per record field, row i across
        # all columns is event i.  Append-only between clears.
        self._times: List[Time] = []
        self._kinds: List[TraceKind] = []
        self._stacks: List[int] = []
        self._services: List[Optional[str]] = []
        self._modules: List[Optional[str]] = []
        self._protocols: List[Optional[str]] = []
        self._methods: List[Optional[str]] = []
        self._call_ids: List[Optional[str]] = []
        self._event_names: List[Optional[str]] = []
        self._details: List[Optional[Mapping[str, Any]]] = []
        #: Per-kind row indices (mirrors the old per-kind record index):
        #: ``of_kind`` and the checkers that call it stop scanning the
        #: full stream.
        self._kind_rows: Dict[TraceKind, List[int]] = {}
        #: Lazily materialised records, invalidated on append/clear.
        self._records: Optional[List[TraceRecord]] = None
        #: Live subscribers called on each recorded event (e.g. online checkers).
        self.subscribers: List[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def wants(self, kind: TraceKind) -> bool:
        """Whether records of *kind* pass the :attr:`keep` filter.

        Ignores :attr:`enabled` — callers pair a cached ``wants`` flag
        with a live ``enabled`` check, which is the stack's fast path.
        """
        return self.keep is None or kind in self.keep

    def record_fast(
        self,
        time: Time,
        kind: TraceKind,
        stack_id: int,
        service: Optional[str] = None,
        module: Optional[str] = None,
        protocol: Optional[str] = None,
        method: Optional[str] = None,
        call_id: Optional[str] = None,
        event: Optional[str] = None,
    ) -> None:
        """Hot-path :meth:`record`: named slots only, no ``**detail``.

        Semantically identical to :meth:`record` with no extra keyword
        arguments, but the signature has no ``**kwargs`` so CPython never
        allocates a kwargs dict.  The structural kinds the kernel records
        per dispatch all route through here; only the rare detail-bearing
        kinds (``module_added``, ``recover``, ...) pay for :meth:`record`.
        """
        if not self.enabled:
            return
        keep = self.keep
        if keep is not None and kind not in keep:
            return
        row = len(self._times)
        self._times.append(time)
        self._kinds.append(kind)
        self._stacks.append(stack_id)
        self._services.append(service)
        self._modules.append(module)
        self._protocols.append(protocol)
        self._methods.append(method)
        self._call_ids.append(call_id)
        self._event_names.append(event)
        self._details.append(None)
        rows = self._kind_rows.get(kind)
        if rows is None:
            rows = self._kind_rows[kind] = []
        rows.append(row)
        self._records = None
        if self.subscribers:
            record = self._row(row)
            for sub in self.subscribers:
                sub(record)

    def record(
        self,
        time: Time,
        kind: TraceKind,
        stack_id: int,
        service: Optional[str] = None,
        module: Optional[str] = None,
        protocol: Optional[str] = None,
        method: Optional[str] = None,
        call_id: Optional[str] = None,
        event: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Record one event (a no-op when disabled or filtered out).

        ``method``/``call_id``/``event`` land in the record's slots; any
        remaining keyword arguments go to its :attr:`~TraceRecord.detail`
        mapping (rare kinds only, so hot records allocate no dict).
        """
        if not self.enabled:
            return
        keep = self.keep
        if keep is not None and kind not in keep:
            return
        row = len(self._times)
        self._times.append(time)
        self._kinds.append(kind)
        self._stacks.append(stack_id)
        self._services.append(service)
        self._modules.append(module)
        self._protocols.append(protocol)
        self._methods.append(method)
        self._call_ids.append(call_id)
        self._event_names.append(event)
        self._details.append(detail if detail else None)
        rows = self._kind_rows.get(kind)
        if rows is None:
            rows = self._kind_rows[kind] = []
        rows.append(row)
        self._records = None
        if self.subscribers:
            record = self._row(row)
            for sub in self.subscribers:
                sub(record)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def _row(self, i: int) -> TraceRecord:
        """Materialise row *i* as a :class:`TraceRecord`."""
        detail = self._details[i]
        if detail is not None:
            return TraceRecord(
                self._times[i], self._kinds[i], self._stacks[i],
                self._services[i], self._modules[i], self._protocols[i],
                self._methods[i], self._call_ids[i], self._event_names[i],
                detail,
            )
        return TraceRecord(
            self._times[i], self._kinds[i], self._stacks[i],
            self._services[i], self._modules[i], self._protocols[i],
            self._methods[i], self._call_ids[i], self._event_names[i],
        )

    def _materialise(self) -> List[TraceRecord]:
        """All rows as records, built once and cached until the next append."""
        records = self._records
        if records is None:
            records = self._records = [self._row(i) for i in range(len(self._times))]
        return records

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._materialise())

    @property
    def events(self) -> List[TraceRecord]:
        """The materialised record list (do not mutate)."""
        return self._materialise()

    def of_kind(self, *kinds: TraceKind) -> List[TraceRecord]:
        """Records whose kind is one of *kinds*, in recording order.

        Row indices are recording order, so a multi-kind query is a
        sorted merge of the per-kind row lists — no full-stream scan
        either way.
        """
        if len(kinds) == 1:
            rows = self._kind_rows.get(kinds[0])
            if not rows:
                return []
            records = self._materialise()
            return [records[i] for i in rows]
        lists = [r for r in (self._kind_rows.get(k) for k in set(kinds)) if r]
        if not lists:
            return []
        if len(lists) == 1:
            merged = lists[0]
        else:
            merged = sorted(row for rows in lists for row in rows)
        records = self._materialise()
        return [records[i] for i in merged]

    def for_stack(self, stack_id: int) -> List[TraceRecord]:
        """Records of a single stack, in time order."""
        records = self._materialise()
        return [records[i] for i, s in enumerate(self._stacks) if s == stack_id]

    def for_service(self, service: str) -> List[TraceRecord]:
        """Records mentioning *service*, in time order."""
        records = self._materialise()
        return [records[i] for i, s in enumerate(self._services) if s == service]

    def crashes(self) -> Dict[int, Time]:
        """Map of ``stack_id -> crash time`` for stacks that crashed.

        Reads the columns directly — no record materialisation.
        """
        out: Dict[int, Time] = {}
        times, stacks = self._times, self._stacks
        for row in self._kind_rows.get(TraceKind.CRASH, ()):
            stack_id = stacks[row]
            if stack_id not in out:
                out[stack_id] = times[row]
        return out

    def crashed_before(self, stack_id: int, time: Time) -> bool:
        """Whether *stack_id* had crashed at or before *time*."""
        t = self.crashes().get(stack_id)
        return t is not None and t <= time

    def counts(self) -> Mapping[str, int]:
        """Histogram of event kinds (for quick diagnostics)."""
        return {
            kind.value: len(rows)
            for kind, rows in self._kind_rows.items()
            if rows
        }

    def clear(self) -> None:
        """Drop all recorded events."""
        self._times.clear()
        self._kinds.clear()
        self._stacks.clear()
        self._services.clear()
        self._modules.clear()
        self._protocols.clear()
        self._methods.clear()
        self._call_ids.clear()
        self._event_names.clear()
        self._details.clear()
        self._kind_rows.clear()
        self._records = None


class _NullTraceRecorder(TraceRecorder):
    """The always-off sink behind :data:`NULL_TRACE`.

    One instance is shared by every ``Stack(trace=False)`` in the
    process, so it must stay inert: :attr:`enabled` is pinned ``False``
    (assigning ``True`` raises — enable tracing by passing ``trace=True``
    or a real recorder to the stack instead), and :meth:`wants` answers
    ``False`` so stacks cache all-off flags and never even read
    ``enabled`` on the hot path.
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:  # shadows the base slot
        """Always ``False``; assigning ``True`` raises."""
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        """Reject enabling; assigning ``False`` is an idempotent no-op."""
        if value:
            raise ValueError(
                "NULL_TRACE is the shared always-off sink; construct the "
                "stack with trace=True or a TraceRecorder to record events"
            )

    def wants(self, kind: TraceKind) -> bool:
        """Nothing is ever wanted by the null sink."""
        return False


#: Shared always-disabled sink: the null object behind ``Stack(trace=False)``
#: and standalone benchmark stacks.  Inert by construction (see
#: :class:`_NullTraceRecorder`), so sharing one instance across systems
#: is safe.
NULL_TRACE = _NullTraceRecorder(enabled=False)
