"""The trace recorder shared by all stacks of a system.

One :class:`TraceRecorder` collects the :class:`~repro.kernel.events.TraceRecord`
stream of an entire distributed execution (all stacks interleaved in
global simulated-time order).  Property checkers and debugging tools then
query it; recording can be disabled wholesale for pure benchmarking runs
(:data:`NULL_TRACE` is the shared always-off sink), or filtered by kind
to bound memory — campaigns run with
:data:`~repro.kernel.events.STRUCTURAL_TRACE_KINDS` so the checkers keep
their teeth while the per-call firehose is never allocated.

Hot-path contract with :class:`~repro.kernel.stack.Stack`: the stack
caches per-kind "wants" flags (see :meth:`TraceRecorder.wants`) at
construction and re-checks only the cheap :attr:`enabled` attribute per
call, so a trace-off dispatch pays a single attribute read instead of a
keyword-argument pack per record.  The :attr:`keep` filter is therefore
fixed at construction; toggle :attr:`enabled` freely.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set

from ..sim.clock import Time
from .events import TraceKind, TraceRecord

__all__ = ["TraceRecorder", "NULL_TRACE"]


class TraceRecorder:
    """Collects, filters, and queries kernel trace records.

    Parameters
    ----------
    enabled:
        When ``False`` the recorder drops everything (zero memory cost).
    keep:
        When given, only these :class:`TraceKind` values are retained.
        Fixed at construction (stacks cache per-kind flags from it).
    """

    __slots__ = ("enabled", "keep", "_events", "_by_kind", "subscribers")

    def __init__(
        self,
        enabled: bool = True,
        keep: Optional[Iterable[TraceKind]] = None,
    ) -> None:
        self.enabled = enabled
        self.keep: Optional[Set[TraceKind]] = set(keep) if keep is not None else None
        self._events: List[TraceRecord] = []
        #: Per-kind index (mirrors ``EventLog``): ``of_kind`` and the
        #: checkers that call it stop scanning the full stream.
        self._by_kind: Dict[TraceKind, List[TraceRecord]] = {}
        #: Live subscribers called on each recorded event (e.g. online checkers).
        self.subscribers: List[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def wants(self, kind: TraceKind) -> bool:
        """Whether records of *kind* pass the :attr:`keep` filter.

        Ignores :attr:`enabled` — callers pair a cached ``wants`` flag
        with a live ``enabled`` check, which is the stack's fast path.
        """
        return self.keep is None or kind in self.keep

    def record(
        self,
        time: Time,
        kind: TraceKind,
        stack_id: int,
        service: Optional[str] = None,
        module: Optional[str] = None,
        protocol: Optional[str] = None,
        method: Optional[str] = None,
        call_id: Optional[str] = None,
        event: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Record one event (a no-op when disabled or filtered out).

        ``method``/``call_id``/``event`` land in the record's slots; any
        remaining keyword arguments go to its :attr:`~TraceRecord.detail`
        mapping (rare kinds only, so hot records allocate no dict).
        """
        if not self.enabled:
            return
        if self.keep is not None and kind not in self.keep:
            return
        if detail:
            record = TraceRecord(
                time, kind, stack_id, service, module, protocol,
                method, call_id, event, detail,
            )
        else:
            record = TraceRecord(
                time, kind, stack_id, service, module, protocol,
                method, call_id, event,
            )
        self._events.append(record)
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = []
        index.append(record)
        for sub in self.subscribers:
            sub(record)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceRecord]:
        """The raw record list (do not mutate)."""
        return self._events

    def of_kind(self, *kinds: TraceKind) -> List[TraceRecord]:
        """Records whose kind is one of *kinds*, in recording order.

        Served from the per-kind index when at most one requested kind
        is present (the common case: every checker's single-kind
        queries, and multi-kind queries where the other kinds never
        occurred).  When two or more requested kinds hold records, falls
        back to one pass over the full stream — records carry no global
        sequence number, so that scan *is* the stable merge.
        """
        if len(kinds) == 1:
            return list(self._by_kind.get(kinds[0], ()))
        streams = [s for s in (self._by_kind.get(k, []) for k in set(kinds)) if s]
        if not streams:
            return []
        if len(streams) == 1:
            return list(streams[0])
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_stack(self, stack_id: int) -> List[TraceRecord]:
        """Records of a single stack, in time order."""
        return [e for e in self._events if e.stack_id == stack_id]

    def for_service(self, service: str) -> List[TraceRecord]:
        """Records mentioning *service*, in time order."""
        return [e for e in self._events if e.service == service]

    def crashes(self) -> Dict[int, Time]:
        """Map of ``stack_id -> crash time`` for stacks that crashed."""
        out: Dict[int, Time] = {}
        for e in self._by_kind.get(TraceKind.CRASH, ()):
            if e.stack_id not in out:
                out[e.stack_id] = e.time
        return out

    def crashed_before(self, stack_id: int, time: Time) -> bool:
        """Whether *stack_id* had crashed at or before *time*."""
        t = self.crashes().get(stack_id)
        return t is not None and t <= time

    def counts(self) -> Mapping[str, int]:
        """Histogram of event kinds (for quick diagnostics)."""
        return {
            kind.value: len(records)
            for kind, records in self._by_kind.items()
            if records
        }

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self._by_kind.clear()


class _NullTraceRecorder(TraceRecorder):
    """The always-off sink behind :data:`NULL_TRACE`.

    One instance is shared by every ``Stack(trace=False)`` in the
    process, so it must stay inert: :attr:`enabled` is pinned ``False``
    (assigning ``True`` raises — enable tracing by passing ``trace=True``
    or a real recorder to the stack instead), and :meth:`wants` answers
    ``False`` so stacks cache all-off flags and never even read
    ``enabled`` on the hot path.
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:  # shadows the base slot
        """Always ``False``; assigning ``True`` raises."""
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        """Reject enabling; assigning ``False`` is an idempotent no-op."""
        if value:
            raise ValueError(
                "NULL_TRACE is the shared always-off sink; construct the "
                "stack with trace=True or a TraceRecorder to record events"
            )

    def wants(self, kind: TraceKind) -> bool:
        """Nothing is ever wanted by the null sink."""
        return False


#: Shared always-disabled sink: the null object behind ``Stack(trace=False)``
#: and standalone benchmark stacks.  Inert by construction (see
#: :class:`_NullTraceRecorder`), so sharing one instance across systems
#: is safe.
NULL_TRACE = _NullTraceRecorder(enabled=False)
