"""The trace recorder shared by all stacks of a system.

One :class:`TraceRecorder` collects the :class:`~repro.kernel.events.TraceEvent`
stream of an entire distributed execution (all stacks interleaved in
global simulated-time order).  Property checkers and debugging tools then
query it; recording can be disabled wholesale for pure benchmarking runs,
or filtered by kind to bound memory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set

from ..sim.clock import Time
from .events import TraceEvent, TraceKind

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects, filters, and queries kernel trace events.

    Parameters
    ----------
    enabled:
        When ``False`` the recorder drops everything (zero memory cost).
    keep:
        When given, only these :class:`TraceKind` values are retained.
    """

    def __init__(
        self,
        enabled: bool = True,
        keep: Optional[Iterable[TraceKind]] = None,
    ) -> None:
        self.enabled = enabled
        self.keep: Optional[Set[TraceKind]] = set(keep) if keep is not None else None
        self._events: List[TraceEvent] = []
        #: Live subscribers called on each recorded event (e.g. online checkers).
        self.subscribers: List[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        time: Time,
        kind: TraceKind,
        stack_id: int,
        service: Optional[str] = None,
        module: Optional[str] = None,
        protocol: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Record one event (a no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.keep is not None and kind not in self.keep:
            return
        event = TraceEvent(
            time=time,
            kind=kind,
            stack_id=stack_id,
            service=service,
            module=module,
            protocol=protocol,
            detail=detail,
        )
        self._events.append(event)
        for sub in self.subscribers:
            sub(event)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The raw event list (do not mutate)."""
        return self._events

    def of_kind(self, *kinds: TraceKind) -> List[TraceEvent]:
        """Events whose kind is one of *kinds*, in time order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_stack(self, stack_id: int) -> List[TraceEvent]:
        """Events of a single stack, in time order."""
        return [e for e in self._events if e.stack_id == stack_id]

    def for_service(self, service: str) -> List[TraceEvent]:
        """Events mentioning *service*, in time order."""
        return [e for e in self._events if e.service == service]

    def crashes(self) -> Dict[int, Time]:
        """Map of ``stack_id -> crash time`` for stacks that crashed."""
        out: Dict[int, Time] = {}
        for e in self._events:
            if e.kind is TraceKind.CRASH and e.stack_id not in out:
                out[e.stack_id] = e.time
        return out

    def crashed_before(self, stack_id: int, time: Time) -> bool:
        """Whether *stack_id* had crashed at or before *time*."""
        t = self.crashes().get(stack_id)
        return t is not None and t <= time

    def counts(self) -> Mapping[str, int]:
        """Histogram of event kinds (for quick diagnostics)."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind.value] = out.get(e.kind.value, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
