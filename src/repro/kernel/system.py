"""The distributed system container.

A :class:`System` bundles what the paper calls "the set of stacks": one
simulator, *n* machines each hosting one protocol stack, a shared trace
recorder, and a shared protocol registry.  Experiments and tests build a
``System``, populate the stacks (usually through
:func:`repro.experiments.common.build_group_comm_stack`), run it, and then
check properties on ``system.trace``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..errors import KernelError
from ..sim.clock import Duration, Time
from ..sim.engine import Simulator
from ..sim.process import Machine
from .events import TraceKind
from .registry import ProtocolRegistry
from .stack import DEFAULT_CALL_COST, DEFAULT_RESPONSE_COST, Stack
from .trace import TraceRecorder

__all__ = ["System"]


class System:
    """*n* machines, their stacks, and the shared run-time services.

    Parameters
    ----------
    n:
        Number of machines / stacks (the paper uses 3 and 7).
    seed:
        Root seed for all randomness of the run.
    sim:
        An existing simulator to attach to (a fresh one is created when
        ``None``).
    trace_enabled:
        Disable to run pure benchmarks without trace memory overhead.
    trace_kinds:
        When given, only these :class:`~repro.kernel.events.TraceKind`
        values are recorded (the shared recorder's ``keep`` filter).
        Campaigns pass
        :data:`~repro.kernel.events.STRUCTURAL_TRACE_KINDS` here so the
        property checkers keep full teeth while the per-call record
        firehose is never allocated.
    call_cost / response_cost:
        Default CPU cost of one service-call / response dispatch on every
        stack; see :class:`repro.kernel.stack.Stack`.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        sim: Optional[Simulator] = None,
        trace_enabled: bool = True,
        trace_kinds: Optional[Iterable[TraceKind]] = None,
        call_cost: Duration = DEFAULT_CALL_COST,
        response_cost: Duration = DEFAULT_RESPONSE_COST,
    ) -> None:
        if n < 1:
            raise KernelError(f"a system needs at least one stack, got n={n}")
        self.n = int(n)
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.trace = TraceRecorder(enabled=trace_enabled, keep=trace_kinds)
        self.registry = ProtocolRegistry()
        self.machines: List[Machine] = [
            Machine(self.sim, i) for i in range(self.n)
        ]
        self.stacks: List[Stack] = [
            Stack(m, self.trace, call_cost=call_cost, response_cost=response_cost)
            for m in self.machines
        ]
        #: Optional network attached by the net layer (kept untyped here
        #: to avoid a kernel->net dependency).
        self.network = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def stack(self, i: int) -> Stack:
        """Stack of machine *i*."""
        return self.stacks[i]

    def machine(self, i: int) -> Machine:
        """Machine *i*."""
        return self.machines[i]

    def alive_ids(self) -> List[int]:
        """Ranks of machines that have not crashed."""
        return [m.machine_id for m in self.machines if not m.crashed]

    def alive_stacks(self) -> List[Stack]:
        """Stacks whose machines have not crashed."""
        return [s for s in self.stacks if not s.crashed]

    def crash(self, i: int) -> None:
        """Crash machine *i* now (crash-stop)."""
        self.machines[i].crash()

    def crash_at(self, i: int, time: Time) -> None:
        """Schedule machine *i* to crash at absolute instant *time*."""
        self.machines[i].crash_at(time)

    # ------------------------------------------------------------------ #
    # Population helpers
    # ------------------------------------------------------------------ #
    def on_each_stack(self, build: Callable[[Stack], None], only: Optional[Iterable[int]] = None) -> None:
        """Run *build(stack)* on every stack (or the given subset).

        This is how "a protocol is implemented by a set of identical
        modules, one per machine" is expressed in code.
        """
        targets = list(only) if only is not None else range(self.n)
        for i in targets:
            build(self.stacks[i])

    def create_module_everywhere(self, protocol_name: str, bind: bool = True) -> None:
        """Instantiate *protocol_name* (via the registry) on every stack."""
        for stack in self.stacks:
            self.registry.create_module(stack, protocol_name, bind=bind)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation (see :meth:`repro.sim.engine.Simulator.run`)."""
        self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<System n={self.n} t={self.sim.now:.6f}>"
