"""The protocol registry and the ``create_module`` recursion.

Algorithm 1 of the paper (lines 22–28) creates a new protocol module and
then recursively satisfies its requirements::

    procedure create_module(p)
        create p
        bind p
        for all s in services required by p do
            if no module is bound to service s in stack i then
                find a module q providing service s
                create_module(q)

"find a module q providing service s" presupposes a catalogue of known
protocol implementations; :class:`ProtocolRegistry` is that catalogue.
This is the mechanism that makes the paper's solution *more flexible than
Graceful Adaptation*: a newly installed protocol may require services the
old one never used, and the recursion instantiates their providers on the
fly (experiment X2 in DESIGN.md).

Resolution order for an unbound required service:

1. a module already in the stack providing the service (rebound rather
   than duplicated);
2. the registry's *default provider* for the service, if one is declared;
3. the first registered protocol providing the service (registration
   order — deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import RequirementError, UnknownProtocolError
from .module import Module
from .stack import Stack

__all__ = ["ProtocolInfo", "ProtocolRegistry"]

#: A protocol factory builds one module of the protocol for a given stack.
#: It must accept ``factory(stack, **kwargs)``; kwargs are only supplied
#: when the caller of ``create_module`` passes ``factory_kwargs``.
ProtocolFactory = Callable[..., Module]


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry: how to build one module of a protocol."""

    name: str
    factory: ProtocolFactory
    provides: Tuple[str, ...]
    requires: Tuple[str, ...]


class ProtocolRegistry:
    """A catalogue of instantiable protocol implementations.

    One registry is shared by all stacks of a system, so every stack
    resolves a protocol name to the same implementation — the paper's
    "identical modules on different machines".
    """

    def __init__(self) -> None:
        self._protocols: Dict[str, ProtocolInfo] = {}
        self._default_provider: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: ProtocolFactory,
        provides: Tuple[str, ...],
        requires: Tuple[str, ...] = (),
        default_for: Tuple[str, ...] = (),
    ) -> ProtocolInfo:
        """Register protocol *name*.

        Parameters
        ----------
        default_for:
            Services for which this protocol becomes the default provider
            used by the :meth:`create_module` recursion.
        """
        if name in self._protocols:
            raise UnknownProtocolError(f"protocol {name!r} registered twice")
        info = ProtocolInfo(name, factory, tuple(provides), tuple(requires))
        self._protocols[name] = info
        for service in default_for:
            if service not in info.provides:
                raise RequirementError(
                    f"protocol {name!r} cannot be default for {service!r}: "
                    f"it only provides {info.provides}"
                )
            self._default_provider[service] = name
        return info

    def info(self, name: str) -> ProtocolInfo:
        """Look up a protocol by name."""
        try:
            return self._protocols[name]
        except KeyError:
            raise UnknownProtocolError(
                f"unknown protocol {name!r}; registered: {sorted(self._protocols)}"
            ) from None

    def known(self) -> List[str]:
        """Names of all registered protocols, in registration order."""
        return list(self._protocols)

    def providers_of(self, service: str) -> List[ProtocolInfo]:
        """Protocols providing *service*, in registration order."""
        return [p for p in self._protocols.values() if service in p.provides]

    def default_provider(self, service: str) -> Optional[ProtocolInfo]:
        """The provider :meth:`create_module` instantiates for *service*."""
        name = self._default_provider.get(service)
        if name is not None:
            return self._protocols[name]
        providers = self.providers_of(service)
        return providers[0] if providers else None

    # ------------------------------------------------------------------ #
    # Algorithm 1, lines 22-28
    # ------------------------------------------------------------------ #
    def create_module(
        self,
        stack: Stack,
        protocol_name: str,
        bind: bool = True,
        factory_kwargs: Optional[dict] = None,
        _visiting: Optional[Set[str]] = None,
    ) -> Module:
        """Create a module of *protocol_name* on *stack*, recursively
        instantiating providers for any required service that is unbound.

        Returns the module created for *protocol_name* itself.

        Parameters
        ----------
        factory_kwargs:
            Extra keyword arguments for the *top-level* factory only
            (e.g. the replacement module passes the agreed incarnation
            tag); recursively created providers get none.

        Raises
        ------
        RequirementError
            If some (transitively) required service has no provider in
            the stack or the registry, or on a cyclic requirement chain
            that cannot be closed.
        """
        visiting = _visiting if _visiting is not None else set()
        if protocol_name in visiting:
            raise RequirementError(
                f"cyclic requirement chain through protocol {protocol_name!r}"
            )
        visiting.add(protocol_name)
        info = self.info(protocol_name)

        module = info.factory(stack, **(factory_kwargs or {}))
        stack.add_module(module, bind=bind)

        for service in module.requires:
            if stack.bindings.is_bound(service):
                continue
            # Prefer re-binding an existing (unbound) in-stack provider.
            existing = stack.modules_providing(service)
            if existing:
                stack.bind(service, existing[0])
                continue
            provider = self.default_provider(service)
            if provider is None:
                raise RequirementError(
                    f"stack {stack.stack_id}: no provider for required service "
                    f"{service!r} (needed by {protocol_name!r})"
                )
            self.create_module(stack, provider.name, bind=True, _visiting=visiting)

        visiting.discard(protocol_name)
        return module
