"""Kernel trace events (paper, Sections 2-3: the observable kernel actions).

Every structurally relevant action in a stack — adding or removing a
module, binding or unbinding a service, issuing / blocking / dispatching
a call, emitting a response, crashing — is recorded as a
:class:`TraceRecord`.  The correctness checkers of
:mod:`repro.dpu.properties` are pure functions over these traces, which is
what lets the property-based tests explore random schedules and then
*prove* facts about each concrete execution.

Records are **slotted**: the hot per-call fields (``method``,
``call_id``, ``event``) are real attributes instead of entries in a
per-record dict, so a full-trace run allocates one small object per
kernel action and nothing else.  Rare kinds (``module_added``,
``recover``) still carry their extras in the :attr:`TraceRecord.detail`
mapping; :meth:`TraceRecord.get` reads both transparently, so checkers
written against the old dict shape keep working unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Mapping, Optional

from ..sim.clock import Time

__all__ = ["TraceKind", "TraceRecord", "TraceEvent", "STRUCTURAL_TRACE_KINDS"]


class TraceKind(enum.Enum):
    """The kinds of kernel events a trace can contain."""

    #: A module object was added to a stack (not necessarily bound).
    MODULE_ADDED = "module_added"
    #: A module object was removed from a stack.
    MODULE_REMOVED = "module_removed"
    #: A module was bound to a service it provides.
    BIND = "bind"
    #: A module was unbound from a service.
    UNBIND = "unbind"
    #: A service call was issued by a caller module.
    CALL = "call"
    #: A call found no bound provider and was queued.
    CALL_BLOCKED = "call_blocked"
    #: A previously blocked call was released to a provider.
    CALL_UNBLOCKED = "call_unblocked"
    #: A call was handed to the bound provider's handler.
    CALL_DISPATCHED = "call_dispatched"
    #: A provider emitted a response event on a service.
    RESPONSE = "response"
    #: A response found no subscriber and was buffered.
    RESPONSE_BUFFERED = "response_buffered"
    #: The machine hosting the stack crashed.
    CRASH = "crash"
    #: The machine recovered and the stack restarted its modules.
    RECOVER = "recover"
    #: The restart protocol finished: every module re-armed in the new
    #: incarnation epoch (the kernel-level "re-join" marker scenarios
    #: without a GM use for recovery-liveness narrowing).
    RESTART_COMPLETE = "restart_complete"


#: The kinds the property checkers consume (everything except the
#: per-call/per-response firehose).  A recorder restricted to these keeps
#: the checkers' verdicts — and therefore campaign reports — **byte
#: identical** to a full trace, while full-stack runs stop paying one
#: record allocation per dispatched call; see
#: :func:`repro.scenarios.engine.run_scenario`.
STRUCTURAL_TRACE_KINDS = frozenset(TraceKind) - frozenset(
    (
        TraceKind.CALL,
        TraceKind.CALL_DISPATCHED,
        TraceKind.RESPONSE,
        TraceKind.RESPONSE_BUFFERED,
    )
)

#: Shared immutable empty mapping: the `detail` of every hot record.
_EMPTY_DETAIL: Mapping[str, Any] = MappingProxyType({})


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped kernel event.

    Attributes
    ----------
    time:
        Simulated instant of the event.
    kind:
        What happened.
    stack_id:
        Rank of the stack (machine) where it happened.
    service:
        Service involved, when applicable.
    module:
        Name of the module involved, when applicable.
    protocol:
        Protocol name of that module (identical modules on different
        stacks share it), when applicable.
    method:
        Call method name, for the ``call*`` kinds.
    call_id:
        Stack-unique call identifier ``"<stack>:<seq>"``, for the
        ``call*`` kinds.
    event:
        Response event name, for the ``response*`` kinds.
    detail:
        Free-form extras of the rare kinds (``provides``/``requires`` of
        ``module_added``, ``epoch`` of ``recover``, ...).  Hot records
        share one immutable empty mapping (the dataclass default is
        ``None``; :attr:`detail` reads as the shared empty map then).
    """

    time: Time
    kind: TraceKind
    stack_id: int
    service: Optional[str] = None
    module: Optional[str] = None
    protocol: Optional[str] = None
    method: Optional[str] = None
    call_id: Optional[str] = None
    event: Optional[str] = None
    _detail: Optional[Mapping[str, Any]] = None

    @property
    def detail(self) -> Mapping[str, Any]:
        """Free-form extras of the rare kinds (empty map for hot records)."""
        return self._detail if self._detail is not None else _EMPTY_DETAIL

    def get(self, key: str, default: Any = None) -> Any:
        """Field access by name, covering both slots and :attr:`detail`.

        Kept for compatibility with the pre-slotted record shape, where
        ``method``/``call_id``/``event`` lived in the detail dict.
        """
        if key == "method":
            return self.method if self.method is not None else default
        if key == "call_id":
            return self.call_id if self.call_id is not None else default
        if key == "event":
            return self.event if self.event is not None else default
        if self._detail is None:
            return default
        return self._detail.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"t={self.time:.6f}", self.kind.value, f"stack={self.stack_id}"]
        if self.service:
            bits.append(f"svc={self.service}")
        if self.module:
            bits.append(f"mod={self.module}")
        if self.method:
            bits.append(f"method={self.method}")
        if self.call_id:
            bits.append(f"call_id={self.call_id}")
        if self.event:
            bits.append(f"event={self.event}")
        if self._detail:
            bits.append(f"detail={dict(self._detail)!r}")
        return f"<TraceRecord {' '.join(bits)}>"


#: Backwards-compatible alias: the record type was called ``TraceEvent``
#: before the slotted rebuild; external checkers may still import it.
TraceEvent = TraceRecord
