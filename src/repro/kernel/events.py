"""Kernel trace events.

Every structurally relevant action in a stack — adding or removing a
module, binding or unbinding a service, issuing / blocking / dispatching
a call, emitting a response, crashing — is recorded as a
:class:`TraceEvent`.  The correctness checkers of
:mod:`repro.dpu.properties` are pure functions over these traces, which is
what lets the property-based tests explore random schedules and then
*prove* facts about each concrete execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..sim.clock import Time

__all__ = ["TraceKind", "TraceEvent"]


class TraceKind(enum.Enum):
    """The kinds of kernel events a trace can contain."""

    #: A module object was added to a stack (not necessarily bound).
    MODULE_ADDED = "module_added"
    #: A module object was removed from a stack.
    MODULE_REMOVED = "module_removed"
    #: A module was bound to a service it provides.
    BIND = "bind"
    #: A module was unbound from a service.
    UNBIND = "unbind"
    #: A service call was issued by a caller module.
    CALL = "call"
    #: A call found no bound provider and was queued.
    CALL_BLOCKED = "call_blocked"
    #: A previously blocked call was released to a provider.
    CALL_UNBLOCKED = "call_unblocked"
    #: A call was handed to the bound provider's handler.
    CALL_DISPATCHED = "call_dispatched"
    #: A provider emitted a response event on a service.
    RESPONSE = "response"
    #: A response found no subscriber and was buffered.
    RESPONSE_BUFFERED = "response_buffered"
    #: The machine hosting the stack crashed.
    CRASH = "crash"
    #: The machine recovered and the stack restarted its modules.
    RECOVER = "recover"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped kernel event.

    Attributes
    ----------
    time:
        Simulated instant of the event.
    kind:
        What happened.
    stack_id:
        Rank of the stack (machine) where it happened.
    service:
        Service involved, when applicable.
    module:
        Name of the module involved, when applicable.
    protocol:
        Protocol name of that module (identical modules on different
        stacks share it), when applicable.
    detail:
        Free-form extras: ``method``/``event`` names, call ids, etc.
    """

    time: Time
    kind: TraceKind
    stack_id: int
    service: Optional[str] = None
    module: Optional[str] = None
    protocol: Optional[str] = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Shortcut into :attr:`detail`."""
        return self.detail.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"t={self.time:.6f}", self.kind.value, f"stack={self.stack_id}"]
        if self.service:
            bits.append(f"svc={self.service}")
        if self.module:
            bits.append(f"mod={self.module}")
        if self.detail:
            bits.append(f"detail={dict(self.detail)!r}")
        return f"<TraceEvent {' '.join(bits)}>"
