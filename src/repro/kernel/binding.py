"""The binding table: which module currently provides each service.

The paper's model (Section 2): a module can be dynamically bound to a
service it provides and later unbound; unbinding does not remove it from
the stack; a stack may contain several modules providing the same
service, but **at most one is bound at a time**.  This class enforces
exactly that invariant and nothing more — blocking semantics for calls on
unbound services live in :class:`repro.kernel.stack.Stack`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import KernelError, ServiceAlreadyBoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Module

__all__ = ["BindingTable"]


class BindingTable:
    """Service → bound module map for one stack."""

    def __init__(self) -> None:
        self._bound: Dict[str, "Module"] = {}

    def bound(self, service: str) -> Optional["Module"]:
        """The module currently bound to *service*, or ``None``."""
        return self._bound.get(service)

    def is_bound(self, service: str) -> bool:
        """Whether some module is currently bound to *service*."""
        return service in self._bound

    def bind(self, service: str, module: "Module") -> None:
        """Bind *module* to *service*.

        Raises
        ------
        ServiceAlreadyBoundError
            If another module is already bound (unbind it first — the
            at-most-one-provider invariant is never silently rewritten).
        KernelError
            If *module* does not provide *service*.
        """
        if service not in module.provides:
            raise KernelError(
                f"module {module.name!r} does not provide service {service!r} "
                f"(provides {module.provides})"
            )
        current = self._bound.get(service)
        if current is not None:
            if current is module:
                return  # idempotent re-bind of the same module
            raise ServiceAlreadyBoundError(
                f"service {service!r} already bound to {current.name!r}; "
                f"unbind before binding {module.name!r}"
            )
        self._bound[service] = module

    def unbind(self, service: str) -> "Module":
        """Unbind and return the module bound to *service*.

        Raises :class:`KernelError` if the service is not bound.
        """
        module = self._bound.pop(service, None)
        if module is None:
            raise KernelError(f"service {service!r} is not bound")
        return module

    def services_of(self, module: "Module") -> List[str]:
        """All services *module* is currently bound to."""
        return [s for s, m in self._bound.items() if m is module]

    def as_dict(self) -> Dict[str, str]:
        """Snapshot ``{service: module-name}`` (for debugging/tests)."""
        return {s: m.name for s, m in self._bound.items()}

    def __len__(self) -> int:
        return len(self._bound)

    def __contains__(self, service: str) -> bool:
        return service in self._bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BindingTable({self.as_dict()!r})"
