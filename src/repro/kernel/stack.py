"""Protocol stacks.

A :class:`Stack` is the set of modules located on one machine (paper,
Section 2), plus:

* the **binding table** (at most one bound provider per service),
* the **blocked-call queue**: a call issued while its service is unbound
  is queued and released when some module is bound — this is precisely the
  *weak stack-well-formedness* mechanism the replacement algorithm relies
  on between ``unbind`` (Algorithm 1, line 12) and ``bind`` (line 13/14),
* the **response router**: responses are delivered to every module of the
  stack that requires the service and subscribed to the event; responses
  with no subscriber are buffered and flushed when a subscriber appears
  (paper: "if Pj is not currently in stack j, the invocation made by Q is
  completed when Pj is added to stack j"),
* CPU accounting: every dispatch occupies the machine's serial CPU for a
  configurable cost, which is what makes indirection measurably non-free
  (the paper's ≈5 % replacement-layer overhead).

All interactions are one-way events except *queries*, which are
synchronous zero-cost reads (failure-detector suspect lists and similar).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import KernelError, ModuleNotInStackError, UnknownServiceError
from ..sim.clock import Duration, us
from ..sim.process import Machine
from .binding import BindingTable
from .events import TraceKind
from .module import Module, NOT_MINE
from .trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator

__all__ = ["Stack", "DEFAULT_CALL_COST", "DEFAULT_RESPONSE_COST"]

#: Default CPU cost of dispatching one service call (~a method invocation
#: plus queueing in the Java framework the paper instruments).
DEFAULT_CALL_COST: Duration = us(10.0)
#: Default CPU cost of delivering one response event.
DEFAULT_RESPONSE_COST: Duration = us(10.0)

#: A queued blocked call: (call_id, caller name, method, args).
_BlockedCall = Tuple[str, str, str, tuple]
#: A buffered response: (event, args, provider name, protocol name).
_BufferedResponse = Tuple[str, tuple, str, str]


class Stack:
    """The modules, bindings and dispatch machinery of one machine."""

    def __init__(
        self,
        machine: Machine,
        trace: TraceRecorder,
        call_cost: Duration = DEFAULT_CALL_COST,
        response_cost: Duration = DEFAULT_RESPONSE_COST,
        max_buffered_responses: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.trace = trace
        self.call_cost = call_cost
        self.response_cost = response_cost
        #: Per-service cap on the unclaimed-response buffer (None =
        #: unbounded).  Long-running systems that retire old protocol
        #: modules need the cap: frames of a retired incarnation are
        #: never claimed again.  Overflow drops the oldest entry.
        self.max_buffered_responses = max_buffered_responses
        self.buffered_responses_dropped = 0
        self.modules: Dict[str, Module] = {}
        self.bindings = BindingTable()
        self._blocked_calls: Dict[str, Deque[_BlockedCall]] = {}
        self._buffered_responses: Dict[str, Deque[_BufferedResponse]] = {}
        self._call_seq = 0
        self._module_ordinal = 0
        self._blocked_time_total: Duration = 0.0
        self._blocked_since: Dict[str, float] = {}  # call_id -> block instant
        self._draining: Dict[str, bool] = {}  # service -> drain task pending
        machine.on_crash.append(self._on_machine_crash)
        machine.on_recover.append(self._on_machine_recover)

    # ------------------------------------------------------------------ #
    # Identity / convenience
    # ------------------------------------------------------------------ #
    @property
    def stack_id(self) -> int:
        """Rank of this stack (= machine id = network address)."""
        return self.machine.machine_id

    @property
    def sim(self) -> "Simulator":
        return self.machine.sim

    @property
    def crashed(self) -> bool:
        return self.machine.crashed

    def module(self, name: str) -> Module:
        """Look up a module by instance name."""
        try:
            return self.modules[name]
        except KeyError:
            raise ModuleNotInStackError(
                f"stack {self.stack_id}: no module named {name!r}"
            ) from None

    def fresh_module_name(self, protocol: str) -> str:
        """A stack-unique instance name for a new module of *protocol*.

        Replacing a protocol by itself (the paper's Section 6 experiment)
        creates a second module of the same protocol in the same stack,
        so instance names carry an incarnation ordinal.
        """
        self._module_ordinal += 1
        return f"{protocol}#{self._module_ordinal}@{self.stack_id}"

    def modules_providing(self, service: str) -> List[Module]:
        """All modules of this stack that provide *service* (bound or not)."""
        return [m for m in self.modules.values() if service in m.provides]

    def bound_module(self, service: str) -> Optional[Module]:
        """The module currently bound to *service*, or ``None``."""
        return self.bindings.bound(service)

    # ------------------------------------------------------------------ #
    # Module lifecycle
    # ------------------------------------------------------------------ #
    def add_module(self, module: Module, bind: bool = True) -> Module:
        """Add *module* to the stack and optionally bind all its services.

        Binding only succeeds for services with no current provider; pass
        ``bind=False`` to add a dormant alternative implementation (the
        paper's model explicitly allows several providers per service as
        long as at most one is bound).
        """
        if module.stack is not self:
            raise KernelError(
                f"module {module.name!r} was created for stack "
                f"{module.stack.stack_id}, not {self.stack_id}"
            )
        if module.name in self.modules:
            raise KernelError(
                f"stack {self.stack_id}: duplicate module name {module.name!r}"
            )
        self.modules[module.name] = module
        self.trace.record(
            self.sim.now,
            TraceKind.MODULE_ADDED,
            self.stack_id,
            module=module.name,
            protocol=module.protocol,
            provides=module.provides,
            requires=module.requires,
        )
        module.started = True
        module.on_start()
        if bind:
            for service in module.provides:
                self.bind(service, module)
        self._flush_buffered_responses(module)
        return module

    def remove_module(self, name: str) -> Module:
        """Remove a module (auto-unbinding it from any bound service)."""
        module = self.module(name)
        for service in self.bindings.services_of(module):
            self.unbind(service)
        del self.modules[name]
        self.trace.record(
            self.sim.now,
            TraceKind.MODULE_REMOVED,
            self.stack_id,
            module=module.name,
            protocol=module.protocol,
        )
        module.stopped = True
        module.on_stop()
        return module

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(self, service: str, module: Module) -> None:
        """Bind *module* to *service* and release any blocked calls."""
        if module.name not in self.modules:
            raise ModuleNotInStackError(
                f"stack {self.stack_id}: cannot bind {module.name!r}; not in stack"
            )
        self.bindings.bind(service, module)
        self.trace.record(
            self.sim.now,
            TraceKind.BIND,
            self.stack_id,
            service=service,
            module=module.name,
            protocol=module.protocol,
        )
        self._release_blocked_calls(service)

    def unbind(self, service: str) -> Module:
        """Unbind whatever module is bound to *service*."""
        module = self.bindings.unbind(service)
        self.trace.record(
            self.sim.now,
            TraceKind.UNBIND,
            self.stack_id,
            service=service,
            module=module.name,
            protocol=module.protocol,
        )
        return module

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def issue_call(
        self,
        caller: Optional[Module],
        service: str,
        method: str,
        args: tuple,
        cost: Optional[Duration] = None,
    ) -> None:
        """Issue a one-way service call.

        The call occupies the CPU for *cost* seconds (default
        :attr:`call_cost`), then is dispatched to the module bound to the
        service *at dispatch time*.  If none is bound, it joins the
        blocked-call queue and is released by the next :meth:`bind`.
        """
        if self.crashed:
            return
        self._call_seq += 1
        call_id = f"{self.stack_id}:{self._call_seq}"
        caller_name = caller.name if caller is not None else "<external>"
        self.trace.record(
            self.sim.now,
            TraceKind.CALL,
            self.stack_id,
            service=service,
            module=caller_name,
            method=method,
            call_id=call_id,
        )
        actual_cost = self.call_cost if cost is None else cost
        self.machine.execute(actual_cost, self._dispatch_call, call_id, caller_name, service, method, args)

    def _dispatch_call(
        self, call_id: str, caller_name: str, service: str, method: str, args: tuple
    ) -> None:
        provider = self.bindings.bound(service)
        # Join the queue not only while the service is unbound, but also
        # while an older backlog is still draining after a bind at this
        # same instant — otherwise an in-flight call whose CPU completion
        # lands just after the bind overtakes calls issued before it.
        if provider is None or self._blocked_calls.get(service):
            queue = self._blocked_calls.setdefault(service, deque())
            queue.append((call_id, caller_name, method, args))
            self._blocked_since[call_id] = self.sim.now
            self.trace.record(
                self.sim.now,
                TraceKind.CALL_BLOCKED,
                self.stack_id,
                service=service,
                module=caller_name,
                method=method,
                call_id=call_id,
            )
            if provider is not None:
                # The drain chain scheduled by the bind stops at the queue
                # it saw; make sure this straggler is drained too.
                self._release_blocked_calls(service)
            return
        self._invoke_provider(provider, call_id, service, method, args)

    def _invoke_provider(
        self, provider: Module, call_id: str, service: str, method: str, args: tuple
    ) -> None:
        handler = provider.call_handler(service, method)
        if handler is None:
            raise KernelError(
                f"stack {self.stack_id}: module {provider.name!r} bound to "
                f"{service!r} has no handler for call {method!r}"
            )
        self.trace.record(
            self.sim.now,
            TraceKind.CALL_DISPATCHED,
            self.stack_id,
            service=service,
            module=provider.name,
            protocol=provider.protocol,
            method=method,
            call_id=call_id,
        )
        handler(*args)

    def _release_blocked_calls(self, service: str) -> None:
        """Start the FIFO drain of *service*'s backlog (idempotent).

        The backlog stays in the queue and drains one call per 0-cost CPU
        task, so :meth:`_dispatch_call` can see that older calls are still
        pending and keep issue order; a racing unbind simply pauses the
        drain until the next bind.
        """
        if self._blocked_calls.get(service) and not self._draining.get(service):
            self._draining[service] = True
            self.machine.execute(0.0, self._drain_blocked, service)

    def _drain_blocked(self, service: str) -> None:
        self._draining[service] = False
        queue = self._blocked_calls.get(service)
        if not queue:
            return
        provider = self.bindings.bound(service)
        if provider is None:
            return  # unbound again; the next bind restarts the drain
        call_id, caller_name, method, args = queue.popleft()
        blocked_at = self._blocked_since.pop(call_id, None)
        if blocked_at is not None:
            self._blocked_time_total += self.sim.now - blocked_at
        self.trace.record(
            self.sim.now,
            TraceKind.CALL_UNBLOCKED,
            self.stack_id,
            service=service,
            module=caller_name,
            method=method,
            call_id=call_id,
        )
        if queue:
            # Re-arm before invoking, so the rest of the backlog keeps
            # its place ahead of any same-instant calls the handler makes.
            self._draining[service] = True
            self.machine.execute(0.0, self._drain_blocked, service)
        self._invoke_provider(provider, call_id, service, method, args)

    def blocked_call_count(self, service: Optional[str] = None) -> int:
        """Number of calls currently blocked (on *service*, or overall)."""
        if service is not None:
            return len(self._blocked_calls.get(service, ()))
        return sum(len(q) for q in self._blocked_calls.values())

    @property
    def blocked_time_total(self) -> Duration:
        """Cumulative seconds calls spent blocked on unbound services."""
        return self._blocked_time_total

    # ------------------------------------------------------------------ #
    # Queries (synchronous reads)
    # ------------------------------------------------------------------ #
    def query(self, service: str, query: str, *args: Any) -> Any:
        """Synchronously query the module bound to *service*.

        Queries model shared-memory reads of a provider's local data (the
        FD suspect list being the canonical example); they cost no
        simulated time and cannot block, so querying an unbound service
        is a structural error.
        """
        provider = self.bindings.bound(service)
        if provider is None:
            raise UnknownServiceError(
                f"stack {self.stack_id}: query {query!r} on unbound service {service!r}"
            )
        handler = provider.query_handler(service, query)
        if handler is None:
            raise KernelError(
                f"stack {self.stack_id}: module {provider.name!r} has no query "
                f"{query!r} on service {service!r}"
            )
        return handler(*args)

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    def issue_response(
        self,
        provider: Module,
        service: str,
        event: str,
        args: tuple,
        cost: Optional[Duration] = None,
    ) -> None:
        """Emit response *event* of *service* to this stack's subscribers.

        Deliberately **not** gated on the binding table: an unbound module
        may still respond (paper, Section 2).
        """
        if self.crashed:
            return
        if service not in provider.provides:
            raise KernelError(
                f"stack {self.stack_id}: module {provider.name!r} cannot respond "
                f"on service {service!r} it does not provide"
            )
        self.trace.record(
            self.sim.now,
            TraceKind.RESPONSE,
            self.stack_id,
            service=service,
            module=provider.name,
            protocol=provider.protocol,
            event=event,
        )
        actual_cost = self.response_cost if cost is None else cost
        self.machine.execute(
            actual_cost, self._deliver_response, service, event, args,
            provider.name, provider.protocol,
        )

    def _deliver_response(
        self, service: str, event: str, args: tuple,
        provider_name: str, provider_protocol: str,
    ) -> None:
        handlers = [
            m.response_handler(service, event)
            for m in self.modules.values()
            if service in m.requires
        ]
        handlers = [h for h in handlers if h is not None]
        claimed = False
        for handler in handlers:
            if handler(*args) is not NOT_MINE:
                claimed = True
        if not claimed:
            # Nobody in the stack owns this response (no subscriber at
            # all, or every subscriber disclaimed the frame): keep it
            # until a matching module is added (paper, Section 2).
            queue = self._buffered_responses.setdefault(service, deque())
            if (
                self.max_buffered_responses is not None
                and len(queue) >= self.max_buffered_responses
            ):
                queue.popleft()
                self.buffered_responses_dropped += 1
            queue.append((event, args, provider_name, provider_protocol))
            self.trace.record(
                self.sim.now,
                TraceKind.RESPONSE_BUFFERED,
                self.stack_id,
                service=service,
                module=provider_name,
                protocol=provider_protocol,
                event=event,
            )

    def _flush_buffered_responses(self, new_module: Module) -> None:
        """Deliver responses that were waiting for a subscriber like *new_module*."""
        for service in new_module.requires:
            buffered = self._buffered_responses.get(service)
            if not buffered:
                continue
            deliverable: List[_BufferedResponse] = []
            remaining: Deque[_BufferedResponse] = deque()
            for item in buffered:
                event = item[0]
                if new_module.response_handler(service, event) is not None:
                    deliverable.append(item)
                else:
                    remaining.append(item)
            self._buffered_responses[service] = remaining
            for event, args, provider_name, provider_protocol in deliverable:
                self.machine.execute(
                    0.0, self._deliver_response, service, event, args,
                    provider_name, provider_protocol,
                )

    def buffered_response_count(self, service: Optional[str] = None) -> int:
        """Number of responses buffered awaiting a subscriber."""
        if service is not None:
            return len(self._buffered_responses.get(service, ()))
        return sum(len(q) for q in self._buffered_responses.values())

    # ------------------------------------------------------------------ #
    # Failure
    # ------------------------------------------------------------------ #
    def _on_machine_crash(self, time: float) -> None:
        # Pending drain tasks died with the CPU (epoch guard); clear the
        # flags so a post-recovery bind can restart the drains.
        self._draining.clear()
        self.trace.record(time, TraceKind.CRASH, self.stack_id)

    def _on_machine_recover(self, time: float) -> None:
        self.trace.record(
            time, TraceKind.RECOVER, self.stack_id, epoch=self.machine.epoch
        )
        self.restart()

    def restart(self) -> None:
        """Re-arm the stack in the machine's new incarnation epoch.

        Every timer armed before the crash belongs to the dead epoch and
        will never fire, so a recovered machine would otherwise come back
        as a passive zombie: state intact, heartbeat/retransmission/load
        wheels all stopped.  The restart path gives each module its
        :meth:`~repro.kernel.module.Module.on_restart` hook (in stack
        order, bottom-most first — transports re-arm before the
        protocols that ride them) and then restarts the blocked-call
        drains whose 0-cost CPU tasks died with the old incarnation.
        """
        for module in list(self.modules.values()):
            module.on_restart()
        for service in [s for s, queue in self._blocked_calls.items() if queue]:
            self._release_blocked_calls(service)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Stack {self.stack_id} modules={list(self.modules)} "
            f"bound={self.bindings.as_dict()}>"
        )
