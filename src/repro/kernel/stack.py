"""Protocol stacks (paper, Section 2): dispatch machinery of one machine.

A :class:`Stack` is the set of modules located on one machine, plus:

* the **binding table** (at most one bound provider per service),
* the **blocked-call queue**: a call issued while its service is unbound
  is queued and released when some module is bound — this is precisely the
  *weak stack-well-formedness* mechanism the replacement algorithm relies
  on between ``unbind`` (Algorithm 1, line 12) and ``bind`` (line 13/14),
* the **response router**: responses are delivered to every module of the
  stack that requires the service and subscribed to the event; responses
  with no subscriber are buffered and flushed when a subscriber appears
  (paper: "if Pj is not currently in stack j, the invocation made by Q is
  completed when Pj is added to stack j"),
* CPU accounting: every dispatch occupies the machine's serial CPU for a
  configurable cost, which is what makes indirection measurably non-free
  (the paper's ≈5 % replacement-layer overhead).

All interactions are one-way events except *queries*, which are
synchronous zero-cost reads (failure-detector suspect lists and similar).

Hot-path design
---------------
``issue_call`` → ``_dispatch_call`` is the dominant per-message cost of a
full-stack run (every send, deliver, heartbeat and consensus round goes
through it), so the common case — bound service, no blocked-call backlog
— takes a **fast path**:

* the ``(service, method) -> (provider, handler)`` resolution is served
  from :attr:`_dispatch_cache`, one dict probe instead of binding-table +
  handler-table hops; any ``bind``/``unbind`` invalidates it;
* queries get the same treatment: ``(service, query) -> handler`` is
  served from :attr:`_query_cache` (consensus rounds hammer the FD's
  ``suspects`` query), invalidated by ``bind``/``unbind``/re-export;
* a single :attr:`_blocked_total` counter guards the backlog check — only
  while some service has queued calls (i.e. during a replacement window)
  does dispatch fall back to the per-service slow path;
* trace recording is **opt-out**: per-kind flags cached from the
  recorder's ``keep`` filter plus a live ``enabled`` check mean a
  trace-off call never packs record kwargs (``Stack(machine)`` and
  ``Stack(machine, trace=False)`` use the shared
  :data:`~repro.kernel.trace.NULL_TRACE` sink);
* call ids materialise as strings lazily, only when a record that carries
  them is actually kept;
* response fan-out is served from a cached per ``(service, event)``
  subscriber list, invalidated when the module set changes.

Blocked-call backlogs drain in **batches**: one 0-cost CPU task drains
every queued call while no other simulation event is pending at the same
instant and the CPU is idle, falling back to the one-task-per-call chain
exactly when an equal-time event exists or a released handler occupied
the CPU — which keeps the observable schedule (and hence same-seed
traces) identical to the unbatched kernel while collapsing the common
k-task drain to a single task.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from ..errors import KernelError, ModuleNotInStackError, UnknownServiceError
from ..runtime.api import NodeBackend
from ..sim.clock import Duration, us
from .binding import BindingTable
from .events import TraceKind
from .module import Module, NOT_MINE
from .trace import NULL_TRACE, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.api import Scheduler

__all__ = ["Stack", "DEFAULT_CALL_COST", "DEFAULT_RESPONSE_COST"]

#: Default CPU cost of dispatching one service call (~a method invocation
#: plus queueing in the Java framework the paper instruments).
DEFAULT_CALL_COST: Duration = us(10.0)
#: Default CPU cost of delivering one response event.
DEFAULT_RESPONSE_COST: Duration = us(10.0)

#: A queued blocked call: (call seq, caller name, method, args).
_BlockedCall = Tuple[int, str, str, tuple]
#: A buffered response: (event, args, provider name, protocol name).
_BufferedResponse = Tuple[str, tuple, str, str]


class Stack:
    """The modules, bindings and dispatch machinery of one machine.

    Parameters
    ----------
    machine:
        The simulated host this stack runs on.
    trace:
        Where kernel events go: a shared
        :class:`~repro.kernel.trace.TraceRecorder` (what
        :class:`~repro.kernel.system.System` passes), ``True`` for a
        fresh private recorder, or ``None``/``False`` for the shared
        always-off :data:`~repro.kernel.trace.NULL_TRACE` sink
        (benchmark stacks pay no per-call record cost).
    call_cost / response_cost:
        Default CPU cost of one call / response dispatch.
    max_buffered_responses:
        Per-service cap on the unclaimed-response buffer (``None`` =
        unbounded).  Long-running systems that retire old protocol
        modules need the cap: frames of a retired incarnation are never
        claimed again.  Overflow drops the oldest entry.
    """

    __slots__ = (
        "machine",
        "backend",
        "restart_completed_at",
        "restart_completed_epoch",
        "trace",
        "call_cost",
        "response_cost",
        "max_buffered_responses",
        "buffered_responses_dropped",
        "modules",
        "bindings",
        "_sim",
        "_blocked_calls",
        "_blocked_total",
        "_responses_issued",
        "_buffered_responses",
        "_call_seq",
        "_module_ordinal",
        "_blocked_time_total",
        "_blocked_since",
        "_draining",
        "_dispatch_cache",
        "_query_cache",
        "_response_cache",
        "_trace_call",
        "_trace_dispatch",
        "_trace_blocked",
        "_trace_unblocked",
        "_trace_response",
        "_trace_response_buffered",
    )

    def __init__(
        self,
        machine: NodeBackend,
        trace: Union[TraceRecorder, bool, None] = None,
        call_cost: Duration = DEFAULT_CALL_COST,
        response_cost: Duration = DEFAULT_RESPONSE_COST,
        max_buffered_responses: Optional[int] = None,
    ) -> None:
        self.machine = machine
        #: The runtime seam modules reach timers through (``Module.set_timer``
        #: routes here).  Today the backend *is* the machine — the alias
        #: exists so kernel and module code never name the concrete class.
        self.backend: NodeBackend = machine
        #: Instant / incarnation epoch of the last *completed* restart
        #: protocol (``None`` until the stack has restarted once).  The
        #: kernel-level "re-join" marker: scenarios without a group
        #: membership module use it to narrow recovery-liveness exemptions.
        self.restart_completed_at: Optional[float] = None
        self.restart_completed_epoch: Optional[int] = None
        if trace is None or trace is False:
            trace = NULL_TRACE
        elif trace is True:
            trace = TraceRecorder()
        self.trace = trace
        self.call_cost = call_cost
        self.response_cost = response_cost
        self.max_buffered_responses = max_buffered_responses
        self.buffered_responses_dropped = 0
        self.modules: Dict[str, Module] = {}
        self.bindings = BindingTable()
        self._sim = machine.sim
        self._blocked_calls: Dict[str, Deque[_BlockedCall]] = {}
        #: Total queued blocked calls across services: the fast-path guard.
        self._blocked_total = 0
        self._buffered_responses: Dict[str, Deque[_BufferedResponse]] = {}
        self._call_seq = 0
        self._responses_issued = 0
        self._module_ordinal = 0
        self._blocked_time_total: Duration = 0.0
        self._blocked_since: Dict[int, float] = {}  # call seq -> block instant
        self._draining: Dict[str, bool] = {}  # service -> drain task pending
        #: (service, method) -> (bound provider, handler): the call fast path.
        self._dispatch_cache: Dict[Tuple[str, str], Tuple[Module, Callable[..., None]]] = {}
        #: (service, query) -> bound provider's handler: the query fast
        #: path (no provider element — queries record no trace, so only
        #: the handler is ever needed).
        self._query_cache: Dict[Tuple[str, str], Callable[..., Any]] = {}
        #: (service, event) -> subscribed handlers: the response fast path.
        self._response_cache: Dict[Tuple[str, str], List[Callable[..., Any]]] = {}
        # Per-kind keep-filter flags, paired with a live `trace.enabled`
        # check on use (the keep filter is fixed at recorder construction).
        wants = trace.wants
        self._trace_call = wants(TraceKind.CALL)
        self._trace_dispatch = wants(TraceKind.CALL_DISPATCHED)
        self._trace_blocked = wants(TraceKind.CALL_BLOCKED)
        self._trace_unblocked = wants(TraceKind.CALL_UNBLOCKED)
        self._trace_response = wants(TraceKind.RESPONSE)
        self._trace_response_buffered = wants(TraceKind.RESPONSE_BUFFERED)
        machine.on_crash.append(self._on_machine_crash)
        machine.on_recover.append(self._on_machine_recover)

    # ------------------------------------------------------------------ #
    # Identity / convenience
    # ------------------------------------------------------------------ #
    @property
    def stack_id(self) -> int:
        """Rank of this stack (= machine id = network address)."""
        return self.machine.machine_id

    @property
    def sim(self) -> "Scheduler":
        """The scheduler the hosting node runs on (the simulator in the
        discrete-event backend, a wall-clock scheduler in realtime)."""
        return self._sim

    @property
    def crashed(self) -> bool:
        """Whether the hosting machine is currently crashed."""
        return self.machine.crashed

    def module(self, name: str) -> Module:
        """Look up a module by instance name."""
        try:
            return self.modules[name]
        except KeyError:
            raise ModuleNotInStackError(
                f"stack {self.stack_id}: no module named {name!r}"
            ) from None

    def fresh_module_name(self, protocol: str) -> str:
        """A stack-unique instance name for a new module of *protocol*.

        Replacing a protocol by itself (the paper's Section 6 experiment)
        creates a second module of the same protocol in the same stack,
        so instance names carry an incarnation ordinal.
        """
        self._module_ordinal += 1
        return f"{protocol}#{self._module_ordinal}@{self.stack_id}"

    def modules_providing(self, service: str) -> List[Module]:
        """All modules of this stack that provide *service* (bound or not)."""
        return [m for m in self.modules.values() if service in m.provides]

    def bound_module(self, service: str) -> Optional[Module]:
        """The module currently bound to *service*, or ``None``."""
        return self.bindings.bound(service)

    # ------------------------------------------------------------------ #
    # Module lifecycle
    # ------------------------------------------------------------------ #
    def add_module(self, module: Module, bind: bool = True) -> Module:
        """Add *module* to the stack and optionally bind all its services.

        Binding only succeeds for services with no current provider; pass
        ``bind=False`` to add a dormant alternative implementation (the
        paper's model explicitly allows several providers per service as
        long as at most one is bound).
        """
        if module.stack is not self:
            raise KernelError(
                f"module {module.name!r} was created for stack "
                f"{module.stack.stack_id}, not {self.stack_id}"
            )
        if module.name in self.modules:
            raise KernelError(
                f"stack {self.stack_id}: duplicate module name {module.name!r}"
            )
        self.modules[module.name] = module
        self._response_cache.clear()
        self.trace.record(
            self._sim.now,
            TraceKind.MODULE_ADDED,
            self.stack_id,
            module=module.name,
            protocol=module.protocol,
            provides=module.provides,
            requires=module.requires,
        )
        module.started = True
        module.on_start()
        if bind:
            for service in module.provides:
                self.bind(service, module)
        self._flush_buffered_responses(module)
        return module

    def remove_module(self, name: str) -> Module:
        """Remove a module (auto-unbinding it from any bound service)."""
        module = self.module(name)
        for service in self.bindings.services_of(module):
            self.unbind(service)
        del self.modules[name]
        self._response_cache.clear()
        self.trace.record_fast(
            self._sim.now,
            TraceKind.MODULE_REMOVED,
            self.stack_id,
            module=module.name,
            protocol=module.protocol,
        )
        module.stopped = True
        module.on_stop()
        return module

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(self, service: str, module: Module) -> None:
        """Bind *module* to *service* and release any blocked calls."""
        if module.name not in self.modules:
            raise ModuleNotInStackError(
                f"stack {self.stack_id}: cannot bind {module.name!r}; not in stack"
            )
        self.bindings.bind(service, module)
        self._dispatch_cache.clear()
        self._query_cache.clear()
        self.trace.record_fast(
            self._sim.now,
            TraceKind.BIND,
            self.stack_id,
            service=service,
            module=module.name,
            protocol=module.protocol,
        )
        self._release_blocked_calls(service)

    def unbind(self, service: str) -> Module:
        """Unbind whatever module is bound to *service*."""
        module = self.bindings.unbind(service)
        self._dispatch_cache.clear()
        self._query_cache.clear()
        self.trace.record_fast(
            self._sim.now,
            TraceKind.UNBIND,
            self.stack_id,
            service=service,
            module=module.name,
            protocol=module.protocol,
        )
        return module

    def _invalidate_handler(self, service: str, method: str) -> None:
        """Drop one cached call resolution (a handler was re-exported)."""
        self._dispatch_cache.pop((service, method), None)

    def _invalidate_query(self, service: str, query: str) -> None:
        """Drop one cached query resolution (a handler was re-exported)."""
        self._query_cache.pop((service, query), None)

    def _invalidate_subscribers(self, service: str, event: str) -> None:
        """Drop one cached response fan-out (a subscription was added)."""
        self._response_cache.pop((service, event), None)

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def issue_call(
        self,
        caller: Optional[Module],
        service: str,
        method: str,
        args: tuple,
        cost: Optional[Duration] = None,
    ) -> None:
        """Issue a one-way service call.

        The call occupies the CPU for *cost* seconds (default
        :attr:`call_cost`), then is dispatched to the module bound to the
        service *at dispatch time*.  If none is bound, it joins the
        blocked-call queue and is released by the next :meth:`bind`.
        """
        if cost is not None and cost < 0:
            raise KernelError(f"negative call cost {cost!r}")
        machine = self.machine
        # Hot path reads Machine internals (_crashed_at here, _busy_until
        # in the drain) instead of the crashed/busy_until properties: one
        # attribute load per call.  Kernel and machine are co-designed;
        # keep these reads in sync with the property definitions.
        if machine._crashed_at is not None:
            return
        seq = self._call_seq + 1
        self._call_seq = seq
        trace = self.trace
        if self._trace_call and trace.enabled:
            trace.record_fast(
                self._sim.now,
                TraceKind.CALL,
                self.stack_id,
                service=service,
                module=caller.name if caller is not None else "<external>",
                method=method,
                call_id=f"{self.stack_id}:{seq}",
            )
        machine.execute_packed(
            self.call_cost if cost is None else cost,
            self._dispatch_call, (seq, caller, service, method, args),
        )

    def _dispatch_call(
        self, seq: int, caller: Optional[Module], service: str, method: str, args: tuple
    ) -> None:
        """CPU-completion half of a call: hand it to the bound provider.

        Fast path: no backlog anywhere on the stack and a warm
        ``(service, method)`` cache entry — one dict probe, optional
        trace record, handler invocation.
        """
        if not self._blocked_total:
            entry = self._dispatch_cache.get((service, method))
            if entry is not None:
                trace = self.trace
                if self._trace_dispatch and trace.enabled:
                    provider = entry[0]
                    trace.record_fast(
                        self._sim.now,
                        TraceKind.CALL_DISPATCHED,
                        self.stack_id,
                        service=service,
                        module=provider.name,
                        protocol=provider.protocol,
                        method=method,
                        call_id=f"{self.stack_id}:{seq}",
                    )
                entry[1](*args)
                return
        provider = self.bindings.bound(service)
        # Join the queue not only while the service is unbound, but also
        # while an older backlog is still draining after a bind at this
        # same instant — otherwise an in-flight call whose CPU completion
        # lands just after the bind overtakes calls issued before it.
        if provider is None or self._blocked_calls.get(service):
            caller_name = caller.name if caller is not None else "<external>"
            queue = self._blocked_calls.setdefault(service, deque())
            queue.append((seq, caller_name, method, args))
            self._blocked_total += 1
            self._blocked_since[seq] = self._sim.now
            trace = self.trace
            if self._trace_blocked and trace.enabled:
                trace.record_fast(
                    self._sim.now,
                    TraceKind.CALL_BLOCKED,
                    self.stack_id,
                    service=service,
                    module=caller_name,
                    method=method,
                    call_id=f"{self.stack_id}:{seq}",
                )
            if provider is not None:
                # The drain chain scheduled by the bind stops at the queue
                # it saw; make sure this straggler is drained too.
                self._release_blocked_calls(service)
            return
        self._invoke_provider(provider, seq, service, method, args)

    def _invoke_provider(
        self, provider: Module, seq: int, service: str, method: str, args: tuple
    ) -> None:
        """Resolve (and cache) the provider's handler, record, invoke."""
        key = (service, method)
        entry = self._dispatch_cache.get(key)
        if entry is not None and entry[0] is provider:
            handler = entry[1]
        else:
            handler = provider.call_handler(service, method)
            if handler is None:
                raise KernelError(
                    f"stack {self.stack_id}: module {provider.name!r} bound to "
                    f"{service!r} has no handler for call {method!r}"
                )
            self._dispatch_cache[key] = (provider, handler)
        trace = self.trace
        if self._trace_dispatch and trace.enabled:
            trace.record_fast(
                self._sim.now,
                TraceKind.CALL_DISPATCHED,
                self.stack_id,
                service=service,
                module=provider.name,
                protocol=provider.protocol,
                method=method,
                call_id=f"{self.stack_id}:{seq}",
            )
        handler(*args)

    def _release_blocked_calls(self, service: str) -> None:
        """Start the drain of *service*'s backlog (idempotent).

        The backlog stays in the queue and drains in FIFO issue order, so
        :meth:`_dispatch_call` can see that older calls are still pending
        and keep issue order; a racing unbind simply pauses the drain
        until the next bind.
        """
        if self._blocked_calls.get(service) and not self._draining.get(service):
            self._draining[service] = True
            self.machine.execute(0.0, self._drain_blocked, service)

    def _drain_blocked(self, service: str) -> None:
        """One drain task: release queued calls of *service* in FIFO order.

        Batches the whole backlog into this task while the event heap has
        nothing else pending at the current instant and the CPU is idle;
        the moment an equal-time event exists (a racing dispatch
        completion, work a released handler scheduled at zero delay) or a
        released handler occupies the CPU (the chained drain task would
        only start at ``busy_until``), it re-arms the one-call-per-task
        chain *before* invoking — the exact schedule of the unbatched
        kernel, so same-seed traces are unchanged.
        """
        self._draining[service] = False
        queue = self._blocked_calls.get(service)
        machine = self.machine
        sim = self._sim
        epoch = machine.epoch
        trace = self.trace
        while queue:
            provider = self.bindings.bound(service)
            if provider is None:
                return  # unbound again; the next bind restarts the drain
            seq, caller_name, method, args = queue.popleft()
            self._blocked_total -= 1
            blocked_at = self._blocked_since.pop(seq, None)
            if blocked_at is not None:
                self._blocked_time_total += sim.now - blocked_at
            if self._trace_unblocked and trace.enabled:
                trace.record_fast(
                    sim.now,
                    TraceKind.CALL_UNBLOCKED,
                    self.stack_id,
                    service=service,
                    module=caller_name,
                    method=method,
                    call_id=f"{self.stack_id}:{seq}",
                )
            if queue:
                peek = sim.peek_time()
                if (peek is not None and peek <= sim.now) or machine._busy_until > sim.now:
                    # An equal-time event is pending, or a released
                    # handler occupied the CPU (the chained drain would
                    # start only at busy_until): re-arm the chain before
                    # invoking — the exact unbatched schedule — so the
                    # rest of the backlog keeps its place and its timing.
                    self._draining[service] = True
                    machine.execute(0.0, self._drain_blocked, service)
                    self._invoke_provider(provider, seq, service, method, args)
                    return
            self._invoke_provider(provider, seq, service, method, args)
            if machine.crashed or machine.epoch != epoch:
                # The handler crashed (or re-incarnated) the machine: the
                # rest of the backlog waits for the restart protocol.
                return

    @property
    def calls_issued(self) -> int:
        """Total service calls issued on this stack since construction."""
        return self._call_seq

    @property
    def responses_issued(self) -> int:
        """Total response events issued on this stack since construction."""
        return self._responses_issued

    def blocked_call_count(self, service: Optional[str] = None) -> int:
        """Number of calls currently blocked (on *service*, or overall)."""
        if service is not None:
            return len(self._blocked_calls.get(service, ()))
        return self._blocked_total

    @property
    def blocked_time_total(self) -> Duration:
        """Cumulative seconds calls spent blocked on unbound services."""
        return self._blocked_time_total

    # ------------------------------------------------------------------ #
    # Queries (synchronous reads)
    # ------------------------------------------------------------------ #
    def query(self, service: str, query: str, *args: Any) -> Any:
        """Synchronously query the module bound to *service*.

        Queries model shared-memory reads of a provider's local data (the
        FD suspect list being the canonical example); they cost no
        simulated time and cannot block, so querying an unbound service
        is a structural error.

        Fast path: the ``(service, query)`` resolution is served from
        :attr:`_query_cache` — one dict probe instead of binding-table +
        handler-table hops; ``bind``/``unbind`` clear the cache and a
        re-export invalidates its entry.  Consensus rounds ask the FD for
        suspects on every round, which makes this a measurable share of a
        full-stack run.
        """
        cached = self._query_cache.get((service, query))
        if cached is not None:
            return cached(*args)
        provider = self.bindings.bound(service)
        if provider is None:
            raise UnknownServiceError(
                f"stack {self.stack_id}: query {query!r} on unbound service {service!r}"
            )
        handler = provider.query_handler(service, query)
        if handler is None:
            raise KernelError(
                f"stack {self.stack_id}: module {provider.name!r} has no query "
                f"{query!r} on service {service!r}"
            )
        self._query_cache[(service, query)] = handler
        return handler(*args)

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    def issue_response(
        self,
        provider: Module,
        service: str,
        event: str,
        args: tuple,
        cost: Optional[Duration] = None,
    ) -> None:
        """Emit response *event* of *service* to this stack's subscribers.

        Deliberately **not** gated on the binding table: an unbound module
        may still respond (paper, Section 2).
        """
        if cost is not None and cost < 0:
            raise KernelError(f"negative response cost {cost!r}")
        machine = self.machine
        if machine._crashed_at is not None:
            return
        if service not in provider.provides:
            raise KernelError(
                f"stack {self.stack_id}: module {provider.name!r} cannot respond "
                f"on service {service!r} it does not provide"
            )
        self._responses_issued += 1
        trace = self.trace
        if self._trace_response and trace.enabled:
            trace.record_fast(
                self._sim.now,
                TraceKind.RESPONSE,
                self.stack_id,
                service=service,
                module=provider.name,
                protocol=provider.protocol,
                event=event,
            )
        machine.execute_packed(
            self.response_cost if cost is None else cost,
            self._deliver_response,
            (service, event, args, provider.name, provider.protocol),
        )

    def _subscribers(self, service: str, event: str) -> List[Callable[..., Any]]:
        """The (cached) handlers subscribed to *event* of *service*.

        Rebuilt lazily whenever the module set changes; order follows
        module insertion order, like the uncached scan did.
        """
        key = (service, event)
        handlers = self._response_cache.get(key)
        if handlers is None:
            handlers = [
                h
                for m in self.modules.values()
                if service in m.requires
                for h in (m.response_handler(service, event),)
                if h is not None
            ]
            self._response_cache[key] = handlers
        return handlers

    def _deliver_response(
        self, service: str, event: str, args: tuple,
        provider_name: str, provider_protocol: str,
    ) -> None:
        """CPU-completion half of a response: fan out to subscribers."""
        claimed = False
        for handler in self._subscribers(service, event):
            if handler(*args) is not NOT_MINE:
                claimed = True
        if not claimed:
            # Nobody in the stack owns this response (no subscriber at
            # all, or every subscriber disclaimed the frame): keep it
            # until a matching module is added (paper, Section 2).
            queue = self._buffered_responses.setdefault(service, deque())
            if (
                self.max_buffered_responses is not None
                and len(queue) >= self.max_buffered_responses
            ):
                queue.popleft()
                self.buffered_responses_dropped += 1
            queue.append((event, args, provider_name, provider_protocol))
            trace = self.trace
            if self._trace_response_buffered and trace.enabled:
                trace.record_fast(
                    self._sim.now,
                    TraceKind.RESPONSE_BUFFERED,
                    self.stack_id,
                    service=service,
                    module=provider_name,
                    protocol=provider_protocol,
                    event=event,
                )

    def _flush_buffered_responses(self, new_module: Module) -> None:
        """Deliver responses that were waiting for a subscriber like *new_module*."""
        for service in new_module.requires:
            buffered = self._buffered_responses.get(service)
            if not buffered:
                continue
            deliverable: List[_BufferedResponse] = []
            remaining: Deque[_BufferedResponse] = deque()
            for item in buffered:
                event = item[0]
                if new_module.response_handler(service, event) is not None:
                    deliverable.append(item)
                else:
                    remaining.append(item)
            self._buffered_responses[service] = remaining
            for event, args, provider_name, provider_protocol in deliverable:
                self.machine.execute(
                    0.0, self._deliver_response, service, event, args,
                    provider_name, provider_protocol,
                )

    def buffered_response_count(self, service: Optional[str] = None) -> int:
        """Number of responses buffered awaiting a subscriber."""
        if service is not None:
            return len(self._buffered_responses.get(service, ()))
        return sum(len(q) for q in self._buffered_responses.values())

    # ------------------------------------------------------------------ #
    # Failure
    # ------------------------------------------------------------------ #
    def _on_machine_crash(self, time: float) -> None:
        """Machine crash hook: record, and let dead drain tasks restart."""
        # Pending drain tasks died with the CPU (epoch guard); clear the
        # flags so a post-recovery bind can restart the drains.
        self._draining.clear()
        self.trace.record_fast(time, TraceKind.CRASH, self.stack_id)

    def _on_machine_recover(self, time: float) -> None:
        """Machine recovery hook: record, then run the restart protocol."""
        self.trace.record(
            time, TraceKind.RECOVER, self.stack_id, epoch=self.machine.epoch
        )
        self.restart()

    def restart(self) -> None:
        """Re-arm the stack in the machine's new incarnation epoch.

        Every timer armed before the crash belongs to the dead epoch and
        will never fire, so a recovered machine would otherwise come back
        as a passive zombie: state intact, heartbeat/retransmission/load
        wheels all stopped.  The restart path gives each module its
        :meth:`~repro.kernel.module.Module.on_restart` hook (in stack
        order, bottom-most first — transports re-arm before the
        protocols that ride them) and then restarts the blocked-call
        drains whose 0-cost CPU tasks died with the old incarnation.
        """
        for module in list(self.modules.values()):
            module.on_restart()
        for service in [s for s, queue in self._blocked_calls.items() if queue]:
            self._release_blocked_calls(service)
        # Kernel-level "restart complete" marker: every module re-armed
        # in the new epoch and every surviving drain restarted.  Bare
        # scenarios (no GM re-join handshake) use this to narrow the
        # recovery-liveness exemption; GM-based scenarios keep using the
        # stronger group-level handshake instant.
        self.restart_completed_at = self._sim.now
        self.restart_completed_epoch = self.machine.epoch
        self.trace.record(
            self._sim.now,
            TraceKind.RESTART_COMPLETE,
            self.stack_id,
            epoch=self.machine.epoch,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Stack {self.stack_id} modules={list(self.modules)} "
            f"bound={self.bindings.as_dict()}>"
        )
