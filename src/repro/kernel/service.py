"""Services: named specifications of distributed protocols.

The paper (Section 2) distinguishes a *service* — the specification — from
a *protocol* — the set of identical modules implementing it, one per
stack.  In code a service is just a validated name plus optional metadata
describing its call/response vocabulary.  Identity is by name: two
:class:`ServiceSpec` objects with the same name denote the same service.

Well-known service names used by the group-communication stack of the
paper's Figure 4 are collected in :class:`WellKnown`, and
:func:`replacement_service_name` implements the paper's ``r-p`` naming
convention for the indirection level added by a replacement module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

__all__ = ["ServiceSpec", "WellKnown", "replacement_service_name", "is_replacement_service"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")

#: Prefix of the indirection service provided by a replacement module for
#: service ``p`` (the paper writes it ``r-p``).
_REPL_PREFIX = "r-"


@dataclass(frozen=True)
class ServiceSpec:
    """A service: a name plus its declared calls, queries, and responses.

    The vocabulary sets are documentation and validation aids — the kernel
    enforces them only when they are non-empty, so lightweight services
    can omit them entirely.

    Attributes
    ----------
    name:
        Lower-case identifier, e.g. ``"abcast"``.
    calls:
        Names of downcall methods callers may invoke (e.g. ``{"abcast"}``).
    queries:
        Names of synchronous, side-effect-free queries (e.g. FD's
        ``{"suspects"}``).
    responses:
        Names of upcall events the provider may emit (e.g. ``{"adeliver"}``).
    """

    name: str
    calls: FrozenSet[str] = field(default_factory=frozenset)
    queries: FrozenSet[str] = field(default_factory=frozenset)
    responses: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"invalid service name {self.name!r}: must match {_NAME_RE.pattern}"
            )
        object.__setattr__(self, "calls", frozenset(self.calls))
        object.__setattr__(self, "queries", frozenset(self.queries))
        object.__setattr__(self, "responses", frozenset(self.responses))

    def allows_call(self, method: str) -> bool:
        """Whether *method* is a declared (or undeclared-and-unchecked) call."""
        return not self.calls or method in self.calls

    def allows_response(self, event: str) -> bool:
        """Whether *event* is a declared (or undeclared-and-unchecked) response."""
        return not self.responses or event in self.responses


def replacement_service_name(service: str) -> str:
    """The paper's ``r-p`` convention: the indirection service for ``p``.

    >>> replacement_service_name("abcast")
    'r-abcast'
    """
    return _REPL_PREFIX + service


def is_replacement_service(service: str) -> bool:
    """``True`` for names produced by :func:`replacement_service_name`."""
    return service.startswith(_REPL_PREFIX)


class WellKnown:
    """Well-known service names of the Figure 4 group-communication stack."""

    #: Unreliable datagram service (the network itself, ``Net`` in Fig. 1).
    UDP = "udp"
    #: Reliable FIFO point-to-point channels.
    RP2P = "rp2p"
    #: Failure detector (◊S in the paper).
    FD = "fd"
    #: Distributed consensus (Chandra–Toueg).
    CONSENSUS = "consensus"
    #: Atomic broadcast.
    ABCAST = "abcast"
    #: The indirection service for abcast provided by the Repl module.
    R_ABCAST = replacement_service_name(ABCAST)
    #: Group membership.
    GM = "gm"
    #: The indirection service for consensus (future-work extension).
    R_CONSENSUS = replacement_service_name(CONSENSUS)


#: Specs with the full vocabulary, used by tests and documentation.
UDP_SPEC = ServiceSpec(WellKnown.UDP, calls={"send"}, responses={"deliver"})
RP2P_SPEC = ServiceSpec(WellKnown.RP2P, calls={"send"}, responses={"deliver"})
FD_SPEC = ServiceSpec(
    WellKnown.FD, queries={"suspects", "is_suspected"}, responses={"suspect", "restore"}
)
CONSENSUS_SPEC = ServiceSpec(WellKnown.CONSENSUS, calls={"propose"}, responses={"decide"})
ABCAST_SPEC = ServiceSpec(WellKnown.ABCAST, calls={"abcast"}, responses={"adeliver"})
GM_SPEC = ServiceSpec(WellKnown.GM, calls={"join", "leave"}, responses={"view"})


def spec_for(name: str) -> Optional[ServiceSpec]:
    """The well-known spec for *name*, if any."""
    for spec in (UDP_SPEC, RP2P_SPEC, FD_SPEC, CONSENSUS_SPEC, ABCAST_SPEC, GM_SPEC):
        if spec.name == name:
            return spec
    return None
