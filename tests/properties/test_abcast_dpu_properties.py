"""Property tests: the ABcast properties hold across random replacements.

Each example builds the full Figure 4 stack, fires a random message
schedule, performs randomly timed replacements between the three
protocols (and optionally crashes a minority stack), then checks all
four ABcast properties plus weak stack-well-formedness.  Every example is
a complete distributed execution, so example counts are modest — the
randomness explores schedules, the checkers prove each one.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dpu import (
    assert_weak_stack_well_formedness,
    check_all_abcast_properties,
)
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    build_group_comm_system,
)

PROTOCOLS = [PROTOCOL_CT, PROTOCOL_SEQ, PROTOCOL_TOKEN]


@st.composite
def scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.sampled_from([3, 4]))
    load = draw(st.sampled_from([30.0, 60.0]))
    n_switches = draw(st.integers(min_value=1, max_value=3))
    switches = sorted(
        (
            draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False)),
            draw(st.sampled_from(PROTOCOLS)),
        )
        for _ in range(n_switches)
    )
    # Keep switch requests at least 600ms apart: concurrent requests are
    # exercised separately (the guard tests); here we explore timing of
    # *sequential* replacements against the message schedule.
    pruned = []
    for t, prot in switches:
        if not pruned or t - pruned[-1][0] > 0.6:
            pruned.append((t, prot))
    return seed, n, load, pruned


@given(scenarios())
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_properties_hold_across_random_replacements(scenario):
    seed, n, load, switches = scenario
    duration = 6.0
    cfg = GroupCommConfig(
        n=n, seed=seed, load_msgs_per_sec=load, load_stop=duration
    )
    gcs = build_group_comm_system(cfg)
    for at, prot in switches:
        gcs.manager.request_change(prot, from_stack=0, at=at)
    gcs.run(until=duration)
    gcs.run_to_quiescence(extra=8.0)

    results = check_all_abcast_properties(gcs.log, {}, list(range(n)))
    assert all(not v for v in results.values()), results
    assert_weak_stack_well_formedness(gcs.system.trace)
    # every stack ends on the protocol of the last applied switch
    final = {gcs.manager.module(s).current_protocol for s in range(n)}
    assert len(final) == 1


@st.composite
def crash_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = 4  # tolerates one crash
    switch_at = draw(st.floats(min_value=2.0, max_value=3.0, allow_nan=False))
    crash_at = draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    crash_stack = draw(st.integers(min_value=1, max_value=n - 1))
    prot = draw(st.sampled_from([PROTOCOL_CT]))
    return seed, n, switch_at, crash_at, crash_stack, prot


@given(crash_scenarios())
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_properties_hold_with_a_crash_near_the_switch(scenario):
    seed, n, switch_at, crash_at, crash_stack, prot = scenario
    duration = 6.0
    cfg = GroupCommConfig(
        n=n, seed=seed, load_msgs_per_sec=40.0, load_stop=duration
    )
    gcs = build_group_comm_system(cfg)
    gcs.manager.request_change(prot, from_stack=0, at=switch_at)
    gcs.system.crash_at(crash_stack, crash_at)
    gcs.run(until=duration)
    gcs.run_to_quiescence(extra=10.0)

    in_flight = {
        key
        for key, (sender, _t) in gcs.log.sends.items()
        if sender == crash_stack
    }
    results = check_all_abcast_properties(
        gcs.log, {crash_stack: crash_at}, list(range(n)), in_flight_ok=in_flight
    )
    assert all(not v for v in results.values()), results
