"""Property tests: block-buffered draws are bit-identical to scalar draws.

The batched-RNG core (``BufferedDraws``) only keeps same-seed runs
unchanged if numpy's vectorised distribution kernels consume the
underlying bitstream exactly like the equivalent sequence of scalar
calls.  These properties pin that contract for every distribution the
hot paths use, plus the two wiring points (latency models, workload
jitter) that rely on it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import lan_latency
from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LogNormalLatency,
    ShiftedLatency,
    UniformLatency,
)
from repro.sim.random import BufferedDraws, RngRegistry

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
COUNTS = st.integers(min_value=1, max_value=700)  # crosses block boundaries


def _pair(seed, name="stream"):
    """Two independent generators positioned identically."""
    return (
        RngRegistry(seed=seed).stream(name),
        RngRegistry(seed=seed).stream(name),
    )


class TestScalarEquivalence:
    @given(SEEDS, COUNTS)
    @settings(max_examples=30, deadline=None)
    def test_random(self, seed, count):
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        assert [draws.random() for _ in range(count)] == [
            scalar_rng.random() for _ in range(count)
        ]

    @given(SEEDS, COUNTS, st.floats(min_value=1e-6, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_exponential(self, seed, count, scale):
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        assert [draws.exponential(scale) for _ in range(count)] == [
            scalar_rng.exponential(scale) for _ in range(count)
        ]

    @given(SEEDS, COUNTS, st.floats(min_value=-10.0, max_value=2.0),
           st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_lognormal(self, seed, count, mu, sigma):
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        assert [draws.lognormal(mu, sigma) for _ in range(count)] == [
            scalar_rng.lognormal(mu, sigma) for _ in range(count)
        ]

    @given(SEEDS, COUNTS)
    @settings(max_examples=20, deadline=None)
    def test_uniform(self, seed, count):
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        assert [draws.uniform(0.25, 4.0) for _ in range(count)] == [
            scalar_rng.uniform(0.25, 4.0) for _ in range(count)
        ]

    @given(SEEDS, COUNTS, st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_integers(self, seed, count, high):
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        assert [draws.integers(high) for _ in range(count)] == [
            int(scalar_rng.integers(high)) for _ in range(count)
        ]

    @given(SEEDS, st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_random_block(self, seed, sizes):
        """Vector requests chunked through the buffer match one scalar run."""
        scalar_rng, buf_rng = _pair(seed)
        draws = BufferedDraws(buf_rng)
        got = [v for n in sizes for v in draws.random_block(n)]
        expected = [scalar_rng.random() for _ in range(sum(sizes))]
        assert got == expected


class TestLatencyModelEquivalence:
    MODELS = [
        ConstantLatency(0.001),
        UniformLatency(0.001, 0.002),
        ExponentialLatency(mean_tail=0.001, floor=0.0005),
        LogNormalLatency(tail_mean=0.001, sigma=0.5, floor=0.0002),
        EmpiricalLatency([0.001, 0.002, 0.003]),
        ShiftedLatency(ConstantLatency(0.001), shift=0.0005),
        lan_latency(),
    ]

    @given(SEEDS, st.integers(min_value=1, max_value=600))
    @settings(max_examples=15, deadline=None)
    def test_sample_buffered_matches_sample(self, seed, count):
        for model in self.MODELS:
            scalar_rng, buf_rng = _pair(seed, name=type(model).__name__)
            draws = BufferedDraws(buf_rng)
            buffered = [model.sample_buffered(draws) for _ in range(count)]
            scalar = [model.sample(scalar_rng) for _ in range(count)]
            assert buffered == scalar


class TestDeterminismUnderMixing:
    """Heterogeneous usage loses scalar-equivalence but not determinism."""

    @given(SEEDS, st.lists(st.sampled_from(["random", "expo", "logn", "raw"]),
                           min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_same_call_sequence_same_values(self, seed, calls):
        def run():
            draws = BufferedDraws(RngRegistry(seed=seed).stream("mixed"))
            out = []
            for call in calls:
                if call == "random":
                    out.append(draws.random())
                elif call == "expo":
                    out.append(draws.exponential(2.0))
                elif call == "logn":
                    out.append(draws.lognormal(0.0, 1.0))
                else:
                    out.append(float(draws.raw.standard_normal()))
            return out

        assert run() == run()

    def test_raw_discards_buffer(self):
        draws = BufferedDraws(np.random.default_rng(0), block=16)
        draws.random()
        assert len(draws._buf) == 16
        draws.raw
        assert draws._buf == [] and draws._kind is None

    def test_block_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            BufferedDraws(np.random.default_rng(0), block=0)


class TestLogNormalMuCache:
    def test_mu_cached_and_correct(self):
        import math

        model = LogNormalLatency(tail_mean=0.003, sigma=0.7, floor=0.0)
        expected = math.log(0.003) - 0.5 * 0.7 * 0.7
        assert model.mu == expected
        assert model._mu() == expected

    def test_cached_mu_same_samples_as_before(self):
        """The cached-mu sample path draws the exact historical values."""
        import math

        model = LogNormalLatency(tail_mean=0.003, sigma=0.7, floor=0.0001)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        mu = math.log(0.003) - 0.5 * 0.7 * 0.7
        for _ in range(100):
            assert model.sample(rng_a) == 0.0001 + float(rng_b.lognormal(mu, 0.7))
