"""Property tests: RP2P gives FIFO exactly-once delivery under any loss."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency


class Collector(Module):
    REQUIRES = (WellKnown.RP2P,)
    PROTOCOL = "collector"

    def __init__(self, stack):
        super().__init__(stack)
        self.got = {}
        self.subscribe(
            WellKnown.RP2P,
            "deliver",
            lambda s, p, z: self.got.setdefault(s, []).append(p),
        )


@st.composite
def traffic(draw):
    """Random per-sender message counts and a loss rate."""
    n = draw(st.integers(min_value=2, max_value=4))
    counts = [draw(st.integers(min_value=0, max_value=12)) for _ in range(n)]
    loss = draw(st.sampled_from([0.0, 0.1, 0.3, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, counts, loss, seed


class TestRp2pProperties:
    @given(traffic())
    @settings(max_examples=25, deadline=None)
    def test_fifo_exactly_once_to_every_peer(self, spec):
        n, counts, loss, seed = spec
        sys_ = System(n=n, seed=seed)
        net = SimNetwork(
            sys_.sim,
            sys_.machines,
            SwitchedLan(latency=ConstantLatency(0.0002), loss_rate=loss),
        )
        collectors = []
        for stck in sys_.stacks:
            stck.add_module(UdpModule(stck, net))
            stck.add_module(Rp2pModule(stck))
            c = Collector(stck)
            stck.add_module(c)
            collectors.append(c)
        for sender in range(n):
            for k in range(counts[sender]):
                for dst in range(n):
                    if dst != sender:
                        collectors[sender].call(
                            WellKnown.RP2P, "send", dst, (sender, k), 64
                        )
        sys_.run(until=60.0)
        for receiver in range(n):
            for sender in range(n):
                if sender == receiver:
                    continue
                expected = [(sender, k) for k in range(counts[sender])]
                assert collectors[receiver].got.get(sender, []) == expected
